"""Explicitly-enabled instrumentation layer: counters, histograms, spans.

Telemetry is **off by default and structurally free when off**: engines
hold ``telemetry=None`` and never touch this module, and policy kernels
swap in their instrumented loop only when :meth:`~emissary.policies.base.
PolicyKernel.attach_telemetry` is called — the fast paths contain no
telemetry branches at all.  When enabled, instrumentation may cost time
but must never perturb outcomes: the telemetry test suite asserts
bit-identical hit vectors with telemetry on and off, on both engines.

A :class:`Telemetry` instance collects three kinds of data:

counters
    Monotonic named integers (``fills``, ``evictions``, ``evictions_hp``,
    ``hp_promotions``, ``dead_on_fill``, ...).  Policy kernels and naive
    impls record the paper's diagnostic events here; engines record
    pipeline facts under an ``engine.`` prefix.

histograms
    Named integer-value -> count maps (``line_hits`` — hits accumulated
    by each line by the time it is evicted; ``resident_line_hits`` — the
    same for lines still resident at end of trace; ``hp_set_occupancy``
    — final per-set high-priority line counts).  These reproduce the
    per-line accounting EMISSARY's argument rests on.

spans
    Named wall-clock intervals around engine pipeline phases (decode,
    run collapse, stable sort, per-set kernel loop; L1 vs L2 stage in
    the hierarchy engine), exportable as Chrome trace-event JSON via
    :func:`spans_to_chrome_trace` and loadable in Perfetto or
    chrome://tracing.

The serialized form (:meth:`Telemetry.to_dict`) is schema-versioned JSON
and is what :class:`~emissary.engine.SimResult` carries, the sweep's run
report embeds per config, and ``python -m emissary.report`` renders.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Mapping
from contextlib import contextmanager
from typing import Any

from emissary.wire import check_known_keys, check_wire_version

#: Version of the ``Telemetry.to_dict`` payload layout.  The payload has
#: carried this field since PR 3; it follows the same strict wire
#: discipline as the PR 7 request/result payloads (:mod:`emissary.wire`):
#: :meth:`Telemetry.from_dict` rejects unknown keys and refuses newer
#: versions, and a missing field decodes as version 0 (layout identical
#: to version 1 minus the stamp).
TELEMETRY_SCHEMA_VERSION = 1

#: Keys a ``Telemetry.to_dict`` payload may carry.
_TELEMETRY_WIRE_KEYS = ("schema_version", "counters", "histograms", "spans")


class Telemetry:
    """Counter / histogram registry plus phase-span recorder.

    One instance covers one simulation run (the hierarchy engine merges
    its per-level children into a single parent with ``l1.`` / ``l2.``
    name prefixes).  All mutators are plain dict operations — cheap
    enough for instrumented inner loops, but only ever reached when the
    caller explicitly enabled telemetry.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, dict[int, int]] = {}
        self.spans: list[dict[str, Any]] = []

    # -- counters ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- histograms -------------------------------------------------------

    def observe(self, name: str, value: int) -> None:
        """Count one occurrence of integer ``value`` in histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {}
        hist[value] = hist.get(value, 0) + 1

    def observe_many(self, name: str, values: Iterable[int]) -> None:
        """Bulk :meth:`observe` — used by end-of-run finalizers."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {}
        for value in values:
            hist[value] = hist.get(value, 0) + 1

    # -- spans ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Record a named wall-clock interval around the ``with`` body.

        Timestamps are absolute ``perf_counter`` microseconds; the Chrome
        trace exporter rebases them to the earliest span.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.spans.append({
                "name": name,
                "ts_us": start * 1e6,
                "dur_us": (end - start) * 1e6,
                "args": dict(args),
            })

    # -- composition ------------------------------------------------------

    def merge_prefixed(self, child: "Telemetry", prefix: str) -> None:
        """Fold ``child`` into this registry with every name prefixed.

        The hierarchy engine uses this to combine its per-level stage
        telemetries into one payload (``l1.fills``, ``l2.evictions_hp``).
        """
        for name, value in child.counters.items():
            self.inc(prefix + name, value)
        for name, hist in child.histograms.items():
            target = self.histograms.setdefault(prefix + name, {})
            for value, count in hist.items():
                target[value] = target.get(value, 0) + count
        for span in child.spans:
            merged = dict(span)
            merged["name"] = prefix + span["name"]
            self.spans.append(merged)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON-safe payload (histogram keys stringified)."""
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "counters": dict(self.counters),
            "histograms": {name: {str(value): count
                                  for value, count in sorted(hist.items())}
                           for name, hist in self.histograms.items()},
            "spans": [dict(span) for span in self.spans],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Telemetry":
        """Strictly decode a ``to_dict`` payload (wire discipline of
        :mod:`emissary.wire`): unknown keys are rejected, histogram
        value keys are de-stringified back to ints, and a payload
        declaring a newer ``schema_version`` than this process
        understands refuses to half-parse."""
        check_wire_version(d, "Telemetry",
                           max_version=TELEMETRY_SCHEMA_VERSION)
        check_known_keys(d, _TELEMETRY_WIRE_KEYS, "Telemetry")
        counters = d.get("counters", {})
        histograms = d.get("histograms", {})
        spans = d.get("spans", [])
        if not isinstance(counters, Mapping):
            raise ValueError("Telemetry: counters must be a mapping")
        if not isinstance(histograms, Mapping):
            raise ValueError("Telemetry: histograms must be a mapping")
        if not isinstance(spans, list):
            raise ValueError("Telemetry: spans must be a list")
        tel = cls()
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"Telemetry: counter {name!r} must be an "
                                 f"int, got {type(value).__name__}")
            tel.counters[str(name)] = value
        for name, hist in histograms.items():
            if not isinstance(hist, Mapping):
                raise ValueError(f"Telemetry: histogram {name!r} must be a "
                                 f"mapping")
            try:
                tel.histograms[str(name)] = {int(value): int(count)
                                             for value, count in hist.items()}
            except (TypeError, ValueError) as exc:
                raise ValueError(f"Telemetry: histogram {name!r} has a "
                                 f"non-integer bucket: {exc}") from exc
        for span in spans:
            if not isinstance(span, Mapping):
                raise ValueError("Telemetry: spans must be span dicts")
            tel.spans.append(dict(span))
        return tel

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON for this instance's spans."""
        return spans_to_chrome_trace(self.spans)


def null_span(name: str, **args: Any):
    """Drop-in for :meth:`Telemetry.span` when telemetry is disabled."""
    return _NULL_CONTEXT


class _ReusableNull:
    """A re-enterable no-op context manager (``nullcontext`` per call is
    avoidable allocation on the disabled path)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _ReusableNull()


def span_factory(telemetry: Telemetry | None):
    """``telemetry.span`` when enabled, a shared no-op otherwise."""
    return telemetry.span if telemetry is not None else null_span


def spans_to_chrome_trace(spans: Iterable[dict[str, Any]], pid: int = 0,
                          tid: int = 0) -> dict[str, Any]:
    """Convert span records to the Chrome trace-event JSON object format.

    Each span becomes a complete ("ph": "X") event; timestamps are
    rebased so the earliest span starts at 0.  Load the written file in
    Perfetto (https://ui.perfetto.dev) or chrome://tracing.

    Span records may carry their own ``pid`` / ``tid`` (the sweep report
    assigns worker pids and per-config tids); the arguments are defaults
    for records without one.
    """
    records = list(spans)
    base = min((s["ts_us"] for s in records), default=0.0)
    events = [{
        "name": s["name"],
        "ph": "X",
        "ts": s["ts_us"] - base,
        "dur": s["dur_us"],
        "pid": s.get("pid", pid),
        "tid": s.get("tid", tid),
        "args": s.get("args", {}),
    } for s in records]
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}
