"""Wire-schema drift gate: lock the *shape* of every wire payload.

The PR 7 golden-cache-key tests pin a handful of encodings by example;
this module turns that into a structural guarantee.  It statically
extracts, from the AST of every module under ``src/emissary``:

- the field set of every class ``to_dict`` (dict-literal keys plus
  ``d["key"] = ...`` assignments, following ``super().to_dict()``
  inheritance), and the ``schema_version`` it stamps, when any;
- the allowed-key set of the paired ``from_dict`` (the second argument
  of its ``check_known_keys`` call, resolving ``_WIRE_KEYS``-style
  class attributes including ``Parent._WIRE_KEYS | {...}`` unions);
- every other ``schema_version``-stamped dict-literal envelope (sweep
  envelopes, bench reports, cache entries, progress spools).

The result is committed as ``schemas.lock.json``.  ``python -m
emissary.analysis schema --check`` recomputes it and fails (exit 1) on
*any* divergence — a field add/remove/rename shows up as drift whether
or not the author remembered it is also a results-cache key.  The
version-bump discipline is enforced by ``--update``: it refuses to
re-lock a versioned unit whose fields changed while its
``schema_version`` constant did not.

String/int constants are resolved across modules (``WIRE_SCHEMA_KEY``
is declared in ``wire.py`` and spent everywhere), so the extraction
sees the keys the runtime actually emits.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from emissary.analysis.lint import dotted_name, iter_python_files

#: Format version of the lock file itself.
LOCK_FORMAT_VERSION = 1

#: Default locations (relative to the repo root / CWD of the CLI).
DEFAULT_ROOT = Path("src/emissary")
DEFAULT_LOCK = Path("schemas.lock.json")

#: The key whose presence marks a dict literal as a wire envelope.
VERSION_KEY = "schema_version"


@dataclass
class SchemaUnit:
    """One locked wire shape."""

    name: str                      # "emissary.api:SimRequest" / ":run_sweep"
    version: int | None            # resolved schema_version stamp, if any
    to_dict: tuple[str, ...]       # sorted emitted field names
    from_dict: tuple[str, ...] | None  # sorted allowed decode keys, if any

    def as_json(self) -> dict[str, Any]:
        return {"version": self.version,
                "to_dict": list(self.to_dict),
                "from_dict": (list(self.from_dict)
                              if self.from_dict is not None else None)}


class _Extractor:
    """Two-pass static extractor over one package tree."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        #: (module, name) -> constant expr for module-level assignments.
        self.const_exprs: dict[tuple[str, str], ast.expr] = {}
        #: (module, class, attr) -> expr for class-body assignments.
        self.attr_exprs: dict[tuple[str, str, str], ast.expr] = {}
        #: (module, local) -> (source module, source name) imports.
        self.imports: dict[tuple[str, str], tuple[str, str]] = {}
        #: class name -> [(module, class)] for cross-module attr lookup.
        self.class_sites: dict[str, list[tuple[str, str]]] = {}
        #: (module, class) -> list of base-class names as written.
        self.bases: dict[tuple[str, str], list[str]] = {}
        self.trees: list[tuple[str, ast.Module]] = []

    # -- pass 1: constants, imports, class layout ---------------------

    def scan(self) -> None:
        for path in iter_python_files([self.root]):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"),
                                 filename=str(path))
            except SyntaxError:
                continue
            module = self._module_name(path)
            self.trees.append((module, tree))
            self._index_module(module, tree)

    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.root)
        parts = list(rel.parts)
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join([self.package] + parts) if parts else self.package

    def _index_module(self, module: str, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                self.const_exprs[(module, node.targets[0].id)] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and isinstance(node.target, ast.Name):
                self.const_exprs[(module, node.target.id)] = node.value
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                target = node.module
                if node.level:
                    base = module.split(".")
                    base = base[: len(base) - node.level]
                    target = ".".join(base + ([node.module]
                                              if node.module else []))
                for alias in node.names:
                    self.imports[(module, alias.asname or alias.name)] = \
                        (target, alias.name)
            elif isinstance(node, ast.ClassDef):
                self.class_sites.setdefault(node.name, []).append(
                    (module, node.name))
                self.bases[(module, node.name)] = [
                    b.split(".")[-1]
                    for b in (dotted_name(base) for base in node.bases)
                    if b is not None]
                for item in node.body:
                    if isinstance(item, ast.Assign) \
                            and len(item.targets) == 1 \
                            and isinstance(item.targets[0], ast.Name):
                        self.attr_exprs[(module, node.name,
                                         item.targets[0].id)] = item.value
                    elif isinstance(item, ast.AnnAssign) \
                            and item.value is not None \
                            and isinstance(item.target, ast.Name):
                        self.attr_exprs[(module, node.name,
                                         item.target.id)] = item.value

    # -- constant / key-set resolution --------------------------------

    def resolve_const(self, module: str, expr: ast.expr,
                      cls: str | None = None,
                      depth: int = 0) -> str | int | None:
        if depth > 8:
            return None
        if isinstance(expr, ast.Constant) \
                and isinstance(expr.value, (str, int)) \
                and not isinstance(expr.value, bool):
            return expr.value
        if isinstance(expr, ast.Name):
            return self._resolve_name(module, expr.id, cls, depth)
        if isinstance(expr, ast.Attribute):
            head = dotted_name(expr)
            if head is None:
                return None
            parts = head.split(".")
            if parts[0] in ("self", "cls") and cls is not None \
                    and len(parts) == 2:
                return self._resolve_attr(module, cls, parts[1], depth)
            if len(parts) == 2:
                for site_mod, site_cls in self.class_sites.get(parts[0], ()):
                    value = self._resolve_attr(site_mod, site_cls,
                                               parts[1], depth)
                    if value is not None:
                        return value
                resolved = self.imports.get((module, parts[0]))
                if resolved is not None:
                    return self._resolve_name(resolved[0], parts[1],
                                              None, depth + 1)
        return None

    def _resolve_name(self, module: str, name: str, cls: str | None,
                      depth: int) -> str | int | None:
        if cls is not None and (module, cls, name) in self.attr_exprs:
            return self.resolve_const(
                module, self.attr_exprs[(module, cls, name)], cls, depth + 1)
        if (module, name) in self.const_exprs:
            return self.resolve_const(
                module, self.const_exprs[(module, name)], None, depth + 1)
        if (module, name) in self.imports:
            src_mod, src_name = self.imports[(module, name)]
            return self._resolve_name(src_mod, src_name, None, depth + 1)
        return None

    def _resolve_attr(self, module: str, cls: str, attr: str,
                      depth: int) -> str | int | None:
        if (module, cls, attr) in self.attr_exprs:
            return self.resolve_const(
                module, self.attr_exprs[(module, cls, attr)], cls, depth + 1)
        for base in self.bases.get((module, cls), ()):
            for site_mod, site_cls in self.class_sites.get(base, ()):
                value = self._resolve_attr(site_mod, site_cls, attr, depth + 1)
                if value is not None:
                    return value
        return None

    def resolve_keys(self, module: str, expr: ast.expr,
                     cls: str | None = None,
                     depth: int = 0) -> set[str] | None:
        """Resolve an expression to a set of string keys, or None."""
        if depth > 8:
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in ("frozenset", "set", "tuple", "list") \
                and len(expr.args) == 1:
            return self.resolve_keys(module, expr.args[0], cls, depth + 1)
        if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
            keys: set[str] = set()
            for elt in expr.elts:
                value = self.resolve_const(module, elt, cls)
                if not isinstance(value, str):
                    return None
                keys.add(value)
            return keys
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            left = self.resolve_keys(module, expr.left, cls, depth + 1)
            right = self.resolve_keys(module, expr.right, cls, depth + 1)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(expr, ast.Name):
            if cls is not None and (module, cls, expr.id) in self.attr_exprs:
                return self.resolve_keys(
                    module, self.attr_exprs[(module, cls, expr.id)],
                    cls, depth + 1)
            if (module, expr.id) in self.const_exprs:
                return self.resolve_keys(
                    module, self.const_exprs[(module, expr.id)],
                    None, depth + 1)
            if (module, expr.id) in self.imports:
                src_mod, src_name = self.imports[(module, expr.id)]
                return self.resolve_keys(
                    src_mod, ast.Name(id=src_name), None, depth + 1)
            return None
        if isinstance(expr, ast.Attribute):
            head = dotted_name(expr)
            if head is None:
                return None
            parts = head.split(".")
            if parts[0] in ("self", "cls") and cls is not None \
                    and len(parts) == 2:
                return self._resolve_attr_keys(module, cls, parts[1], depth)
            if len(parts) == 2:
                for site_mod, site_cls in self.class_sites.get(parts[0], ()):
                    keys = self._resolve_attr_keys(site_mod, site_cls,
                                                   parts[1], depth)
                    if keys is not None:
                        return keys
        return None

    def _resolve_attr_keys(self, module: str, cls: str, attr: str,
                           depth: int) -> set[str] | None:
        if (module, cls, attr) in self.attr_exprs:
            return self.resolve_keys(
                module, self.attr_exprs[(module, cls, attr)], cls, depth + 1)
        for base in self.bases.get((module, cls), ()):
            for site_mod, site_cls in self.class_sites.get(base, ()):
                keys = self._resolve_attr_keys(site_mod, site_cls,
                                               attr, depth + 1)
                if keys is not None:
                    return keys
        return None

    # -- pass 2: unit extraction --------------------------------------

    def extract(self) -> dict[str, SchemaUnit]:
        raw: dict[str, dict[str, Any]] = {}
        for module, tree in self.trees:
            self._extract_module(module, tree, raw)
        # Resolve super().to_dict() inheritance now that every class's
        # own fields are known.
        units: dict[str, SchemaUnit] = {}
        for name in sorted(raw):
            info = raw[name]
            fields = set(info["fields"])
            version = info.get("version")
            seen = {name}
            queue = list(info.get("inherits", ()))
            while queue:
                base = queue.pop()
                for site_mod, site_cls in self.class_sites.get(base, ()):
                    base_name = f"{site_mod}:{site_cls}"
                    if base_name in seen or base_name not in raw:
                        continue
                    seen.add(base_name)
                    fields |= set(raw[base_name]["fields"])
                    if version is None:
                        # super().to_dict() stamps the parent's version.
                        version = raw[base_name].get("version")
                    queue.extend(raw[base_name].get("inherits", ()))
            from_keys = info.get("from_dict")
            units[name] = SchemaUnit(
                name=name, version=version,
                to_dict=tuple(sorted(fields)),
                from_dict=(tuple(sorted(from_keys))
                           if from_keys is not None else None))
        return units

    def _extract_module(self, module: str, tree: ast.Module,
                        raw: dict[str, dict[str, Any]]) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._extract_class(module, node, raw)
        self._extract_envelopes(module, tree, raw)

    def _extract_class(self, module: str, node: ast.ClassDef,
                       raw: dict[str, dict[str, Any]]) -> None:
        to_dict = None
        from_dict = None
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                if item.name == "to_dict":
                    to_dict = item
                elif item.name == "from_dict":
                    from_dict = item
        if to_dict is None and from_dict is None:
            return
        name = f"{module}:{node.name}"
        info: dict[str, Any] = {"fields": set(), "inherits": [],
                                "version": None, "from_dict": None}
        if to_dict is not None:
            fields, version, inherits = self._to_dict_shape(
                module, node, to_dict)
            info["fields"] = fields
            info["version"] = version
            if inherits:
                info["inherits"] = self.bases.get((module, node.name), [])
        if from_dict is not None:
            info["from_dict"] = self._from_dict_keys(module, node, from_dict)
        raw[name] = info

    def _to_dict_shape(self, module: str, cls: ast.ClassDef,
                       fn: ast.FunctionDef) \
            -> tuple[set[str], int | None, bool]:
        fields: set[str] = set()
        version: int | None = None
        inherits = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                for key_expr, value_expr in zip(node.keys, node.values):
                    if key_expr is None:  # **spread: opaque, skip
                        continue
                    key = self.resolve_const(module, key_expr, cls.name)
                    if isinstance(key, str):
                        fields.add(key)
                        if key == VERSION_KEY:
                            resolved = self.resolve_const(
                                module, value_expr, cls.name)
                            if isinstance(resolved, int):
                                version = resolved
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        key = self.resolve_const(module, target.slice,
                                                 cls.name)
                        if isinstance(key, str):
                            fields.add(key)
                            if key == VERSION_KEY:
                                resolved = self.resolve_const(
                                    module, node.value, cls.name)
                                if isinstance(resolved, int):
                                    version = resolved
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "to_dict" \
                        and isinstance(node.func.value, ast.Call):
                    inner = node.func.value
                    if isinstance(inner.func, ast.Name) \
                            and inner.func.id == "super":
                        inherits = True
        return fields, version, inherits

    def _from_dict_keys(self, module: str, cls: ast.ClassDef,
                        fn: ast.FunctionDef) -> set[str] | None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None \
                        and name.split(".")[-1] == "check_known_keys" \
                        and len(node.args) >= 2:
                    return self.resolve_keys(module, node.args[1], cls.name)
        return None

    def _extract_envelopes(self, module: str, tree: ast.Module,
                           raw: dict[str, dict[str, Any]]) -> None:
        """Dict literals stamped with ``schema_version`` outside any
        ``to_dict`` method (sweep envelopes, bench reports, ...)."""
        counters: dict[str, int] = {}

        def walk(node: ast.AST, scope: str, in_to_dict: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope = scope
                child_in_to_dict = in_to_dict
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    child_scope = f"{scope}.{child.name}" if scope \
                        else child.name
                    child_in_to_dict = in_to_dict or child.name == "to_dict"
                elif isinstance(child, ast.ClassDef):
                    child_scope = f"{scope}.{child.name}" if scope \
                        else child.name
                if isinstance(child, ast.Dict) and not child_in_to_dict:
                    keys: set[str] = set()
                    version: int | None = None
                    for key_expr, value_expr in zip(child.keys, child.values):
                        if key_expr is None:
                            continue
                        key = self.resolve_const(module, key_expr)
                        if isinstance(key, str):
                            keys.add(key)
                            if key == VERSION_KEY:
                                resolved = self.resolve_const(module,
                                                              value_expr)
                                if isinstance(resolved, int):
                                    version = resolved
                    if VERSION_KEY in keys:
                        base = f"{module}:{scope or '<module>'}"
                        count = counters.get(base, 0)
                        counters[base] = count + 1
                        name = base if count == 0 else f"{base}#{count}"
                        raw[name] = {"fields": keys, "inherits": [],
                                     "version": version, "from_dict": None}
                walk(child, child_scope, child_in_to_dict)

        walk(tree, "", False)


def extract_schemas(root: str | Path = DEFAULT_ROOT,
                    package: str = "emissary") -> dict[str, SchemaUnit]:
    """Statically extract every wire-schema unit under ``root``."""
    extractor = _Extractor(Path(root), package)
    extractor.scan()
    return extractor.extract()


def lock_payload(units: dict[str, SchemaUnit]) -> dict[str, Any]:
    return {"lock_version": LOCK_FORMAT_VERSION,
            "units": {name: unit.as_json()
                      for name, unit in sorted(units.items())}}


def load_lock(path: str | Path) -> dict[str, Any] | None:
    lock_path = Path(path)
    if not lock_path.exists():
        return None
    payload = json.loads(lock_path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) \
            or payload.get("lock_version") != LOCK_FORMAT_VERSION:
        raise ValueError(f"{path}: not a schemas lock file "
                         f"(lock_version != {LOCK_FORMAT_VERSION})")
    return payload


@dataclass
class Drift:
    """One unit's divergence between the lock and the extraction."""

    unit: str
    kind: str          # "added-unit" | "removed-unit" | "drift"
    message: str
    version_bumped: bool = False


def diff_lock(locked: dict[str, Any],
              units: dict[str, SchemaUnit]) -> list[Drift]:
    """Compare a loaded lock against a fresh extraction."""
    drifts: list[Drift] = []
    locked_units: dict[str, Any] = locked.get("units", {})
    for name in sorted(set(locked_units) | set(units)):
        if name not in locked_units:
            unit = units[name]
            drifts.append(Drift(
                unit=name, kind="added-unit",
                message=f"{name}: new wire unit "
                        f"(fields: {', '.join(unit.to_dict)}); "
                        "run `schema --update` to lock it"))
            continue
        if name not in units:
            drifts.append(Drift(
                unit=name, kind="removed-unit",
                message=f"{name}: locked unit no longer found (renamed or "
                        "deleted); run `schema --update` if intentional"))
            continue
        entry = locked_units[name]
        unit = units[name]
        old_fields = set(entry.get("to_dict") or ())
        new_fields = set(unit.to_dict)
        old_from = entry.get("from_dict")
        new_from = (list(unit.from_dict)
                    if unit.from_dict is not None else None)
        old_version = entry.get("version")
        bumped = unit.version != old_version
        problems: list[str] = []
        if new_fields != old_fields:
            added = sorted(new_fields - old_fields)
            removed = sorted(old_fields - new_fields)
            detail = "; ".join(
                part for part in
                (f"added {added}" if added else "",
                 f"removed {removed}" if removed else "") if part)
            problems.append(f"to_dict fields drifted ({detail})")
        if (old_from or None) != (new_from or None) \
                and sorted(old_from or ()) != sorted(new_from or ()):
            problems.append(
                f"from_dict keys drifted ({sorted(old_from or ())} -> "
                f"{sorted(new_from or ())})")
        if not problems:
            if bumped:
                drifts.append(Drift(
                    unit=name, kind="drift", version_bumped=True,
                    message=f"{name}: schema_version bumped "
                            f"{old_version} -> {unit.version} with no field "
                            "change; run `schema --update` to re-lock"))
            continue
        if bumped:
            remedy = (f"schema_version bumped {old_version} -> "
                      f"{unit.version}; run `schema --update` to commit "
                      "the new shape")
        elif old_version is None:
            remedy = ("unversioned nested shape — this is results-cache key "
                      "material; run `schema --update` only if the change "
                      "is intentional")
        else:
            remedy = (f"schema_version still {old_version}; bump it before "
                      "re-locking")
        drifts.append(Drift(
            unit=name, kind="drift", version_bumped=bumped,
            message=f"{name}: {'; '.join(problems)} — {remedy}"))
    return drifts


def check(root: str | Path = DEFAULT_ROOT,
          lock: str | Path = DEFAULT_LOCK,
          package: str = "emissary") -> tuple[int, list[str]]:
    """``schema --check``: 0 clean, 1 drift/missing lock, 2 bad input."""
    units = extract_schemas(root, package)
    try:
        locked = load_lock(lock)
    except ValueError as exc:
        return 2, [str(exc)]
    if locked is None:
        return 1, [f"{lock}: missing; run `python -m emissary.analysis "
                   "schema --update` and commit it"]
    drifts = diff_lock(locked, units)
    if not drifts:
        return 0, [f"OK: {len(units)} wire unit(s) match {lock}"]
    return 1, [d.message for d in drifts]


def update(root: str | Path = DEFAULT_ROOT,
           lock: str | Path = DEFAULT_LOCK,
           package: str = "emissary") -> tuple[int, list[str]]:
    """``schema --update``: rewrite the lock, refusing un-bumped drift.

    A versioned unit whose fields changed while its ``schema_version``
    stayed put is exactly the silent drift the gate exists to stop, so
    the update refuses it rather than laundering it into the lock.
    """
    units = extract_schemas(root, package)
    try:
        locked = load_lock(lock)
    except ValueError as exc:
        return 2, [str(exc)]
    if locked is not None:
        blocked = [
            d for d in diff_lock(locked, units)
            if d.kind == "drift" and not d.version_bumped
            and locked["units"].get(d.unit, {}).get("version") is not None]
        if blocked:
            return 1, [d.message for d in blocked] + [
                "refusing --update: bump the schema_version constant(s) "
                "above first"]
    payload = lock_payload(units)
    Path(lock).write_text(json.dumps(payload, indent=1, sort_keys=True)
                          + "\n", encoding="utf-8")
    return 0, [f"wrote {lock} ({len(units)} wire unit(s))"]
