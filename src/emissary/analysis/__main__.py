"""CLI for the analysis package.

    python -m emissary.analysis lint [paths...] [--select EMI001,EMI005]
    python -m emissary.analysis rules

``lint`` exits 0 on a clean tree, 1 when violations were found, and 2
on usage errors or unreadable input.  ``rules`` prints the EMI catalog.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from emissary.analysis.lint import lint_paths


def _cmd_lint(args: argparse.Namespace) -> int:
    select = None
    if args.select:
        select = [code for chunk in args.select for code in chunk.split(",")]
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for violation in report.violations:
        print(violation.format())
    noun = "file" if report.files_checked == 1 else "files"
    if report.clean:
        print(f"OK: {report.files_checked} {noun} clean", file=sys.stderr)
        return 0
    print(f"{len(report.violations)} violation(s) in "
          f"{report.files_checked} {noun}", file=sys.stderr)
    return 1


def _cmd_rules(_args: argparse.Namespace) -> int:
    from emissary.analysis.rules import ALL_RULES

    for cls in ALL_RULES:
        print(f"{cls.code}  {cls.summary}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m emissary.analysis",
        description="Project-specific static analysis (EMI rule catalog).")
    sub = parser.add_subparsers(dest="command", required=True)

    lint_p = sub.add_parser("lint", help="lint Python files or directories")
    lint_p.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    lint_p.add_argument("--select", action="append", default=[],
                        metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    lint_p.set_defaults(func=_cmd_lint)

    rules_p = sub.add_parser("rules", help="list the EMI rule catalog")
    rules_p.set_defaults(func=_cmd_rules)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
