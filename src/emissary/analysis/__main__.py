"""CLI for the analysis package.

    python -m emissary.analysis lint [paths...] [--select EMI001,EMI005]
                                     [--sarif out.sarif]
    python -m emissary.analysis rules
    python -m emissary.analysis schema --check | --update

``lint`` exits 0 on a clean tree, 1 when violations were found, and 2
on usage errors or unreadable input.  ``rules`` prints the EMI catalog.
``schema`` recomputes the wire-schema lock: ``--check`` (the default)
fails on any drift against ``schemas.lock.json``; ``--update`` rewrites
it, refusing field drift on a versioned unit without a version bump.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from emissary.analysis.lint import lint_paths


def _cmd_lint(args: argparse.Namespace) -> int:
    select = None
    if args.select:
        select = [code for chunk in args.select for code in chunk.split(",")]
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        from emissary.analysis.sarif import write_sarif

        write_sarif(report, args.sarif)
        print(f"wrote {args.sarif}", file=sys.stderr)
    for violation in report.violations:
        print(violation.format())
    noun = "file" if report.files_checked == 1 else "files"
    if report.clean:
        print(f"OK: {report.files_checked} {noun} clean", file=sys.stderr)
        return 0
    print(f"{len(report.violations)} violation(s) in "
          f"{report.files_checked} {noun}", file=sys.stderr)
    return 1


def _cmd_rules(_args: argparse.Namespace) -> int:
    from emissary.analysis.rules import ALL_RULES

    for cls in ALL_RULES:
        print(f"{cls.code}  {cls.summary}")
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    from emissary.analysis import schema_lock

    action = schema_lock.update if args.update else schema_lock.check
    code, messages = action(root=args.root, lock=args.lock)
    for message in messages:
        print(message, file=sys.stderr if code else sys.stdout)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m emissary.analysis",
        description="Project-specific static analysis (EMI rule catalog).")
    sub = parser.add_subparsers(dest="command", required=True)

    lint_p = sub.add_parser("lint", help="lint Python files or directories")
    lint_p.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    lint_p.add_argument("--select", action="append", default=[],
                        metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    lint_p.add_argument("--sarif", metavar="PATH", default=None,
                        help="also write findings as SARIF 2.1.0 to PATH")
    lint_p.set_defaults(func=_cmd_lint)

    rules_p = sub.add_parser("rules", help="list the EMI rule catalog")
    rules_p.set_defaults(func=_cmd_rules)

    schema_p = sub.add_parser(
        "schema", help="wire-schema drift gate against schemas.lock.json")
    group = schema_p.add_mutually_exclusive_group()
    group.add_argument("--check", action="store_true",
                       help="fail on drift against the lock (default)")
    group.add_argument("--update", action="store_true",
                       help="rewrite the lock (refuses un-bumped drift)")
    schema_p.add_argument("--root", default="src/emissary",
                          help="package root to extract (default: src/emissary)")
    schema_p.add_argument("--lock", default="schemas.lock.json",
                          help="lock file path (default: schemas.lock.json)")
    schema_p.set_defaults(func=_cmd_schema)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
