"""Runtime kernel-state sanitizer (debug-mode invariant checking).

EMISSARY's correctness argument leans on invariants the paper states but
the kernels only imply: a set never holds more than ``hp_threshold``
high-priority lines, RRPVs stay inside ``[0, 2^M)``, recency structures
remain valid permutations of the resident lines, and telemetry counters
stay sum-consistent with the hit/miss vectors.  A metadata-update bug
can violate any of these without crashing or even visibly changing hit
rates on small traces — exactly the failure mode that corrupts policy
comparisons silently.

:class:`Sanitizer` makes those invariants fail loudly.  It attaches to
engines the same way telemetry does (a ``sanitizer=`` constructor
parameter; engines call :meth:`Sanitizer.attach_kernel` /
:meth:`Sanitizer.attach_naive` right after building the policy object)
and validates the touched set's state after **every** kernel dispatch,
raising :class:`SanitizerError` with the set index and access position
on the first violation.  Detached (``sanitizer=None``, the default) the
hot paths carry a single ``is None`` test per run, nothing per access —
the bench guard (``python -m emissary.bench --sanitizer-overhead``)
holds the detached overhead under 5%.

Attachment order matters and the engines get it right: telemetry first
(it rebinds ``run_set`` to the instrumented twin), then the sanitizer
(which wraps whatever ``run_set`` is bound to), so instrumented and
plain runs are both checked.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from emissary.compiled import BoolArray, CompiledKernel, IndexArray, UniformArray
from emissary.policies.base import NaivePolicy, PolicyKernel
from emissary.policies.emissary import EmissaryKernel, NaiveEmissary
from emissary.policies.lru import LRUKernel, NaiveLRU
from emissary.policies.random_policy import NaiveRandom, RandomKernel
from emissary.policies.srrip import RRPV_MAX, NaiveSRRIP, SRRIPKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np
    from numpy.typing import NDArray

    from emissary.telemetry import Telemetry


class SanitizerError(RuntimeError):
    """A kernel-state invariant was violated.

    ``set_index`` is the cache set whose state failed validation (None
    for whole-run counter checks) and ``access_position`` the number of
    accesses dispatched through the sanitizer when the violation was
    detected (for naive engines: the failing access's trace index).
    """

    def __init__(self, message: str, *, set_index: int | None = None,
                 access_position: int | None = None) -> None:
        where = []
        if set_index is not None:
            where.append(f"set {set_index}")
        if access_position is not None:
            where.append(f"access {access_position}")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(message + suffix)
        self.set_index = set_index
        self.access_position = access_position


class Sanitizer:
    """Per-dispatch invariant checker for both engine families.

    One instance may serve several kernels (the hierarchy engine shares
    it across its L1 and L2 stages); ``checks`` counts completed
    validations and ``accesses`` the accesses dispatched through
    sanitized batched kernels, so tests can assert the sanitizer
    actually ran.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.accesses = 0
        #: Policy names this instance was attached to, in order.
        self.attached: list[str] = []

    # -- batched kernels --------------------------------------------------

    def attach_kernel(self, kernel: "PolicyKernel | CompiledKernel") -> None:
        """Wrap the kernel's dispatch entry point to validate touched
        sets after every dispatch.  Call after ``attach_telemetry`` (if
        any).  Compiled kernels are wrapped at ``run_batch`` (their
        flat state arrays are validated per touched set); Python kernels
        at ``run_set``."""
        if isinstance(kernel, CompiledKernel):
            self._attach_compiled(kernel)
            return
        check = self._kernel_checker(kernel)
        inner = kernel.run_set
        self.attached.append(kernel.name)

        def run_set(set_index: int, tags: list[int],
                    u: Sequence[float] | None,
                    rep: Sequence[bool] | None = None,
                    cost: Sequence[int] | None = None,
                    extra: Sequence[int] | None = None,
                    core: Sequence[int] | None = None) -> list[bool]:
            hits = inner(set_index, tags, u, rep, cost, extra, core)
            self.accesses += len(tags)
            if check is not None:
                check(set_index, self.accesses)
            self.checks += 1
            return hits

        kernel.run_set = run_set  # type: ignore[method-assign]

    def _attach_compiled(self, kernel: CompiledKernel) -> None:
        """Wrap ``kernel.run_batch``: after each dispatch, validate the
        flat per-set state arrays of every set the batch touched."""
        inner = kernel.run_batch
        self.attached.append(kernel.name)

        def run_batch(set_idx: IndexArray, tags: IndexArray,
                      u: "UniformArray | None" = None,
                      rep: "NDArray[np.bool_] | None" = None,
                      cost: "IndexArray | None" = None,
                      extra: "IndexArray | None" = None,
                      core: "IndexArray | None" = None) -> BoolArray:
            hits = inner(set_idx, tags, u, rep, cost, extra, core)
            self.accesses += len(tags)
            for s in sorted(set(set_idx.tolist())):
                self._check_compiled(kernel, s, self.accesses)
            self.checks += 1
            return hits

        kernel.run_batch = run_batch  # type: ignore[method-assign]

    def _check_compiled(self, kernel: CompiledKernel, s: int,
                        pos: int) -> None:
        """Same invariants the per-policy Python checkers enforce, read
        from the compiled backend's flat state arrays."""
        name = f"compiled/{kernel.policy}"
        ways = kernel.ways
        base = s * ways
        size = int(kernel._size[s])
        if not 0 <= size <= ways:
            raise SanitizerError(
                f"{name}: {size} resident lines outside [0, {ways}] ways",
                set_index=s, access_position=pos)
        tags = kernel._tag[base:base + size].tolist()
        if len(set(tags)) != size:
            raise SanitizerError(
                f"{name}: duplicate resident tags {tags}",
                set_index=s, access_position=pos)
        if kernel.policy in ("lru", "emissary"):
            stamps = kernel._ts[base:base + size].tolist()
            if any(t <= 0 for t in stamps):
                raise SanitizerError(
                    f"{name}: non-positive timestamp on a resident line "
                    f"{stamps}", set_index=s, access_position=pos)
            if len(set(stamps)) != size:
                raise SanitizerError(
                    f"{name}: duplicate timestamps {stamps} (LRU order is "
                    "ambiguous)", set_index=s, access_position=pos)
        if kernel.policy == "srrip":
            for way, rrpv in enumerate(kernel._rrpv[base:base + size].tolist()):
                if not 0 <= rrpv <= RRPV_MAX:
                    raise SanitizerError(
                        f"{name}: RRPV {rrpv} at way {way} outside "
                        f"[0, {RRPV_MAX}]", set_index=s, access_position=pos)
        if kernel.policy == "emissary":
            hp = 0
            for way, prio in enumerate(kernel._prio[base:base + size].tolist()):
                if prio not in (0, 1):
                    raise SanitizerError(
                        f"{name}: priority bit {prio!r} at way {way} is not "
                        "0/1", set_index=s, access_position=pos)
                hp += prio
            if hp != int(kernel._hp[s]):
                raise SanitizerError(
                    f"{name}: hp_counts[{s}] = {int(kernel._hp[s])} but {hp} "
                    "HP lines are resident", set_index=s, access_position=pos)
            if hp > kernel.hp_threshold:
                raise SanitizerError(
                    f"{name}: {hp} HP lines exceed hp_threshold="
                    f"{kernel.hp_threshold}", set_index=s, access_position=pos)
            if getattr(kernel, "_partitioned", False):
                nc = kernel.num_cores
                prios = kernel._prio[base:base + size].tolist()
                owner_slice = kernel._owner[base:base + size].tolist()
                self._check_partition(
                    name, s, pos, kernel._quota.tolist(),
                    kernel._hp_by_core[s * nc:(s + 1) * nc].tolist(), hp,
                    owner_of={w for w, p in enumerate(prios) if p},
                    owners={w: owner_slice[w] for w in range(size)
                            if owner_slice[w] >= 0})

    def _kernel_checker(
            self, kernel: PolicyKernel) -> Callable[[int, int], None] | None:
        if isinstance(kernel, EmissaryKernel):
            return lambda s, pos: self._check_emissary(kernel, s, pos)
        if isinstance(kernel, SRRIPKernel):
            return lambda s, pos: self._check_srrip(kernel, s, pos)
        if isinstance(kernel, LRUKernel):
            return lambda s, pos: self._check_lru(kernel, s, pos)
        if isinstance(kernel, RandomKernel):
            return lambda s, pos: self._check_random(kernel, s, pos)
        return None  # unknown kernel: dispatch counting only

    def _check_lru(self, kernel: LRUKernel, s: int, pos: int) -> None:
        d = kernel._sets[s]
        if len(d) > kernel.ways:
            raise SanitizerError(
                f"lru: {len(d)} resident lines exceed {kernel.ways} ways",
                set_index=s, access_position=pos)
        for tag, count in d.items():
            # Fast path stores None; instrumented runs store hit counts.
            if count is not None and count < 0:
                raise SanitizerError(
                    f"lru: negative hit count {count} for tag {tag}",
                    set_index=s, access_position=pos)

    def _check_emissary(self, kernel: EmissaryKernel, s: int, pos: int) -> None:
        d = kernel._sets[s]
        if len(d) > kernel.ways:
            raise SanitizerError(
                f"emissary: {len(d)} resident lines exceed {kernel.ways} ways",
                set_index=s, access_position=pos)
        hp = 0
        for tag, prio in d.items():
            if prio not in (0, 1):
                raise SanitizerError(
                    f"emissary: priority bit {prio!r} for tag {tag} is not 0/1",
                    set_index=s, access_position=pos)
            hp += prio
        if hp != kernel.hp_counts[s]:
            raise SanitizerError(
                f"emissary: hp_counts[{s}] = {kernel.hp_counts[s]} but "
                f"{hp} HP lines are resident", set_index=s, access_position=pos)
        if hp > kernel.hp_threshold:
            raise SanitizerError(
                f"emissary: {hp} HP lines exceed hp_threshold="
                f"{kernel.hp_threshold}", set_index=s, access_position=pos)
        hits_of = getattr(kernel, "_hits_of", None)
        if hits_of is not None and hits_of[s].keys() != d.keys():
            raise SanitizerError(
                "emissary: instrumented hit accounting tracks different "
                "tags than the residency map", set_index=s, access_position=pos)
        if kernel.partitioned:
            self._check_partition(
                "emissary", s, pos, kernel.core_quotas,
                kernel.hp_by_core[s], hp,
                owner_of={t for t, p in d.items() if p},
                owners=kernel._owner[s])

    @staticmethod
    def _check_partition(name: str, s: int, pos: int, quotas: Sequence[int],
                         by_core: Sequence[int], hp: int,
                         owner_of: set, owners: dict) -> None:
        """Partitioned-budget invariants: per-core counts stay inside
        their quotas and sum to the set's HP total, and exactly the HP
        lines carry an owner whose tally matches the per-core counts."""
        if owners.keys() != owner_of:
            raise SanitizerError(
                f"{name}: owner map tracks {sorted(owners)} but the HP "
                f"lines are {sorted(owner_of)}",
                set_index=s, access_position=pos)
        tallied = [0] * len(quotas)
        for cr in owners.values():
            if not 0 <= cr < len(quotas):
                raise SanitizerError(
                    f"{name}: owner core {cr} outside [0, {len(quotas)})",
                    set_index=s, access_position=pos)
            tallied[cr] += 1
        if list(by_core) != tallied:
            raise SanitizerError(
                f"{name}: hp_by_core {list(by_core)} disagrees with the "
                f"owner map tally {tallied}",
                set_index=s, access_position=pos)
        if sum(by_core) != hp:
            raise SanitizerError(
                f"{name}: per-core HP counts sum to {sum(by_core)} but "
                f"{hp} HP lines are resident",
                set_index=s, access_position=pos)
        for cr, (count, quota) in enumerate(zip(by_core, quotas)):
            if not 0 <= count <= quota:
                raise SanitizerError(
                    f"{name}: core {cr} holds {count} HP lines outside its "
                    f"quota [0, {quota}]", set_index=s, access_position=pos)

    def _check_srrip(self, kernel: SRRIPKernel, s: int, pos: int) -> None:
        self._check_residency(kernel, "srrip", s, pos)
        for way, rrpv in enumerate(kernel.effective_rrpv(s)):
            if not 0 <= rrpv <= RRPV_MAX:
                raise SanitizerError(
                    f"srrip: RRPV {rrpv} at way {way} outside [0, {RRPV_MAX}]",
                    set_index=s, access_position=pos)

    def _check_random(self, kernel: RandomKernel, s: int, pos: int) -> None:
        self._check_residency(kernel, "random", s, pos)

    @staticmethod
    def _check_residency(kernel: PolicyKernel, name: str, s: int,
                         pos: int) -> None:
        """tag->way and way->tag maps must be inverse bijections."""
        ways_of = kernel._ways_of[s]  # type: ignore[attr-defined]
        tag_at = kernel._tag_at[s]  # type: ignore[attr-defined]
        if len(tag_at) > kernel.ways:
            raise SanitizerError(
                f"{name}: {len(tag_at)} resident lines exceed "
                f"{kernel.ways} ways", set_index=s, access_position=pos)
        if len(ways_of) != len(tag_at):
            raise SanitizerError(
                f"{name}: tag->way map has {len(ways_of)} entries but "
                f"{len(tag_at)} ways are resident",
                set_index=s, access_position=pos)
        for way, tag in enumerate(tag_at):
            if ways_of.get(tag) != way:
                raise SanitizerError(
                    f"{name}: way {way} holds tag {tag} but tag->way maps it "
                    f"to {ways_of.get(tag)}", set_index=s, access_position=pos)

    # -- naive (per-access reference) impls -------------------------------

    def attach_naive(self, impl: NaivePolicy) -> None:
        """Wrap ``impl.on_hit`` / ``impl.on_fill`` to validate the
        touched set after every state update."""
        check = self._naive_checker(impl)
        self.attached.append(impl.name)
        inner_hit = impl.on_hit
        inner_fill = impl.on_fill

        def on_hit(set_index: int, way: int, access_index: int) -> None:
            inner_hit(set_index, way, access_index)
            if check is not None:
                check(set_index, access_index)
            self.checks += 1

        def on_fill(set_index: int, way: int, access_index: int, u_i: float,
                    cost_i: int | None = None,
                    core_i: int | None = None) -> None:
            inner_fill(set_index, way, access_index, u_i, cost_i, core_i)
            if check is not None:
                check(set_index, access_index)
            self.checks += 1

        impl.on_hit = on_hit  # type: ignore[method-assign]
        impl.on_fill = on_fill  # type: ignore[method-assign]

    def _naive_checker(
            self, impl: NaivePolicy) -> Callable[[int, int], None] | None:
        if isinstance(impl, NaiveEmissary):
            return lambda s, pos: self._check_naive_emissary(impl, s, pos)
        if isinstance(impl, NaiveSRRIP):
            return lambda s, pos: self._check_naive_srrip(impl, s, pos)
        if isinstance(impl, NaiveLRU):
            return lambda s, pos: self._check_naive_lru(impl, s, pos)
        if isinstance(impl, NaiveRandom):
            return None  # stateless
        return None

    @staticmethod
    def _check_timestamps(timestamps: Sequence[int], name: str, s: int,
                          ways: int, pos: int) -> None:
        """Recency state must be a valid permutation: the nonzero
        timestamps of a set (its filled ways) are strictly distinct, so
        LRU ordering is total."""
        base = s * ways
        seen = set()
        for w in range(ways):
            t = timestamps[base + w]
            if t == 0:
                continue
            if t in seen:
                raise SanitizerError(
                    f"{name}: duplicate timestamp {t} in set (LRU order is "
                    "ambiguous)", set_index=s, access_position=pos)
            seen.add(t)

    def _check_naive_lru(self, impl: NaiveLRU, s: int, pos: int) -> None:
        self._check_timestamps(impl.timestamps, "lru", s, impl.ways, pos)

    def _check_naive_emissary(self, impl: NaiveEmissary, s: int,
                              pos: int) -> None:
        self._check_timestamps(impl.timestamps, "emissary", s, impl.ways, pos)
        base = s * impl.ways
        hp = 0
        for w in range(impl.ways):
            prio = impl.priority[base + w]
            if prio not in (0, 1):
                raise SanitizerError(
                    f"emissary: priority bit {prio!r} at way {w} is not 0/1",
                    set_index=s, access_position=pos)
            hp += prio
        if hp != impl.hp_counts[s]:
            raise SanitizerError(
                f"emissary: hp_counts[{s}] = {impl.hp_counts[s]} but {hp} "
                "HP lines are flagged", set_index=s, access_position=pos)
        if hp > impl.hp_threshold:
            raise SanitizerError(
                f"emissary: {hp} HP lines exceed hp_threshold="
                f"{impl.hp_threshold}", set_index=s, access_position=pos)
        if impl.partitioned:
            self._check_partition(
                "emissary", s, pos, impl.core_quotas,
                impl.hp_by_core[s], hp,
                owner_of={w for w in range(impl.ways)
                          if impl.priority[base + w]},
                owners={w: impl.owner[base + w] for w in range(impl.ways)
                        if impl.owner[base + w] >= 0})

    def _check_naive_srrip(self, impl: NaiveSRRIP, s: int, pos: int) -> None:
        base = s * impl.ways
        for w in range(impl.ways):
            rrpv = impl.rrpv[base + w]
            if not 0 <= rrpv <= RRPV_MAX:
                raise SanitizerError(
                    f"srrip: RRPV {rrpv} at way {w} outside [0, {RRPV_MAX}]",
                    set_index=s, access_position=pos)

    # -- whole-run counter consistency ------------------------------------

    def check_counters(self, telemetry: "Telemetry", n: int,
                       hit_count: int) -> None:
        """Telemetry counters must be sum-consistent with the hit/miss
        vector: every miss is a fill, every eviction evicted a fill, and
        the policy-class splits partition their totals.  Engines call
        this at end of run when both telemetry and a sanitizer are
        attached; names absent from the payload are skipped."""
        c = telemetry.counters
        expected = {
            "hits": hit_count,
            "misses": n - hit_count,
            "fills": n - hit_count,
        }
        for name, want in expected.items():
            got = c.get(name)
            if got is not None and got != want:
                raise SanitizerError(
                    f"counter {name} = {got}, expected {want} from the "
                    f"hit/miss vector (n={n}, hits={hit_count})")
        evictions = c.get("evictions")
        if evictions is not None:
            if evictions > n - hit_count:
                raise SanitizerError(
                    f"counter evictions = {evictions} exceeds fills = "
                    f"{n - hit_count}")
            dead = c.get("dead_on_fill")
            if dead is not None and dead > evictions:
                raise SanitizerError(
                    f"counter dead_on_fill = {dead} exceeds evictions = "
                    f"{evictions}")
            hp_ev = c.get("evictions_hp")
            lp_ev = c.get("evictions_lp")
            if hp_ev is not None and lp_ev is not None \
                    and hp_ev + lp_ev != evictions:
                raise SanitizerError(
                    f"counters evictions_hp ({hp_ev}) + evictions_lp "
                    f"({lp_ev}) != evictions ({evictions})")
        promos = c.get("hp_promotions")
        demos = c.get("hp_demotions")
        final = c.get("hp_lines_final")
        if promos is not None and demos is not None and final is not None \
                and promos - demos != final:
            raise SanitizerError(
                f"counters hp_promotions ({promos}) - hp_demotions ({demos}) "
                f"!= hp_lines_final ({final})")
        self.checks += 1
