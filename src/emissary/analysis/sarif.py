"""SARIF 2.1.0 serialization of lint reports.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: emitting it from ``python -m emissary.analysis lint
--sarif out.sarif`` turns every EMI finding into an annotated line in
the PR diff instead of a buried CI log line.  Only the small stable
subset code scanning actually reads is emitted — tool metadata with
the rule catalog, and one ``result`` per violation with a physical
location — so the output stays diffable and golden-testable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from emissary.analysis.lint import LintReport, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Tool identity reported in every run object.
TOOL_NAME = "emissary-analysis"
TOOL_URI = "https://example.invalid/emissary/analysis"


def _rule_catalog() -> list[dict[str, Any]]:
    from emissary.analysis.rules import ALL_RULES

    return [{
        "id": cls.code,
        "name": cls.__name__,
        "shortDescription": {"text": cls.summary},
    } for cls in ALL_RULES]


def _result(violation: Violation) -> dict[str, Any]:
    return {
        "ruleId": violation.code,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": Path(violation.path).as_posix(),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(violation.line, 1),
                    "startColumn": max(violation.col, 1),
                },
            },
        }],
    }


def sarif_log(report: LintReport) -> dict[str, Any]:
    """Render one lint report as a SARIF 2.1.0 log object."""
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": _rule_catalog(),
                },
            },
            "results": [_result(v) for v in report.violations],
        }],
    }


def write_sarif(report: LintReport, path: str | Path) -> None:
    payload = sarif_log(report)
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")
