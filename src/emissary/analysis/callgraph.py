"""Lightweight project call graph for interprocedural analysis.

The per-file EMI rules (EMI001-EMI006) can prove properties of a single
module, but the determinism guarantee is a property of *reachability*:
a policy kernel is pure only if no RNG/clock/filesystem call is
reachable through any chain of helpers, not merely absent from the
kernel's own module.  This module builds the call graph those proofs
run on.

Scope and philosophy:

* **Module-qualified defs.**  Every function and method in the analyzed
  tree gets a stable qualified name ``package.module:Class.method`` (or
  ``package.module:func``, with nested functions as ``outer.inner``).
* **Conservative on dynamic dispatch.**  ``self.m()`` resolves to every
  method named ``m`` visible on the enclosing class *and* on any project
  class related to it by inheritance (bases and subclasses, resolved by
  name).  When the enclosing class does not define ``m`` at all, the
  call resolves to **every** project method named ``m`` — over-
  approximation is the safe direction for a purity proof.  A short
  denylist of ubiquitous container/str method names (``get``, ``pop``,
  ``append``, ...) is exempted from that widening: linking every
  ``d.get(...)`` to every project ``get`` method would drown the graph
  in edges that cannot be real dispatch targets for plain-dict call
  sites, and those names are never analysis entry points.
* **Externals are kept, not dropped.**  A call that cannot be resolved
  to a project function becomes an *external* edge carrying its dotted
  call text (``time.perf_counter``, ``self._tel.inc`` -> ``inc``).
  Purity rules match forbidden patterns against those strings.
* **Nested defs are reachable from their definer.**  A closure handed
  to a callback registry is typically invoked on the definer's behalf;
  the definition edge keeps such indirect calls inside the
  over-approximation.

The graph is deliberately flow-insensitive and context-insensitive:
cheap enough to rebuild on every lint run, precise enough that the
repo's real kernels prove pure without suppressions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from emissary.analysis.lint import dotted_name, iter_python_files

#: Method names excluded from the "any project method with this name"
#: dynamic-dispatch widening: ubiquitous container/str/protocol methods
#: whose call sites overwhelmingly target builtins, not project classes.
COMMON_METHOD_NAMES = frozenset({
    "add", "append", "clear", "copy", "count", "decode", "discard",
    "encode", "endswith", "extend", "format", "get", "index", "insert",
    "items", "join", "keys", "lower", "pop", "popitem", "read", "remove",
    "replace", "setdefault", "sort", "split", "startswith", "strip",
    "update", "upper", "values", "write",
})


@dataclass(frozen=True)
class CallEdge:
    """One outgoing call from a function.

    ``kind`` is ``"fn"`` for a resolved project function (``target`` is
    its qualified name) or ``"ext"`` for an unresolved external call
    (``target`` is the dotted call text as written, e.g. ``time.time``
    or — for unresolvable receivers — just the method name).
    """

    kind: str
    target: str
    line: int


@dataclass
class FunctionInfo:
    """One project function/method and everything resolution needs."""

    qual: str            # "package.module:Class.method" / "package.module:func"
    module: str          # "package.module"
    name: str            # bare function name
    cls: str | None      # enclosing class name, None for module-level
    path: Path
    line: int
    is_async: bool
    edges: list[CallEdge] = field(default_factory=list)


@dataclass
class ClassInfo:
    """A project class: its methods and (name-resolved) base classes."""

    qual: str            # "package.module:Class"
    module: str
    name: str
    bases: tuple[str, ...]          # base names as written (last attr part)
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qual


class CallGraph:
    """The resolved project call graph (see module docstring)."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method name -> every project function qual implementing it.
        self.methods_by_name: dict[str, list[str]] = {}

    def function(self, qual: str) -> FunctionInfo | None:
        return self.functions.get(qual)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()

    def reachable(self, roots: Iterable[str]) -> "ReachableSet":
        """BFS over call edges from ``roots``.

        Cycles are handled by the visited set; the result records, for
        every reached function and external, one shortest call path back
        to a root (for diagnostics).
        """
        reached: dict[str, tuple[str, ...]] = {}
        externals: dict[str, tuple[tuple[str, ...], int]] = {}
        queue: list[tuple[str, tuple[str, ...]]] = []
        for root in roots:
            if root in self.functions and root not in reached:
                reached[root] = (root,)
                queue.append((root, (root,)))
        while queue:
            qual, path = queue.pop(0)
            for edge in self.functions[qual].edges:
                if edge.kind == "fn":
                    if edge.target in reached:
                        continue
                    target_path = path + (edge.target,)
                    reached[edge.target] = target_path
                    queue.append((edge.target, target_path))
                elif edge.target not in externals:
                    externals[edge.target] = (path, edge.line)
        return ReachableSet(functions=reached, externals=externals)


@dataclass
class ReachableSet:
    """Functions and externals reachable from one set of roots.

    ``functions`` maps each reached qual to its call path from a root;
    ``externals`` maps each external call text to ``(path of the calling
    function, call line)``.
    """

    functions: dict[str, tuple[str, ...]]
    externals: dict[str, tuple[tuple[str, ...], int]]


# -- builder ---------------------------------------------------------------


class _ModuleIndex:
    """Per-module import/alias table used during resolution."""

    def __init__(self, module: str, package: str) -> None:
        self.module = module
        self.package = package
        #: local alias -> project module name ("emissary.traces").
        self.module_aliases: dict[str, str] = {}
        #: local name -> (project module, symbol) for `from X import Y`.
        self.symbol_imports: dict[str, tuple[str, str]] = {}

    def record_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == self.package \
                        or alias.name.startswith(self.package + "."):
                    self.module_aliases[alias.asname
                                        or alias.name.split(".")[0]] = alias.name
            return
        target = node.module
        if node.level:  # relative import: resolve against this module
            base = self.module.split(".")
            base = base[: len(base) - node.level]
            target = ".".join(base + ([node.module] if node.module else []))
        if target is None or not (target == self.package
                                  or target.startswith(self.package + ".")):
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.symbol_imports[local] = (target, alias.name)


class _GraphBuilder(ast.NodeVisitor):
    """Collect defs and raw call sites for one module (pass 1)."""

    def __init__(self, graph: CallGraph, index: _ModuleIndex, path: Path) -> None:
        self.graph = graph
        self.index = index
        self.path = path
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionInfo] = []
        #: raw call sites: (caller qual, call node) resolved in pass 2.
        self.calls: list[tuple[FunctionInfo, ast.Call]] = []

    # -- defs ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_stack:
            # Classes defined inside functions are out of scope for the
            # project graph; their bodies still contribute call edges to
            # the defining function via generic_visit.
            self.generic_visit(node)
            return
        self._class_stack.append(node.name)
        qual = f"{self.index.module}:{'.'.join(self._class_stack)}"
        bases = tuple(b for b in (self._base_name(base) for base in node.bases)
                      if b is not None)
        self.graph.classes[qual] = ClassInfo(
            qual=qual, module=self.index.module, name=node.name, bases=bases)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _base_name(node: ast.expr) -> str | None:
        name = dotted_name(node)
        return name.split(".")[-1] if name else None

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                        is_async: bool) -> None:
        cls = self._class_stack[-1] if self._class_stack \
            and not self._func_stack else None
        if self._func_stack:
            scope = self._func_stack[-1].qual.split(":", 1)[1]
            qual = f"{self.index.module}:{scope}.{node.name}"
        elif cls is not None:
            qual = f"{self.index.module}:{'.'.join(self._class_stack)}.{node.name}"
        else:
            qual = f"{self.index.module}:{node.name}"
        info = FunctionInfo(qual=qual, module=self.index.module, name=node.name,
                            cls=cls, path=self.path, line=node.lineno,
                            is_async=is_async)
        self.graph.functions[qual] = info
        self.graph.methods_by_name.setdefault(node.name, []).append(qual)
        if cls is not None:
            class_qual = f"{self.index.module}:{'.'.join(self._class_stack)}"
            self.graph.classes[class_qual].methods[node.name] = qual
        if self._func_stack:
            # A nested def is reachable from its definer (closures are
            # typically invoked or registered on the definer's behalf).
            self._func_stack[-1].edges.append(
                CallEdge(kind="fn", target=qual, line=node.lineno))
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    # -- call sites ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            self.calls.append((self._func_stack[-1], node))
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        self.index.record_import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.index.record_import(node)


def _module_name(path: Path, root: Path, package: str) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


def _resolve_call(graph: CallGraph, index: _ModuleIndex, caller: FunctionInfo,
                  call: ast.Call) -> list[CallEdge]:
    """Resolve one call site into project and/or external edges."""
    line = call.lineno
    name = dotted_name(call.func)
    if name is None:
        # Computed callee (subscript, call-of-call, lambda): nothing to
        # resolve; chained `.attr()` on a call result still surfaces the
        # trailing attribute as an external below.
        if isinstance(call.func, ast.Attribute):
            return [CallEdge(kind="ext", target=call.func.attr, line=line)]
        return []
    parts = name.split(".")

    def method_edges(method: str, receiver_class: str | None) -> list[CallEdge]:
        """Conservative dispatch: enclosing hierarchy first, then any
        project method of that name (unless it is a common container
        method name — see COMMON_METHOD_NAMES)."""
        targets: list[str] = []
        if receiver_class is not None:
            for class_qual in _hierarchy(graph, index.module, receiver_class):
                info = graph.classes[class_qual]
                if method in info.methods:
                    targets.append(info.methods[method])
        if not targets and method not in COMMON_METHOD_NAMES:
            targets = list(graph.methods_by_name.get(method, ()))
        if targets:
            return [CallEdge(kind="fn", target=t, line=line)
                    for t in sorted(set(targets))]
        return [CallEdge(kind="ext", target=name, line=line)]

    # self.m(...) / cls.m(...): dispatch within the project class graph.
    if parts[0] in ("self", "cls") and len(parts) == 2 and caller.cls is not None:
        return method_edges(parts[1], caller.cls)
    if parts[0] in ("self", "cls") and len(parts) > 2:
        # self.attr.m(...): receiver type unknown -> widen by name.
        return method_edges(parts[-1], None)

    # Bare name: local def, imported symbol, or external builtin.
    if len(parts) == 1:
        local = f"{index.module}:{name}"
        if local in graph.functions:
            return [CallEdge(kind="fn", target=local, line=line)]
        scoped = f"{caller.qual.split(':', 1)[1]}.{name}"
        nested = f"{index.module}:{scoped}"
        if nested in graph.functions:
            return [CallEdge(kind="fn", target=nested, line=line)]
        class_qual = f"{index.module}:{name}"
        if class_qual in graph.classes:
            return _init_edges(graph, index.module, class_qual, line)
        if name in index.symbol_imports:
            mod, symbol = index.symbol_imports[name]
            target = f"{mod}:{symbol}"
            if target in graph.functions:
                return [CallEdge(kind="fn", target=target, line=line)]
            if target in graph.classes:
                return _init_edges(graph, mod, target, line)
        return [CallEdge(kind="ext", target=name, line=line)]

    # module.func(...) via a project-module alias.
    head = parts[0]
    if head in index.module_aliases and len(parts) >= 2:
        target_mod = index.module_aliases[head]
        tail = parts[1:]
        # `import emissary.traces` (no asname) binds "emissary", so the
        # written dots themselves carry the module: take the longest
        # dotted prefix as the module and the final part as the symbol.
        if target_mod.split(".")[0] == head and target_mod != head \
                and len(parts) > 2:
            target_mod = ".".join(parts[:-1])
            tail = parts[-1:]
        fn = f"{target_mod}:{'.'.join(tail)}"
        if fn in graph.functions:
            return [CallEdge(kind="fn", target=fn, line=line)]
        if fn in graph.classes:
            return _init_edges(graph, target_mod, fn, line)
        return [CallEdge(kind="ext", target=name, line=line)]

    # imported-symbol attribute: `from emissary import traces` then
    # traces.generate(...), or ClassName.method(...).
    if head in index.symbol_imports:
        mod, symbol = index.symbol_imports[head]
        as_module = f"{mod}.{symbol}"
        fn = f"{as_module}:{'.'.join(parts[1:])}"
        if fn in graph.functions:
            return [CallEdge(kind="fn", target=fn, line=line)]
        class_qual = f"{mod}:{symbol}"
        if class_qual in graph.classes and len(parts) == 2:
            info = graph.classes[class_qual]
            if parts[1] in info.methods:
                return [CallEdge(kind="fn", target=info.methods[parts[1]],
                                 line=line)]
        return [CallEdge(kind="ext", target=name, line=line)]

    # ClassName.method(...) in the same module.
    class_qual = f"{index.module}:{head}"
    if class_qual in graph.classes and len(parts) == 2:
        info = graph.classes[class_qual]
        if parts[1] in info.methods:
            return [CallEdge(kind="fn", target=info.methods[parts[1]],
                             line=line)]

    # Unknown dotted receiver: keep the full text for pattern matching,
    # and widen by method name (dynamic-dispatch conservatism).
    edges = method_edges(parts[-1], None)
    if all(e.target != name for e in edges):
        edges.append(CallEdge(kind="ext", target=name, line=line))
    return edges


def _init_edges(graph: CallGraph, module: str, class_qual: str,
                line: int) -> list[CallEdge]:
    """Instantiation: edge to ``__init__``/``__post_init__`` when defined."""
    info = graph.classes[class_qual]
    edges = [CallEdge(kind="fn", target=info.methods[m], line=line)
             for m in ("__init__", "__post_init__") if m in info.methods]
    return edges or [CallEdge(kind="ext", target=info.name, line=line)]


def _hierarchy(graph: CallGraph, module: str, cls: str) -> list[str]:
    """The enclosing class plus name-resolved bases and subclasses."""
    start = None
    for qual, info in graph.classes.items():
        if info.name == cls and info.module == module:
            start = qual
            break
    if start is None:
        return []
    related = {start}
    changed = True
    while changed:  # transitive closure over the base/subclass relation
        changed = False
        for qual, info in graph.classes.items():
            if qual in related:
                continue
            names = {graph.classes[r].name for r in related}
            if any(base in names for base in info.bases) \
                    or any(info.name == graph.classes[r].name
                           for r in related):
                related.add(qual)
                changed = True
        for qual in list(related):
            for base in graph.classes[qual].bases:
                for other, info in graph.classes.items():
                    if info.name == base and other not in related:
                        related.add(other)
                        changed = True
    return sorted(related)


def build_callgraph(root: str | Path, package: str = "emissary") -> CallGraph:
    """Parse every ``.py`` under ``root`` and build the resolved graph.

    ``root`` is the package directory (e.g. ``src/emissary``); modules
    are named ``package.relative.path``.  Files that fail to parse are
    skipped — the lint runner reports them as EMI000 separately.
    """
    root = Path(root)
    graph = CallGraph()
    builders: list[tuple[_GraphBuilder, _ModuleIndex]] = []
    for path in iter_python_files([root]):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError:
            continue
        index = _ModuleIndex(_module_name(path, root, package), package)
        builder = _GraphBuilder(graph, index, path)
        builder.visit(tree)
        builders.append((builder, index))
    # Pass 2: every def is known, resolve the recorded call sites.
    for builder, index in builders:
        for caller, call in builder.calls:
            caller.edges.extend(_resolve_call(graph, index, caller, call))
    return graph
