"""Lint-posture digest: what analysis regime produced this artifact.

A sweep report is a claim about simulated outcomes; the EMI catalog is
what makes that claim trustworthy.  :func:`posture` summarizes the
analysis regime in three numbers — rules in the catalog, source files
in the installed package, active pragma suppressions — cheap enough to
stamp into every sweep envelope (comment tokenization only, no rule
execution) and specific enough that a report produced by a tree full
of fresh suppressions is visibly different from a clean one.

The scan covers the *installed* package tree (the code that actually
ran), and the result is cached per process: sweeps in the test suite
call this hundreds of times.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Any

from emissary.analysis.lint import _parse_ignores, iter_python_files


@lru_cache(maxsize=1)
def _scan_package() -> tuple[int, int]:
    """(files, suppressions) over the installed emissary package."""
    import emissary

    root = Path(emissary.__file__).parent
    files = 0
    suppressions = 0
    for path in iter_python_files([root]):
        files += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        suppressions += sum(len(codes)
                            for codes in _parse_ignores(source).values())
    return files, suppressions


def posture() -> dict[str, Any]:
    """The analysis-posture digest stamped into sweep envelopes."""
    from emissary.analysis.rules import ALL_RULES

    files, suppressions = _scan_package()
    return {"rules": len(ALL_RULES),
            "files_scanned": files,
            "suppressions": suppressions}
