"""Concurrency/async rules: EMI102-EMI105.

The serve stack (PR 7) and observability layer (PR 8) put an asyncio
event loop in front of a process pool; each rule here encodes one
hazard class those layers documented by hand:

- EMI102 — blocking calls inside ``async def`` stall every connection
  on the loop, not just the caller.
- EMI103 — a coroutine or task whose result is discarded never runs
  (or is garbage-collected mid-flight with a swallowed exception).
- EMI104 — forking workers after the loop owns sockets/threads makes
  children inherit them (the PR 7 eager-pre-fork invariant).
- EMI105 — shared mutable state written from coroutine bodies without
  lock or single-task discipline interleaves at every ``await``.

EMI102/103/105 are lexical per-file checks over ``async def`` bodies;
EMI104 is interprocedural (the fork may hide any number of sync
helpers below the coroutine that reaches it).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from emissary.analysis.lint import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Violation,
    dotted_name,
)

#: Call texts that block the calling thread (and therefore the loop).
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
})

#: Blocking socket-object methods (matched on the attribute tail when
#: the receiver text mentions a socket).
_SOCKET_BLOCKING_TAILS = frozenset({
    "accept", "connect", "recv", "recv_into", "recvfrom", "sendall",
})

#: Path-object I/O tails: synchronous filesystem traffic on the loop.
_FILE_IO_TAILS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


def _iter_async_defs(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _body_nodes(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes lexically inside ``fn``'s own body, not inside nested
    function definitions (a nested sync def is a callback that runs
    wherever it is invoked, not necessarily on the loop)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class BlockingCallInAsync(Rule):
    """EMI102: blocking call on the event loop."""

    code = "EMI102"
    summary = ("blocking call (`time.sleep`, sync file/socket/subprocess I/O, "
               "executor `.result()`) inside `async def`")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in _iter_async_defs(ctx.tree):
            for node in _body_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                violation = self._check_call(ctx, fn, node)
                if violation is not None:
                    yield violation

    def _check_call(self, ctx: FileContext, fn: ast.AsyncFunctionDef,
                    call: ast.Call) -> Violation | None:
        name = dotted_name(call.func)
        advice = f"in `async def {fn.name}`; use the async equivalent or " \
                 "run_in_executor"
        if name is not None:
            parts = name.split(".")
            tail2 = ".".join(parts[-2:])
            if name in BLOCKING_CALLS or tail2 in BLOCKING_CALLS:
                return self.violation(
                    ctx, call, f"blocking call `{name}` {advice}")
            if name == "open":
                return self.violation(
                    ctx, call, f"synchronous `open()` {advice}")
            if len(parts) >= 2 and parts[-1] in _SOCKET_BLOCKING_TAILS \
                    and any("sock" in p.lower() for p in parts[:-1]):
                return self.violation(
                    ctx, call, f"blocking socket op `{name}` {advice}")
            if len(parts) >= 2 and parts[-1] in _FILE_IO_TAILS:
                return self.violation(
                    ctx, call, f"synchronous file I/O `{name}` {advice}")
            if parts[-1] == "result" and len(parts) >= 2 \
                    and any(h in p.lower() for p in parts[:-1]
                            for h in ("executor", "pool")):
                return self.violation(
                    ctx, call,
                    f"`{name}()` blocks the loop on an executor future "
                    f"in `async def {fn.name}`; await "
                    "loop.run_in_executor / wrap_future instead")
        # submit(...).result(): the chained form never carries a dotted
        # name (the receiver is a call result), so match it structurally.
        if isinstance(call.func, ast.Attribute) and call.func.attr == "result" \
                and isinstance(call.func.value, ast.Call):
            inner = dotted_name(call.func.value.func)
            if inner is not None and inner.split(".")[-1] == "submit":
                return self.violation(
                    ctx, call,
                    f"`{inner}(...).result()` blocks the loop on an executor "
                    f"future in `async def {fn.name}`; await wrap_future "
                    "instead")
        return None


class DiscardedCoroutine(Rule):
    """EMI103: coroutine/task results that are silently dropped."""

    code = "EMI103"
    summary = ("coroutine or `create_task`/`ensure_future` result discarded "
               "(never awaited / task may be garbage-collected mid-flight)")

    _SPAWN_TAILS = frozenset({"create_task", "ensure_future"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        local_async = {node.name for node in _iter_async_defs(ctx.tree)}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr) \
                    or not isinstance(node.value, ast.Call):
                continue
            name = dotted_name(node.value.func)
            if name is None:
                continue
            parts = name.split(".")
            tail = parts[-1]
            if tail in self._SPAWN_TAILS:
                yield self.violation(
                    ctx, node.value,
                    f"`{name}(...)` result discarded; the loop holds only a "
                    "weak reference to tasks — keep a strong reference and "
                    "await or cancel it")
            elif name in local_async or (len(parts) == 2
                                         and parts[0] in ("self", "cls")
                                         and tail in local_async):
                yield self.violation(
                    ctx, node.value,
                    f"coroutine `{name}(...)` is never awaited; the body "
                    "will not run")


class ForkAfterAsync(ProjectRule):
    """EMI104: worker-process creation reachable from a coroutine.

    The serve stack's invariant (PR 7) is *eager pre-fork*: the
    ProcessPoolExecutor spawns its workers before the listening socket
    exists, so children never inherit accepted connections, loop fds,
    or locks held by server threads.  Any fork point reachable from an
    ``async def`` — however many sync helpers deep — breaks that unless
    explicitly justified at the construction site.
    """

    code = "EMI104"
    summary = ("ProcessPoolExecutor/fork construction reachable from "
               "`async def` (violates the eager-pre-fork invariant)")

    _FORK_TAILS = frozenset({"ProcessPoolExecutor", "fork", "forkpty"})
    _POOL_TEXTS = frozenset({"multiprocessing.Pool", "mp.Pool", "Pool"})

    def _is_fork(self, external: str) -> bool:
        parts = external.split(".")
        tail = parts[-1]
        if tail == "ProcessPoolExecutor":
            return True
        if tail in ("fork", "forkpty"):
            # Bare `fork` only counts under os/pty; a project method
            # named `fork` would have resolved to a fn edge instead.
            return parts[0] in ("os", "pty")
        # multiprocessing.Pool / mp.Pool / get_context(...).Pool
        return tail == "Pool" and len(parts) > 1

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        graph = project.graph
        roots = sorted(fn.qual for fn in graph.iter_functions() if fn.is_async)
        reach = graph.reachable(roots)
        for external in sorted(reach.externals):
            if not self._is_fork(external):
                continue
            chain, line = reach.externals[external]
            caller = graph.function(chain[-1])
            if caller is None:
                continue
            hops = " -> ".join(q.split(":", 1)[1] for q in chain)
            yield self.project_violation(
                caller.path, line,
                f"`{external}` is reachable from coroutine "
                f"`{chain[0]}` (via {hops}); workers forked after the loop "
                "owns sockets/threads inherit them — pre-fork eagerly or "
                "justify with a pragma here")


class SharedStateWriteInAsync(Rule):
    """EMI105: unsynchronized shared-state writes from coroutine bodies.

    Every ``await`` is a yield point; a read-modify-write on ``self``
    or module state that spans one interleaves with every other task.
    Writes inside an ``async with`` on a lock-like object are exempt,
    as are writes in coroutines documented single-task by pragma.
    """

    code = "EMI105"
    summary = ("write to instance/module state from a coroutine body without "
               "`async with <lock>` or single-task discipline")

    _LOCK_HINTS = ("lock", "mutex", "sem", "guard")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in _iter_async_defs(ctx.tree):
            # Collect `global` declarations up front: the walk below is
            # unordered, and the declaration may lexically follow a use.
            globals_declared: set[str] = {
                name for node in ast.walk(fn)
                if isinstance(node, ast.Global) for name in node.names}
            for node in self._walk_unlocked(fn.body):
                targets = self._write_targets(node)
                for target in targets:
                    text = dotted_name(target)
                    if isinstance(target, ast.Attribute) and text is not None \
                            and text.split(".")[0] in ("self", "cls"):
                        yield self.violation(
                            ctx, node,
                            f"write to `{text}` in `async def {fn.name}` "
                            "without a lock; every await interleaves tasks "
                            "— guard with `async with` on a lock or justify "
                            "with a pragma")
                    elif isinstance(target, ast.Name) \
                            and target.id in globals_declared:
                        yield self.violation(
                            ctx, node,
                            f"write to module global `{target.id}` in "
                            f"`async def {fn.name}` without a lock")

    def _locked(self, node: ast.AsyncWith) -> bool:
        for item in node.items:
            text = dotted_name(item.context_expr) \
                or (dotted_name(item.context_expr.func)
                    if isinstance(item.context_expr, ast.Call) else None)
            if text is not None \
                    and any(h in text.lower() for h in self._LOCK_HINTS):
                return True
        return False

    def _walk_unlocked(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Yield statements not protected by a lock-like ``async with``,
        without descending into nested function definitions."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.AsyncWith) and self._locked(node):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _write_targets(node: ast.AST) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, ast.AugAssign):
            return [node.target]
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return [node.target]
        return []
