"""EMI101: interprocedural kernel-purity (reachability, not residency).

EMI001/EMI002 inspect the kernel's own module; this rule proves the
stronger property the determinism story actually needs: *no* RNG,
clock, filesystem, or environment call is reachable from any policy
kernel entry point through any chain of helpers, however many modules
deep.  The proof runs over the conservative project call graph
(:mod:`emissary.analysis.callgraph`), so dynamic dispatch
over-approximates — a clean pass is a real guarantee, while a finding
may name a chain the runtime never takes (suppress with a justified
pragma at the entry point in that case).
"""

from __future__ import annotations

from collections.abc import Iterator

from emissary.analysis.callgraph import CallGraph, FunctionInfo
from emissary.analysis.lint import ProjectContext, ProjectRule, Violation
from emissary.analysis.rules.determinism import (
    BLESSED_NP_RANDOM,
    MONOTONIC_CALLS,
    WALL_CLOCK_CALLS,
)

#: Policy-kernel entry points: the per-set dispatch plus the per-event
#: hooks the hierarchy engine invokes on the policy object.
KERNEL_ENTRY_METHODS = frozenset({
    "run_set",
    "_run_set_tel",
    "on_hit",
    "on_fill",
    "find_victim",
    "replaced",
})

#: ``os.path`` helpers that are pure string manipulation, not I/O.
_PURE_OS_PATH = frozenset({
    "os.path.join", "os.path.split", "os.path.splitext", "os.path.basename",
    "os.path.dirname", "os.path.normpath", "os.fspath",
})

#: Path-object method names that always mean filesystem I/O regardless
#: of how the receiver was obtained.
_FS_METHOD_TAILS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes", "unlink",
    "touch", "mkdir", "rmdir", "rglob", "glob", "iterdir", "scandir",
    "hardlink_to", "symlink_to",
})


def classify_forbidden(name: str) -> str | None:
    """Why an external call text is impure, or None if it is allowed."""
    parts = name.split(".")
    tail2 = ".".join(parts[-2:])
    if name in WALL_CLOCK_CALLS or tail2 in WALL_CLOCK_CALLS:
        return "wall-clock read"
    if name in MONOTONIC_CALLS or tail2 in MONOTONIC_CALLS:
        return "monotonic timer read"
    if name == "os.urandom" or name.endswith(".urandom"):
        return "OS entropy read"
    if parts[0] == "random" and len(parts) > 1:
        return "stdlib process-global RNG"
    for prefix in ("np.random.", "numpy.random."):
        if name.startswith(prefix):
            member = name[len(prefix):].split(".")[0]
            if member not in BLESSED_NP_RANDOM:
                return "legacy global-state numpy RNG"
    if name.startswith("os.environ") or name in ("os.getenv", "os.getenvb"):
        return "environment read"
    if name == "open" or name.endswith(".open"):
        return "filesystem access"
    if name in _PURE_OS_PATH:
        return None
    if parts[0] in ("shutil", "tempfile", "glob") and len(parts) > 1:
        return "filesystem access"
    if parts[0] == "os" and len(parts) > 1 and not name.startswith("os.path."):
        return "OS call"
    if parts[-1] in _FS_METHOD_TAILS:
        return "filesystem access"
    return None


def kernel_entry_points(graph: CallGraph) -> Iterator[FunctionInfo]:
    """Every policy-kernel entry point present in the graph: the
    ``policies/`` per-set/per-event methods plus the ``kernels_py``
    flat dispatch functions the compiled backend mirrors."""
    for fn in graph.iter_functions():
        mod_parts = fn.module.split(".")
        if "policies" in mod_parts and fn.cls is not None \
                and fn.name in KERNEL_ENTRY_METHODS:
            yield fn
        elif mod_parts[-1] == "kernels_py" and fn.cls is None \
                and (fn.name.endswith("_run") or fn.name.endswith("_run_tel")):
            yield fn


class ImpureKernelReach(ProjectRule):
    """EMI101: an RNG/clock/filesystem/env call is *reachable* from a
    policy-kernel entry point."""

    code = "EMI101"
    summary = ("RNG/clock/filesystem/env call reachable from a policy-kernel "
               "entry point (interprocedural, over the project call graph)")

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        graph = project.graph
        for entry in sorted(kernel_entry_points(graph),
                            key=lambda fn: (str(fn.path), fn.line)):
            reach = graph.reachable([entry.qual])
            for external in sorted(reach.externals):
                reason = classify_forbidden(external)
                if reason is None:
                    continue
                chain, line = reach.externals[external]
                caller = graph.function(chain[-1])
                site = f"{caller.path}:{line}" if caller is not None \
                    else f"line {line}"
                hops = " -> ".join(q.split(":", 1)[1] for q in chain)
                yield self.project_violation(
                    entry.path, entry.line,
                    f"kernel entry point `{entry.qual}` reaches `{external}` "
                    f"({reason}) at {site} via {hops}")
