"""NumPy dtype stability: EMI006 (implicit dtype narrowing/inference).

``np.arange(n)`` infers C ``long`` — int32 on Windows, int64 on Linux —
and ``np.array([...])`` infers from contents, so the same trace can
decode to different widths on different platforms.  ``.astype(int)``
has the same hazard.  In kernel-feeding modules every array creation
and cast must pin an explicit numpy dtype.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from emissary.analysis.lint import FileContext, Rule, Violation, dotted_name

#: Array constructors whose dtype is inferred from their arguments.
INFERRING_CONSTRUCTORS = frozenset({"array", "arange", "asarray"})

#: ``.astype`` arguments that are platform- or context-dependent.
AMBIGUOUS_CASTS = frozenset({"int", "float", "bool", "complex"})


def _has_dtype_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in node.keywords)


class ImplicitDtype(Rule):
    """EMI006: implicit dtype inference in kernel-feeding modules."""

    code = "EMI006"
    summary = ("np.array/np.arange/np.asarray without dtype=, or "
               ".astype(int|float|bool) with a platform-dependent width, "
               "in kernel-feeding numpy modules")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.is_numpy_module:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None:
                parts = name.split(".")
                if len(parts) == 2 and parts[0] in ("np", "numpy") \
                        and parts[1] in INFERRING_CONSTRUCTORS \
                        and not _has_dtype_kwarg(node):
                    yield self.violation(
                        ctx, node,
                        f"`{name}(...)` without dtype= infers a platform-"
                        "dependent width; pin an explicit numpy dtype")
                    continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "astype" and node.args:
                arg = node.args[0]
                bad: str | None = None
                if isinstance(arg, ast.Name) and arg.id in AMBIGUOUS_CASTS:
                    bad = arg.id
                elif isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    bad = f"{arg.value!r}"
                if bad is not None:
                    yield self.violation(
                        ctx, node,
                        f".astype({bad}) is ambiguous about width; use an "
                        "explicit numpy dtype (e.g. np.int64)")
