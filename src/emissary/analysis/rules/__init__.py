"""The EMI rule catalog.

One module per concern; every rule class is registered in
:data:`ALL_RULES`, which is the single source of truth for the runner
and the CLI ``rules`` listing.
"""

from __future__ import annotations

from emissary.analysis.lint import Rule
from emissary.analysis.rules.async_rules import (
    BlockingCallInAsync,
    DiscardedCoroutine,
    ForkAfterAsync,
    SharedStateWriteInAsync,
)
from emissary.analysis.rules.dataclass_rules import FrozenMutableField, MissingFromDict
from emissary.analysis.rules.determinism import UnseededRandom, WallClockInKernel
from emissary.analysis.rules.exception_rules import SilentExcept
from emissary.analysis.rules.numpy_rules import ImplicitDtype
from emissary.analysis.rules.pragma_rules import UnusedSuppression
from emissary.analysis.rules.purity import ImpureKernelReach

#: Every rule, in catalog order.
ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandom,           # EMI001
    WallClockInKernel,        # EMI002
    FrozenMutableField,       # EMI003
    MissingFromDict,          # EMI004
    SilentExcept,             # EMI005
    ImplicitDtype,            # EMI006
    UnusedSuppression,        # EMI007
    ImpureKernelReach,        # EMI101 (project-level)
    BlockingCallInAsync,      # EMI102
    DiscardedCoroutine,       # EMI103
    ForkAfterAsync,           # EMI104 (project-level)
    SharedStateWriteInAsync,  # EMI105
)

__all__ = [
    "ALL_RULES",
    "BlockingCallInAsync",
    "DiscardedCoroutine",
    "ForkAfterAsync",
    "FrozenMutableField",
    "ImplicitDtype",
    "ImpureKernelReach",
    "MissingFromDict",
    "SharedStateWriteInAsync",
    "SilentExcept",
    "UnseededRandom",
    "UnusedSuppression",
    "WallClockInKernel",
]
