"""The EMI rule catalog.

One module per concern; every rule class is registered in
:data:`ALL_RULES`, which is the single source of truth for the runner
and the CLI ``rules`` listing.
"""

from __future__ import annotations

from emissary.analysis.lint import Rule
from emissary.analysis.rules.dataclass_rules import FrozenMutableField, MissingFromDict
from emissary.analysis.rules.determinism import UnseededRandom, WallClockInKernel
from emissary.analysis.rules.exception_rules import SilentExcept
from emissary.analysis.rules.numpy_rules import ImplicitDtype

#: Every rule, in catalog order.
ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandom,       # EMI001
    WallClockInKernel,    # EMI002
    FrozenMutableField,   # EMI003
    MissingFromDict,      # EMI004
    SilentExcept,         # EMI005
    ImplicitDtype,        # EMI006
)

__all__ = [
    "ALL_RULES",
    "FrozenMutableField",
    "ImplicitDtype",
    "MissingFromDict",
    "SilentExcept",
    "UnseededRandom",
    "WallClockInKernel",
]
