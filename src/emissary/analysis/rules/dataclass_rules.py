"""Dataclass contract rules: EMI003 (mutable state on frozen
dataclasses) and EMI004 (``to_dict`` without ``from_dict``).

Frozen specs are results-cache keys: a ``frozen=True`` dataclass whose
field is a plain ``dict`` is only shallowly immutable — its hash-equal
copies can drift apart after construction, silently corrupting cache
lookups.  The blessed pattern (see ``PolicySpec``/``TraceSpec``) is to
canonicalize such fields in ``__post_init__`` via
``object.__setattr__(self, "field", FrozenParams(...))`` or another
immutable constructor.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from emissary.analysis.lint import FileContext, Rule, Violation, dotted_name

#: Annotation base names that denote mutable containers.
MUTABLE_ANNOTATIONS = frozenset({
    "dict", "Dict", "defaultdict", "OrderedDict", "Counter",
    "list", "List", "deque",
    "set", "Set", "MutableMapping", "MutableSequence", "MutableSet",
    "bytearray",
})

#: Constructors that make a field value genuinely immutable when
#: assigned in ``__post_init__``.
IMMUTABLE_CONSTRUCTORS = frozenset({
    "FrozenParams", "tuple", "frozenset", "MappingProxyType", "bytes",
})


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = dotted_name(dec.func)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        for kw in dec.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is True:
                return True
    return False


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _annotation_base(node: ast.expr) -> str | None:
    """Base name of an annotation: ``dict[str, int]`` -> ``dict``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip()
    name = dotted_name(node)
    if name is not None:
        return name.split(".")[-1]
    return None


def _canonicalized_fields(cls: ast.ClassDef) -> set[str]:
    """Fields reassigned to an immutable constructor in ``__post_init__``."""
    fields: set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__post_init__"):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            if len(node.args) != 3:
                continue
            target = node.args[1]
            value = node.args[2]
            if not (isinstance(target, ast.Constant)
                    and isinstance(target.value, str)):
                continue
            if isinstance(value, ast.Call):
                ctor = dotted_name(value.func)
                if ctor is not None \
                        and ctor.split(".")[-1] in IMMUTABLE_CONSTRUCTORS:
                    fields.add(target.value)
    return fields


class FrozenMutableField(Rule):
    """EMI003: mutable container fields on ``frozen=True`` dataclasses."""

    code = "EMI003"
    summary = ("mutable container field on a frozen dataclass without "
               "__post_init__ canonicalization to FrozenParams/tuple/frozenset")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node)):
                continue
            canonical = _canonicalized_fields(node)
            for item in node.body:
                if not (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)):
                    continue
                base = _annotation_base(item.annotation)
                if base in MUTABLE_ANNOTATIONS \
                        and item.target.id not in canonical:
                    yield self.violation(
                        ctx, item,
                        f"frozen dataclass `{node.name}` field "
                        f"`{item.target.id}: {base}` is mutable; freeze it in "
                        "__post_init__ (FrozenParams/tuple/frozenset) or use "
                        "an immutable type")


class MissingFromDict(Rule):
    """EMI004: serializable dataclasses must round-trip.

    A dataclass exposing ``to_dict`` (it participates in cache keys or
    report envelopes) with no matching ``from_dict`` cannot be rebuilt
    from its own serialization, so round-trip drift goes untested.
    """

    code = "EMI004"
    summary = "dataclass defines to_dict but no from_dict round-trip"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and _is_dataclass(node)):
                continue
            methods = {item.name for item in node.body
                       if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))}
            if "to_dict" in methods and "from_dict" not in methods:
                yield self.violation(
                    ctx, node,
                    f"dataclass `{node.name}` has to_dict but no from_dict; "
                    "serialized forms must round-trip")
