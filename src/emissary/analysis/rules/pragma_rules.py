"""EMI007: stale ``# emi: ignore[...]`` pragmas.

A suppression that no longer suppresses anything is worse than noise:
it documents a hazard that is not there, and it will silently swallow
a *future* violation on that line.  The check itself lives in the
runner (:func:`emissary.analysis.lint.lint_paths`) because "unused" is
only decidable after every other selected rule has run; this class
exists so the rule appears in the catalog, is selectable, and carries
its documentation.
"""

from __future__ import annotations

from collections.abc import Iterator

from emissary.analysis.lint import (
    UNUSED_SUPPRESSION_CODE,
    FileContext,
    Rule,
    Violation,
)


class UnusedSuppression(Rule):
    """EMI007: a pragma that suppressed nothing this run.

    Named codes are judged only when their rule actually executed;
    bare ``# emi: ignore`` pragmas only on full-catalog runs; EMI007
    itself is never judged (naming it in a pragma is how this check is
    silenced).
    """

    code = UNUSED_SUPPRESSION_CODE
    summary = ("`# emi: ignore[...]` pragma that suppresses nothing "
               "(stale suppression; delete it)")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Evaluated by the runner after all other rules; see module doc.
        return iter(())
