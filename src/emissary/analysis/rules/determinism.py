"""Determinism rules: EMI001 (unseeded/global RNG) and EMI002
(wall-clock reads in kernel hot paths).

The whole results-cache story assumes a simulation is a pure function
of ``(trace spec, policy spec, config, seed)``.  Both rules exist to
keep ambient nondeterminism — process-global RNG state, the system
clock — out of anything that feeds simulated outcomes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from emissary.analysis.lint import FileContext, Rule, Violation, dotted_name

#: Names under ``np.random`` that are part of the blessed seeded-
#: Generator plumbing rather than the legacy global-state API.
BLESSED_NP_RANDOM = frozenset({
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
})

#: Call targets that read the wall clock (nondeterministic anywhere in
#: a kernel module — their values leak into whatever consumes them).
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
})

#: Monotonic timers: legitimate for span timing in orchestration code,
#: but never inside the per-set dispatch functions themselves.
MONOTONIC_CALLS = frozenset({
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.thread_time_ns",
})

#: Function names that are kernel hot paths: called once per set chunk
#: (or per access, for naive impls), so even a monotonic timer read
#: here is both a perf bug and a telemetry-skew hazard.
HOT_FUNCTIONS = frozenset({
    "run_set",
    "_run_set_tel",
    "_run_set_wide",
    "_dispatch",
    "on_hit",
    "on_fill",
    "find_victim",
    "replaced",
})


class UnseededRandom(Rule):
    """EMI001: RNG outside the blessed seeded ``Generator`` plumbing."""

    code = "EMI001"
    summary = ("global/unseeded RNG (`np.random.*` legacy API, bare `random`, "
               "or zero-arg `default_rng()`) outside seeded Generator plumbing")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            ctx, node,
                            "stdlib `random` uses process-global state; "
                            "thread a seeded np.random.Generator instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        ctx, node,
                        "stdlib `random` uses process-global state; "
                        "thread a seeded np.random.Generator instead")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] == "default_rng" \
                        and not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node,
                        "default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed or SeedSequence")
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if name.startswith(prefix):
                        member = name[len(prefix):].split(".")[0]
                        if member not in BLESSED_NP_RANDOM:
                            yield self.violation(
                                ctx, node,
                                f"`{name}` is the legacy global-state numpy RNG "
                                "API; use a seeded np.random.Generator")
                        break


class WallClockInKernel(Rule):
    """EMI002: clock reads in kernel/engine modules.

    Wall-clock calls are flagged anywhere in a kernel module; monotonic
    timers only inside the per-set hot-path functions (span timing in
    orchestration code is fine).
    """

    code = "EMI002"
    summary = ("wall-clock reads in kernel/engine modules, or any timer "
               "inside per-set hot-path functions")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.is_kernel_module:
            return
        yield from self._walk(ctx, ctx.tree, in_hot=False)

    def _walk(self, ctx: FileContext, node: ast.AST,
              in_hot: bool) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_hot = in_hot
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_hot = child.name in HOT_FUNCTIONS
            if isinstance(child, ast.Call):
                name = dotted_name(child.func)
                if name is not None:
                    tail2 = ".".join(name.split(".")[-2:])
                    if name in WALL_CLOCK_CALLS or tail2 in WALL_CLOCK_CALLS:
                        yield self.violation(
                            ctx, child,
                            f"wall-clock read `{name}` in a kernel module; "
                            "outcomes must not depend on the system clock")
                    elif (name in MONOTONIC_CALLS or tail2 in MONOTONIC_CALLS) \
                            and child_hot:
                        yield self.violation(
                            ctx, child,
                            f"timer `{name}` inside a per-set hot path; hoist "
                            "timing to the orchestration layer")
            yield from self._walk(ctx, child, child_hot)
