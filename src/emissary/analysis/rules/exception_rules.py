"""Exception hygiene: EMI005 (silent ``except`` blocks).

A handler whose body is nothing but ``pass``/``...`` swallows evidence.
In this codebase that pattern has real teeth: a silent ``except`` around
a kernel dispatch or cache publish would turn a correctness bug into a
quietly wrong sweep row.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from emissary.analysis.lint import FileContext, Rule, Violation


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and (stmt.value.value is Ellipsis
                 or isinstance(stmt.value.value, str)))


class SilentExcept(Rule):
    """EMI005: ``except`` handlers that swallow exceptions silently."""

    code = "EMI005"
    summary = "silent except handler (body is only pass/.../docstring)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.body and all(_is_noop(stmt) for stmt in node.body):
                caught = "bare except" if node.type is None else \
                    f"except {ast.unparse(node.type)}"
                yield self.violation(
                    ctx, node,
                    f"{caught} swallows the exception silently; handle it, "
                    "log it, or narrow and justify with an emi: ignore")
