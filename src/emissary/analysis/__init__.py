"""Static analysis and runtime sanitization for the EMISSARY codebase.

The engine's headline guarantee — batched, streamed, and hierarchy runs
are bit-identical to the per-access oracle — rests on invariants the
paper states but plain Python only implies: a single seeded RNG stream,
no wall-clock reads in kernels, genuinely immutable specs, stable NumPy
dtypes, per-set HP budgets that are never exceeded.  This package turns
those implicit contracts into machine-checked ones:

:mod:`emissary.analysis.lint`
    A project-specific AST lint framework with the EMI rule catalog
    (unseeded RNG, wall-clock in hot paths, mutable frozen-dataclass
    state, missing ``from_dict`` round-trips, silent ``except``, implicit
    dtype narrowing).  Run it with ``python -m emissary.analysis lint
    src tests``; suppress a finding in place with ``# emi:
    ignore[EMI001]``.

:mod:`emissary.analysis.rules`
    The rule implementations, one module per concern, registered in
    :data:`emissary.analysis.rules.ALL_RULES`.

:mod:`emissary.analysis.sanitizer`
    A debug-mode runtime invariant checker attachable to every engine
    (``sanitizer=`` parameter, mirroring ``telemetry=``).  After each
    kernel dispatch it validates per-set replacement state — HP
    occupancy within budget, RRPVs in range, residency maps bijective —
    and raises :class:`~emissary.analysis.sanitizer.SanitizerError`
    naming the set and access position on the first violation.  Detached
    (the default) it is structurally free: engines hold ``sanitizer=None``
    and never import this package on the hot path.
"""

from emissary.analysis.lint import (
    LintReport,
    Rule,
    Violation,
    lint_paths,
    lint_source,
)
from emissary.analysis.sanitizer import Sanitizer, SanitizerError

__all__ = [
    "LintReport",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "lint_paths",
    "lint_source",
]
