"""Project-specific AST lint framework (the EMI rule catalog).

Generic linters cannot know that this codebase's determinism guarantee
forbids *any* RNG outside the blessed seeded-``Generator`` plumbing, or
that a ``frozen=True`` dataclass carrying a plain dict is a results-cache
key waiting to drift.  This module provides the scaffolding those checks
run on:

- :class:`Rule` — one named check (``EMI001`` ...) over a parsed file.
- :class:`FileContext` — a parsed source file plus the metadata rules
  need: the AST, per-line ``# emi: ignore[...]`` suppressions, and
  whether the file is a kernel/engine hot-path module.
- :func:`lint_paths` / :func:`lint_source` — runners returning sorted
  :class:`Violation` records.

Suppressions are surgical and auditable: ``# emi: ignore[EMI002]`` on
the offending line silences exactly that rule there, ``# emi: ignore``
silences every rule on the line, and nothing else is ever skipped.  The
CLI (``python -m emissary.analysis lint``) exits 0 on a clean tree, 1
when violations are found, and 2 on unreadable/unparseable input.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from emissary.analysis.callgraph import CallGraph

#: Engine/kernel hot-path modules: determinism rules (wall-clock, dtype
#: stability) apply with full strictness here.
KERNEL_MODULE_NAMES = frozenset({"engine.py", "hierarchy.py"})

#: Modules whose NumPy arrays feed kernels directly: implicit dtype
#: narrowing here changes simulated outcomes across platforms.
NUMPY_MODULE_NAMES = KERNEL_MODULE_NAMES | frozenset({"traces.py", "trace_io.py"})

_IGNORE_RE = re.compile(r"#\s*emi:\s*ignore(?:\[\s*([A-Za-z0-9_,\s]*?)\s*\])?")

#: Pseudo-rule code attached to files the linter cannot parse.
SYNTAX_ERROR_CODE = "EMI000"


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: CODE message``."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """A parsed source file plus everything a :class:`Rule` may ask of it."""

    def __init__(self, path: str | Path, source: str, tree: ast.Module) -> None:
        self.path = Path(path)
        self.source = source
        self.tree = tree
        #: line number -> set of suppressed rule codes ("*" = all rules).
        self.ignores: dict[int, set[str]] = _parse_ignores(source)
        parts = self.path.parts
        name = self.path.name
        #: Kernel/engine hot-path module (policies/, the compiled
        #: backend, plus the engines).
        self.is_kernel_module = (name in KERNEL_MODULE_NAMES
                                 or "policies" in parts
                                 or "compiled" in parts)
        #: Module whose array dtypes feed kernels (superset of the above).
        self.is_numpy_module = (self.is_kernel_module
                                or name in NUMPY_MODULE_NAMES)

    def suppressed(self, code: str, line: int) -> bool:
        codes = self.ignores.get(line)
        return codes is not None and ("*" in codes or code in codes)


def _parse_ignores(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed codes, from *real* comments only.

    Tokenizing (rather than regex-scanning raw lines) means a pragma
    spelled inside a string literal — lint's own test fixtures are full
    of them — is not a suppression on the line that happens to contain
    the string.  Sources that fail to tokenize fall back to the raw
    line scan (they will usually be EMI000 syntax errors anyway).
    """
    ignores: dict[int, set[str]] = {}

    def record(lineno: int, text: str) -> None:
        match = _IGNORE_RE.search(text)
        if match is None:
            return
        listed = match.group(1)
        if listed is None:
            ignores[lineno] = {"*"}
        else:
            ignores[lineno] = {code.strip().upper()
                               for code in listed.split(",") if code.strip()}

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            record(lineno, text)
    return ignores


class Rule:
    """One named check.  Subclasses set ``code``/``summary`` and yield
    violations from :meth:`check`; the runner handles suppression."""

    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(code=self.code, path=str(ctx.path),
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0) + 1,
                         message=message)


@dataclass
class ProjectContext:
    """Everything a :class:`ProjectRule` sees: the resolved call graph
    of one package root plus the parsed per-file contexts of the run."""

    graph: "CallGraph"
    root: Path
    package: str
    files: dict[str, FileContext] = field(default_factory=dict)


class ProjectRule(Rule):
    """A whole-project check (interprocedural — needs the call graph).

    Project rules run once per discovered package root after every
    per-file rule; their violations honor the same per-line pragma
    suppressions.  ``check`` is a no-op so :func:`lint_source` (which
    has no project to build a graph over) can still select them.
    """

    project = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError

    def project_violation(self, path: str | Path, line: int,
                          message: str) -> Violation:
        return Violation(code=self.code, path=str(path), line=line, col=1,
                         message=message)


def package_roots(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """Discover package roots (dirs with ``__init__.py``) under ``paths``.

    A path that is itself a package is its own root; otherwise its
    immediate package children are roots (``src`` -> ``src/emissary``).
    Non-package trees (e.g. ``tests``) contribute none — project rules
    need resolvable module names to build a graph.
    """
    roots: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_dir():
            continue
        candidates = [path] if (path / "__init__.py").exists() else \
            sorted(child for child in path.iterdir()
                   if child.is_dir() and (child / "__init__.py").exists())
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                roots.append((candidate, candidate.name))
    return roots


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute chain, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run: findings plus how much was covered."""

    violations: tuple[Violation, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files, skipping
    hidden directories and ``__pycache__``."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py")
                                if not any(part.startswith(".") or part == "__pycache__"
                                           for part in p.parts))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"{path}: not a Python file or directory")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    from emissary.analysis.rules import ALL_RULES

    rules = [cls() for cls in ALL_RULES]
    if select is None:
        return rules
    wanted = {code.strip().upper() for code in select if code.strip()}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        known = ", ".join(sorted(rule.code for rule in rules))
        raise ValueError(f"unknown rule code(s) {sorted(unknown)}; known: {known}")
    return [rule for rule in rules if rule.code in wanted]


#: The unused-suppression pseudo-check (its rule class lives in
#: :mod:`emissary.analysis.rules.pragma_rules`); evaluated by the runner
#: after every other rule, because "unused" is only knowable then.
UNUSED_SUPPRESSION_CODE = "EMI007"


def _unused_pragma_violations(ctx: FileContext, used: set[tuple[int, str]],
                              executed: set[str],
                              full_run: bool) -> Iterator[Violation]:
    """EMI007: pragmas that suppressed nothing in this run.

    A named code is judged only if its rule actually executed (a
    ``--select EMI001`` run cannot know whether an ``EMI005`` pragma is
    stale); a bare ``# emi: ignore`` is judged only on a full-catalog
    run for the same reason.  ``EMI007`` itself is never judged — a
    pragma naming it exists to silence this very check.
    """
    for line, pragma_codes in sorted(ctx.ignores.items()):
        if "*" in pragma_codes:
            if full_run and not any(u_line == line for u_line, _ in used):
                yield Violation(
                    code=UNUSED_SUPPRESSION_CODE, path=str(ctx.path),
                    line=line, col=1,
                    message="blanket `# emi: ignore` suppresses nothing on "
                            "this line; delete it")
            continue
        for code in sorted(pragma_codes):
            if code == UNUSED_SUPPRESSION_CODE or code not in executed:
                continue
            if (line, code) not in used:
                yield Violation(
                    code=UNUSED_SUPPRESSION_CODE, path=str(ctx.path),
                    line=line, col=1,
                    message=f"`# emi: ignore[{code}]` suppresses nothing on "
                            f"this line; delete the stale pragma")


def _split_rules(rules: list[Rule]) -> tuple[list[Rule], list[ProjectRule], bool]:
    file_rules = [r for r in rules
                  if not isinstance(r, ProjectRule)
                  and r.code != UNUSED_SUPPRESSION_CODE]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    wants_unused = any(r.code == UNUSED_SUPPRESSION_CODE for r in rules)
    return file_rules, project_rules, wants_unused


def lint_source(source: str, path: str | Path = "<string>",
                select: Iterable[str] | None = None) -> list[Violation]:
    """Lint one in-memory source blob (the fixture-test entry point).

    Project rules (which need a package tree to build a call graph
    over) contribute nothing here; use :func:`lint_paths` or the rule's
    own ``check_project`` for those.
    """
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(code=SYNTAX_ERROR_CODE, path=str(path),
                          line=exc.lineno or 0, col=(exc.offset or 0),
                          message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    rules = _select_rules(select)
    file_rules, _project_rules, wants_unused = _split_rules(rules)
    found: list[Violation] = []
    used: set[tuple[int, str]] = set()
    for rule in file_rules:
        for violation in rule.check(ctx):
            if ctx.suppressed(violation.code, violation.line):
                used.add((violation.line, violation.code))
            else:
                found.append(violation)
    if wants_unused:
        executed = {rule.code for rule in file_rules}
        for violation in _unused_pragma_violations(ctx, used, executed,
                                                   full_run=select is None):
            if not ctx.suppressed(violation.code, violation.line):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None) -> LintReport:
    """Lint every Python file under ``paths``; violations come back
    sorted by location for stable, diffable output.

    Per-file rules run first; then, for every package root discovered
    under ``paths`` (see :func:`package_roots`), the project rules run
    over its call graph; finally EMI007 judges which pragmas suppressed
    nothing.  All three stages honor the same per-line pragmas.
    """
    rules = _select_rules(select)
    file_rules, project_rules, wants_unused = _split_rules(rules)
    violations: list[Violation] = []
    contexts: dict[str, FileContext] = {}
    used: dict[str, set[tuple[int, str]]] = {}
    files = 0
    for path in iter_python_files(paths):
        files += 1
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            violations.append(Violation(
                code=SYNTAX_ERROR_CODE, path=str(path), line=exc.lineno or 0,
                col=(exc.offset or 0), message=f"syntax error: {exc.msg}"))
            continue
        ctx = FileContext(path, source, tree)
        contexts[str(path)] = ctx
        hits = used.setdefault(str(path), set())
        for rule in file_rules:
            for violation in rule.check(ctx):
                if ctx.suppressed(violation.code, violation.line):
                    hits.add((violation.line, violation.code))
                else:
                    violations.append(violation)
    if project_rules:
        from emissary.analysis.callgraph import build_callgraph

        for root, package in package_roots(paths):
            project = ProjectContext(graph=build_callgraph(root, package),
                                     root=root, package=package,
                                     files=contexts)
            for rule in project_rules:
                for violation in rule.check_project(project):
                    ctx_maybe = contexts.get(violation.path)
                    if ctx_maybe is not None and ctx_maybe.suppressed(
                            violation.code, violation.line):
                        used.setdefault(violation.path, set()).add(
                            (violation.line, violation.code))
                    else:
                        violations.append(violation)
    if wants_unused:
        executed = {rule.code for rule in file_rules} \
            | {rule.code for rule in project_rules}
        for path_str, ctx in contexts.items():
            for violation in _unused_pragma_violations(
                    ctx, used.get(path_str, set()), executed,
                    full_run=select is None):
                if not ctx.suppressed(violation.code, violation.line):
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintReport(violations=tuple(violations), files_checked=files)
