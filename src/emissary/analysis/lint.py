"""Project-specific AST lint framework (the EMI rule catalog).

Generic linters cannot know that this codebase's determinism guarantee
forbids *any* RNG outside the blessed seeded-``Generator`` plumbing, or
that a ``frozen=True`` dataclass carrying a plain dict is a results-cache
key waiting to drift.  This module provides the scaffolding those checks
run on:

- :class:`Rule` — one named check (``EMI001`` ...) over a parsed file.
- :class:`FileContext` — a parsed source file plus the metadata rules
  need: the AST, per-line ``# emi: ignore[...]`` suppressions, and
  whether the file is a kernel/engine hot-path module.
- :func:`lint_paths` / :func:`lint_source` — runners returning sorted
  :class:`Violation` records.

Suppressions are surgical and auditable: ``# emi: ignore[EMI002]`` on
the offending line silences exactly that rule there, ``# emi: ignore``
silences every rule on the line, and nothing else is ever skipped.  The
CLI (``python -m emissary.analysis lint``) exits 0 on a clean tree, 1
when violations are found, and 2 on unreadable/unparseable input.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: Engine/kernel hot-path modules: determinism rules (wall-clock, dtype
#: stability) apply with full strictness here.
KERNEL_MODULE_NAMES = frozenset({"engine.py", "hierarchy.py"})

#: Modules whose NumPy arrays feed kernels directly: implicit dtype
#: narrowing here changes simulated outcomes across platforms.
NUMPY_MODULE_NAMES = KERNEL_MODULE_NAMES | frozenset({"traces.py", "trace_io.py"})

_IGNORE_RE = re.compile(r"#\s*emi:\s*ignore(?:\[\s*([A-Za-z0-9_,\s]*?)\s*\])?")

#: Pseudo-rule code attached to files the linter cannot parse.
SYNTAX_ERROR_CODE = "EMI000"


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: CODE message``."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """A parsed source file plus everything a :class:`Rule` may ask of it."""

    def __init__(self, path: str | Path, source: str, tree: ast.Module) -> None:
        self.path = Path(path)
        self.source = source
        self.tree = tree
        #: line number -> set of suppressed rule codes ("*" = all rules).
        self.ignores: dict[int, set[str]] = _parse_ignores(source)
        parts = self.path.parts
        name = self.path.name
        #: Kernel/engine hot-path module (policies/, the compiled
        #: backend, plus the engines).
        self.is_kernel_module = (name in KERNEL_MODULE_NAMES
                                 or "policies" in parts
                                 or "compiled" in parts)
        #: Module whose array dtypes feed kernels (superset of the above).
        self.is_numpy_module = (self.is_kernel_module
                                or name in NUMPY_MODULE_NAMES)

    def suppressed(self, code: str, line: int) -> bool:
        codes = self.ignores.get(line)
        return codes is not None and ("*" in codes or code in codes)


def _parse_ignores(source: str) -> dict[int, set[str]]:
    ignores: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(text)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None:
            ignores[lineno] = {"*"}
        else:
            ignores[lineno] = {code.strip().upper()
                               for code in listed.split(",") if code.strip()}
    return ignores


class Rule:
    """One named check.  Subclasses set ``code``/``summary`` and yield
    violations from :meth:`check`; the runner handles suppression."""

    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(code=self.code, path=str(ctx.path),
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0) + 1,
                         message=message)


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute chain, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run: findings plus how much was covered."""

    violations: tuple[Violation, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files, skipping
    hidden directories and ``__pycache__``."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py")
                                if not any(part.startswith(".") or part == "__pycache__"
                                           for part in p.parts))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"{path}: not a Python file or directory")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    from emissary.analysis.rules import ALL_RULES

    rules = [cls() for cls in ALL_RULES]
    if select is None:
        return rules
    wanted = {code.strip().upper() for code in select if code.strip()}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        known = ", ".join(sorted(rule.code for rule in rules))
        raise ValueError(f"unknown rule code(s) {sorted(unknown)}; known: {known}")
    return [rule for rule in rules if rule.code in wanted]


def lint_source(source: str, path: str | Path = "<string>",
                select: Iterable[str] | None = None) -> list[Violation]:
    """Lint one in-memory source blob (the fixture-test entry point)."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(code=SYNTAX_ERROR_CODE, path=str(path),
                          line=exc.lineno or 0, col=(exc.offset or 0),
                          message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    found: list[Violation] = []
    for rule in _select_rules(select):
        for violation in rule.check(ctx):
            if not ctx.suppressed(violation.code, violation.line):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None) -> LintReport:
    """Lint every Python file under ``paths``; violations come back
    sorted by location for stable, diffable output."""
    violations: list[Violation] = []
    files = 0
    for path in iter_python_files(paths):
        files += 1
        source = path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, path=path, select=select))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintReport(violations=tuple(violations), files_checked=files)
