"""Asyncio HTTP server exposing the versioned simulation wire API.

Routes:

``POST /v1/simulate``
    Body: a schema-versioned :class:`~emissary.api.SimRequest` wire dict
    (:mod:`emissary.wire`).  Default response is one JSON object
    ``{"key", "status", "result"}``.  With ``?stream=1`` the response is
    chunked NDJSON: an ``accepted`` event, ``progress`` events relayed
    from the worker's chunk-boundary ticks, then a terminal ``result``
    or ``error`` event.
``GET /v1/stats``
    Service counters, cache/LRU state, and the full telemetry payload.
``GET /v1/healthz``
    Liveness probe.

Error mapping: malformed HTTP or JSON → 400; unknown route → 404;
admission past the queue watermark → 429 with ``Retry-After``; worker
failure → 500 (error row, the connection and the pool both survive).
A client that disconnects mid-stream only ends its own relay — the
underlying simulation keeps running for any deduped waiters and still
lands in the results cache.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import time
from typing import Any

from emissary.serve.http import (MAX_HEADER_BYTES, ChunkedNdjsonWriter,
                                 HttpError, HttpRequest, read_request,
                                 response_bytes)
from emissary.serve.service import Admission, QueueFullError, SimService

logger = logging.getLogger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8351

#: How often the streaming relay polls the progress spool while the
#: simulation future is pending.
PROGRESS_POLL_INTERVAL_S = 0.05

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class ServeApp:
    """Connection handler: keep-alive loop + route dispatch."""

    def __init__(self, service: SimService) -> None:
        self.service = service

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(response_bytes(exc.status,
                                                {"error": exc.message}))
                    await writer.drain()
                    break
                if request is None:
                    break  # client closed between requests
                await self._dispatch(request, writer)
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError,
                TimeoutError) as exc:
            logger.debug("connection dropped: %r", exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError) as exc:
                # CancelledError lands here when the server is torn down
                # mid-connection; the transport is already closing.
                logger.debug("close raced with client reset: %r", exc)

    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> None:
        if request.path == "/v1/simulate":
            if request.method != "POST":
                await self._respond(writer, 405,
                                    {"error": "POST /v1/simulate"})
                return
            await self._simulate(request, writer)
        elif request.path == "/v1/stats":
            await self._respond(writer, 200, self.service.stats())
        elif request.path == "/v1/healthz":
            await self._respond(writer, 200, {"ok": True})
        else:
            await self._respond(writer, 404,
                                {"error": f"no route {request.path}"})

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       extra_headers: dict[str, str] | None = None) -> None:
        writer.write(response_bytes(status, payload,
                                    extra_headers=extra_headers))
        await writer.drain()

    async def _simulate(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> None:
        payload = request.json()
        if not isinstance(payload, dict):
            await self._respond(writer, 400,
                                {"error": "body must be a JSON object"})
            return
        stream = request.query.get("stream", "").lower() in _TRUTHY
        start = time.perf_counter()
        try:
            admission = self.service.admit(payload)
        except QueueFullError as exc:
            await self._respond(
                writer, 429, {"error": str(exc)},
                extra_headers={"Retry-After": str(exc.retry_after_s)})
            return
        except (KeyError, TypeError, ValueError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return

        if stream:
            await self._stream_response(admission, writer)
        else:
            await self._plain_response(admission, writer)
        self.service.observe_latency(time.perf_counter() - start)

    async def _plain_response(self, admission: Admission,
                              writer: asyncio.StreamWriter) -> None:
        if admission.future is None:
            outcome: dict[str, Any] = {"ok": True, "result": admission.result}
        else:
            outcome = await admission.future
        if outcome["ok"]:
            await self._respond(writer, 200, {"key": admission.key,
                                              "status": admission.status,
                                              "result": outcome["result"]})
        else:
            await self._respond(writer, 500, {"key": admission.key,
                                              "error": outcome["error"]})

    async def _stream_response(self, admission: Admission,
                               writer: asyncio.StreamWriter) -> None:
        ndjson = ChunkedNdjsonWriter(writer)
        await ndjson.start()
        await ndjson.event({"event": "accepted", "key": admission.key,
                            "status": admission.status})
        if admission.future is None:
            await ndjson.event({"event": "result", "key": admission.key,
                                "status": "cached",
                                "result": admission.result})
            await ndjson.finish()
            return

        last_tick: dict[str, Any] | None = None
        while True:
            done, _ = await asyncio.wait({admission.future},
                                         timeout=PROGRESS_POLL_INTERVAL_S)
            tick = self.service.read_progress(admission.key)
            if tick is not None and tick != last_tick:
                await ndjson.event({"event": "progress",
                                    "key": admission.key, **tick})
                last_tick = tick
            if done:
                break
        outcome = admission.future.result()
        if outcome["ok"]:
            await ndjson.event({"event": "result", "key": admission.key,
                                "status": admission.status,
                                "result": outcome["result"]})
        else:
            await ndjson.event({"event": "error", "key": admission.key,
                                "error": outcome["error"]})
        await ndjson.finish()


async def start_server(service: SimService, host: str = DEFAULT_HOST,
                       port: int = DEFAULT_PORT) -> asyncio.Server:
    """Bind and return the listening server (caller owns its lifetime)."""
    app = ServeApp(service)
    server = await asyncio.start_server(app.handle_connection, host, port,
                                        backlog=4096,
                                        limit=2 * MAX_HEADER_BYTES)
    return server


async def run_server(service: SimService, host: str = DEFAULT_HOST,
                     port: int = DEFAULT_PORT) -> None:
    """Serve until SIGINT/SIGTERM (the CLI entry point's main coroutine).

    Shutdown must be graceful: dying abruptly would strand the forked
    worker processes blocked on their call-queue pipe (each worker
    inherits a copy of the queue's write end, so parent death alone
    never EOFs it); :meth:`SimService.aclose` shuts the pool down
    properly.
    """
    server = await start_server(service, host, port)
    addrs = ", ".join(str(sock.getsockname()) for sock in server.sockets)
    logger.info("emissary serve listening on %s", addrs)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-unix event loops
            logger.debug("no signal handler support for %s", sig)
    try:
        async with server:
            await stop.wait()
    finally:
        await service.aclose()
