"""Asyncio HTTP server exposing the versioned simulation wire API.

Routes:

``POST /v1/simulate``
    Body: a schema-versioned :class:`~emissary.api.SimRequest` wire dict
    (:mod:`emissary.wire`).  Default response is one JSON object
    ``{"key", "status", "result"}``.  With ``?stream=1`` the response is
    chunked NDJSON: an ``accepted`` event, ``progress`` events relayed
    from the worker's chunk-boundary ticks, then a terminal ``result``
    or ``error`` event.
``GET /v1/stats``
    Service counters, cache/LRU state, and the full telemetry payload.
``GET /v1/metrics``
    Prometheus text exposition (format 0.0.4) of every telemetry counter
    and histogram plus point-in-time gauges — a pure render of
    ``Telemetry.to_dict()`` (:func:`emissary.obs.metrics.
    render_prometheus`).
``GET /v1/trace``
    The most recent merged request trace (Chrome trace-event JSON,
    server + worker tracks under one trace id); ``?id=<trace_id>``
    fetches a specific ring entry, ``?summary=1`` lists the ring without
    trace payloads.
``GET /v1/logz``
    The bounded in-memory ring of structured log records (trace-id
    correlated serve lifecycle events).
``GET /v1/healthz``
    Liveness probe.

Error mapping: malformed HTTP or JSON → 400; unknown route → 404;
admission past the queue watermark → 429 with ``Retry-After``; worker
failure → 500 (error row, the connection and the pool both survive).
A client that disconnects mid-stream only ends its own relay — the
underlying simulation keeps running for any deduped waiters and still
lands in the results cache.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import time
from typing import Any

from emissary.obs import (PROMETHEUS_CONTENT_TYPE, bind_log_context,
                          render_prometheus)
from emissary.serve.http import (MAX_HEADER_BYTES, ChunkedNdjsonWriter,
                                 HttpError, HttpRequest, read_request,
                                 response_bytes, text_response_bytes)
from emissary.serve.service import Admission, QueueFullError, SimService
from emissary.telemetry import Telemetry, span_factory

logger = logging.getLogger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8351

#: How often the streaming relay polls the progress spool while the
#: simulation future is pending.
PROGRESS_POLL_INTERVAL_S = 0.05

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class ServeApp:
    """Connection handler: keep-alive loop + route dispatch."""

    def __init__(self, service: SimService) -> None:
        self.service = service

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(response_bytes(exc.status,
                                                {"error": exc.message}))
                    await writer.drain()
                    break
                if request is None:
                    break  # client closed between requests
                await self._dispatch(request, writer)
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError,
                TimeoutError) as exc:
            logger.debug("connection dropped: %r", exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError) as exc:
                # CancelledError lands here when the server is torn down
                # mid-connection; the transport is already closing.
                logger.debug("close raced with client reset: %r", exc)

    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> None:
        if request.path == "/v1/simulate":
            if request.method != "POST":
                await self._respond(writer, 405,
                                    {"error": "POST /v1/simulate"})
                return
            await self._simulate(request, writer)
        elif request.path == "/v1/stats":
            await self._respond(writer, 200, self.service.stats())
        elif request.path == "/v1/metrics":
            text = render_prometheus(self.service.telemetry.to_dict(),
                                     gauges=self.service.metric_gauges())
            writer.write(text_response_bytes(200, text,
                                             PROMETHEUS_CONTENT_TYPE))
            await writer.drain()
        elif request.path == "/v1/trace":
            await self._trace(request, writer)
        elif request.path == "/v1/logz":
            await self._respond(writer, 200, {
                "enabled": self.service.obs,
                "dropped": self.service.log_ring.dropped,
                "records": self.service.log_ring.records(),
            })
        elif request.path == "/v1/healthz":
            await self._respond(writer, 200, {"ok": True})
        else:
            await self._respond(writer, 404,
                                {"error": f"no route {request.path}"})

    async def _trace(self, request: HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        store = self.service.traces
        if request.query.get("summary", "").lower() in _TRUTHY:
            await self._respond(writer, 200, {"count": len(store),
                                              "traces": store.summaries()})
            return
        trace_id = request.query.get("id")
        entry = store.get(trace_id) if trace_id else store.latest()
        if entry is None:
            await self._respond(writer, 404, {
                "error": (f"no trace {trace_id}" if trace_id
                          else "no traces recorded yet")})
            return
        await self._respond(writer, 200, entry)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       extra_headers: dict[str, str] | None = None) -> None:
        writer.write(response_bytes(status, payload,
                                    extra_headers=extra_headers))
        await writer.drain()

    async def _simulate(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> None:
        payload = request.json()
        if not isinstance(payload, dict):
            await self._respond(writer, 400,
                                {"error": "body must be a JSON object"})
            return
        stream = request.query.get("stream", "").lower() in _TRUTHY
        telemetry_enabled = bool(payload.get("telemetry", False))
        ctx = self.service.next_trace_context()
        # Server-side phase spans exist only for requests that opted into
        # telemetry — they are the only ones whose trace is recorded, and
        # the un-instrumented bulk path must stay cheap (the serve arm of
        # `bench --telemetry-overhead` guards this).
        server_tel = Telemetry() if ctx is not None and telemetry_enabled \
            else None
        span = span_factory(server_tel)
        start = time.perf_counter()
        # bind_log_context wraps admission too: the simulation task is
        # created inside admit(), and create_task copies the bound
        # context, so worker-crash logs emitted long after this handler
        # returns still carry this request's trace id.
        with bind_log_context(trace_id=ctx.trace_id if ctx else None):
            with span("serve.request"):
                try:
                    with span("serve.admit"):
                        admission = self.service.admit(payload)
                except QueueFullError as exc:
                    await self._respond(
                        writer, 429, {"error": str(exc)},
                        extra_headers={"Retry-After": str(exc.retry_after_s)})
                    return
                except (KeyError, TypeError, ValueError) as exc:
                    await self._respond(writer, 400, {"error": str(exc)})
                    return
                with span("serve.await_result"):
                    if stream:
                        outcome = await self._stream_response(admission, writer)
                    else:
                        outcome = await self._plain_response(admission, writer)
            elapsed = time.perf_counter() - start
            self.service.observe_latency(elapsed)
            self.service.finish_request(ctx, admission, outcome, server_tel,
                                        telemetry_enabled=telemetry_enabled,
                                        elapsed_s=elapsed)

    async def _plain_response(self, admission: Admission,
                              writer: asyncio.StreamWriter) -> dict[str, Any]:
        if admission.future is None:
            outcome: dict[str, Any] = {"ok": True, "result": admission.result}
        else:
            outcome = await admission.future
        if outcome["ok"]:
            await self._respond(writer, 200, {"key": admission.key,
                                              "status": admission.status,
                                              "result": outcome["result"]})
        else:
            await self._respond(writer, 500, {"key": admission.key,
                                              "error": outcome["error"]})
        return outcome

    async def _stream_response(self, admission: Admission,
                               writer: asyncio.StreamWriter) -> dict[str, Any]:
        ndjson = ChunkedNdjsonWriter(writer)
        await ndjson.start()
        await ndjson.event({"event": "accepted", "key": admission.key,
                            "status": admission.status})
        if admission.future is None:
            await ndjson.event({"event": "result", "key": admission.key,
                                "status": "cached",
                                "result": admission.result})
            await ndjson.finish()
            return {"ok": True, "result": admission.result}

        last_tick: dict[str, Any] | None = None
        while True:
            done, _ = await asyncio.wait({admission.future},
                                         timeout=PROGRESS_POLL_INTERVAL_S)
            tick = self.service.read_progress(admission.key)
            if tick is not None and tick != last_tick:
                await ndjson.event({"event": "progress",
                                    "key": admission.key, **tick})
                last_tick = tick
            if done:
                break
        outcome = admission.future.result()
        if outcome["ok"]:
            await ndjson.event({"event": "result", "key": admission.key,
                                "status": admission.status,
                                "result": outcome["result"]})
        else:
            await ndjson.event({"event": "error", "key": admission.key,
                                "error": outcome["error"]})
        await ndjson.finish()
        return outcome


async def start_server(service: SimService, host: str = DEFAULT_HOST,
                       port: int = DEFAULT_PORT) -> asyncio.Server:
    """Bind and return the listening server (caller owns its lifetime)."""
    app = ServeApp(service)
    server = await asyncio.start_server(app.handle_connection, host, port,
                                        backlog=4096,
                                        limit=2 * MAX_HEADER_BYTES)
    return server


async def run_server(service: SimService, host: str = DEFAULT_HOST,
                     port: int = DEFAULT_PORT) -> None:
    """Serve until SIGINT/SIGTERM (the CLI entry point's main coroutine).

    Shutdown must be graceful: dying abruptly would strand the forked
    worker processes blocked on their call-queue pipe (each worker
    inherits a copy of the queue's write end, so parent death alone
    never EOFs it); :meth:`SimService.aclose` shuts the pool down
    properly.
    """
    server = await start_server(service, host, port)
    addrs = ", ".join(str(sock.getsockname()) for sock in server.sockets)
    logger.info("emissary serve listening on %s", addrs)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-unix event loops
            logger.debug("no signal handler support for %s", sig)
    try:
        async with server:
            await stop.wait()
    finally:
        await service.aclose()
