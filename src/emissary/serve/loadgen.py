"""Synthetic load generator for the serving layer.

Drives N concurrent keep-alive clients against a running server and
reports the latency distribution, sustained throughput, dedupe ratio,
and cache behaviour as a ``BENCH_serve.json``-shaped payload.

Phasing: every client first *connects* and parks at a barrier, so the
advertised concurrency is real — all N sockets are open simultaneously
before the first request is sent — then all clients issue their request
schedule over the shared connections.  The request mix draws from a
small pool of distinct configurations (deterministic per-client RNG
streams), which exercises exactly the paths the server optimizes:
identical concurrent submissions collapse via single-flight, repeats
hit the results cache, and a pool larger than the cache byte budget
forces LRU evictions.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Any

import numpy as np

from emissary.api import PolicySpec, SimRequest
from emissary.engine import CacheConfig
from emissary.hierarchy import HierarchyConfig
from emissary.traces import TraceSpec

logger = logging.getLogger(__name__)

#: BENCH_serve.json payload layout version.
BENCH_SERVE_SCHEMA_VERSION = 1

#: Accesses per synthetic trace in the standard mix — small on purpose:
#: the benchmark measures the *serving* layer (admission, dedupe, cache,
#: wire), not kernel throughput, which BENCH_kernels.json already covers.
MIX_TRACE_N = 2_000


def build_request_mix(distinct: int, trace_n: int = MIX_TRACE_N) -> list[dict[str, Any]]:
    """``distinct`` SimRequest wire dicts: lru/emissary over varied seeds
    and footprints, with a hierarchy request every 8th slot."""
    mix: list[dict[str, Any]] = []
    for i in range(distinct):
        trace = TraceSpec("loop", trace_n, seed=i,
                          params={"footprint_lines": 64 + 16 * (i % 8)})
        if i % 8 == 7:
            request = SimRequest(trace, PolicySpec("lru"), HierarchyConfig(),
                                 seed=i)
        else:
            policy = PolicySpec("emissary", {"hp_threshold": 2}) if i % 2 \
                else PolicySpec("lru")
            request = SimRequest(trace, policy,
                                 CacheConfig(num_sets=64, ways=8), seed=i)
        mix.append(request.to_dict())
    return mix


async def _read_response(
        reader: asyncio.StreamReader,
) -> tuple[int, dict[str, Any], dict[str, str]]:
    """Read one fixed-length JSON response off a keep-alive connection.

    Returns ``(status, payload, headers)`` — headers lower-cased, so a
    429's ``retry-after`` back-pressure hint survives to the client.
    """
    header_block = await reader.readuntil(b"\r\n\r\n")
    lines = header_block.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = await reader.readexactly(length) if length else b""
    payload = json.loads(body) if body else {}
    return status, payload, headers


def _request_bytes(method: str, path: str, payload: Any | None = None) -> bytes:
    body = b"" if payload is None else json.dumps(payload).encode()
    head = [f"{method} {path} HTTP/1.1", "Host: loadgen",
            "Content-Type: application/json", f"Content-Length: {len(body)}"]
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


async def fetch_json(host: str, port: int, path: str,
                     method: str = "GET",
                     payload: Any | None = None) -> tuple[int, dict[str, Any]]:
    """One-shot request on a fresh connection (stats probes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes(method, path, payload))
        await writer.drain()
        status, body, _headers = await _read_response(reader)
        return status, body
    finally:
        writer.close()
        await writer.wait_closed()


async def fetch_text(host: str, port: int, path: str) -> tuple[int, str]:
    """One-shot GET returning the raw body text (``/v1/metrics`` is
    Prometheus text exposition, not JSON)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes("GET", path))
        await writer.drain()
        header_block = await reader.readuntil(b"\r\n\r\n")
        lines = header_block.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return status, body.decode("utf-8")
    finally:
        writer.close()
        await writer.wait_closed()


async def _client(index: int, host: str, port: int,
                  mix: list[dict[str, Any]], requests_per_client: int,
                  seed: int, connected: asyncio.Barrier,
                  latencies: list[float], status_counts: dict[int, int],
                  connect_gate: asyncio.Semaphore) -> None:
    rng = np.random.default_rng(seed * 1_000_003 + index)
    reader = writer = None
    try:
        async with connect_gate:  # bound the connect storm, not the steady state
            reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        status_counts[-1] = status_counts.get(-1, 0) + 1
        logger.debug("client %d failed to connect: %r", index, exc)
    # Every party reaches the barrier even on connect failure — a single
    # refused socket must not deadlock the whole fleet.
    await connected.wait()
    if reader is None or writer is None:
        return
    try:
        for _ in range(requests_per_client):
            body = mix[int(rng.integers(len(mix)))]
            start = time.perf_counter()
            writer.write(_request_bytes("POST", "/v1/simulate", body))
            await writer.drain()
            status, _payload, headers = await _read_response(reader)
            latencies.append(time.perf_counter() - start)
            status_counts[status] = status_counts.get(status, 0) + 1
            if status == 429:
                # Honor the server's Retry-After hint (it reflects the
                # queue's actual drain time), jittered so refused clients
                # do not retry in lockstep; a missing/garbled header
                # falls back to a short random pause.
                try:
                    hinted = float(headers.get("retry-after", ""))
                except ValueError:
                    hinted = 0.0
                if hinted > 0.0:
                    delay = min(hinted, 5.0) * (0.75 + 0.5 * float(rng.random()))
                else:
                    delay = 0.2 * float(rng.random())
                await asyncio.sleep(delay)
    except (ConnectionResetError, BrokenPipeError,
            asyncio.IncompleteReadError) as exc:
        status_counts[-1] = status_counts.get(-1, 0) + 1
        logger.debug("client %d dropped: %r", index, exc)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            logger.debug("client %d close raced: %r", index, exc)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


async def run_loadgen(host: str, port: int, clients: int,
                      requests_per_client: int = 2, distinct: int = 24,
                      seed: int = 0,
                      connect_concurrency: int = 512) -> dict[str, Any]:
    """Drive the fleet and return the benchmark payload."""
    mix = build_request_mix(distinct)
    _status, stats_before = await fetch_json(host, port, "/v1/stats")

    latencies: list[float] = []
    status_counts: dict[int, int] = {}
    connected = asyncio.Barrier(clients + 1)
    connect_gate = asyncio.Semaphore(connect_concurrency)
    tasks = [asyncio.create_task(_client(
        i, host, port, mix, requests_per_client, seed, connected,
        latencies, status_counts, connect_gate)) for i in range(clients)]
    await connected.wait()  # every socket is open: concurrency is real now
    start = time.perf_counter()
    await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - start

    _status, stats_after = await fetch_json(host, port, "/v1/stats")
    requests = stats_after.get("requests", 0) - stats_before.get("requests", 0)
    simulations = (stats_after.get("simulations", 0)
                   - stats_before.get("simulations", 0))
    dedupe_joined = (stats_after.get("dedupe_joined", 0)
                     - stats_before.get("dedupe_joined", 0))
    cache_after = stats_after.get("cache", {})
    cache_before = stats_before.get("cache", {})
    cache_hits = cache_after.get("hits", 0) - cache_before.get("hits", 0)
    budget = cache_after.get("budget_bytes")

    ordered = sorted(latencies)
    completed = len(latencies)
    return {
        "benchmark": "serve_load",
        "schema_version": BENCH_SERVE_SCHEMA_VERSION,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "distinct_configs": distinct,
        "completed_requests": completed,
        "wall_s": round(wall_s, 4),
        "req_per_s": round(completed / wall_s, 2) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50) * 1e3, 3),
            "p90": round(_percentile(ordered, 0.90) * 1e3, 3),
            "p99": round(_percentile(ordered, 0.99) * 1e3, 3),
            "max": round(ordered[-1] * 1e3, 3) if ordered else 0.0,
        },
        "status_counts": {str(k): v for k, v in sorted(status_counts.items())},
        "dedupe": {
            "requests": requests,
            "simulations": simulations,
            "dedupe_joined": dedupe_joined,
            "dedupe_ratio": round(dedupe_joined / requests, 4) if requests else 0.0,
        },
        "cache": {
            "hits": cache_hits,
            "hit_rate": round(cache_hits / requests, 4) if requests else 0.0,
            "evictions": cache_after.get("evictions", 0),
            "budget_bytes": budget,
            "total_bytes": cache_after.get("total_bytes", 0),
            "under_budget": (budget is None
                             or cache_after.get("total_bytes", 0) <= budget),
        },
        "server": {
            "workers": stats_after.get("workers"),
            "queue_watermark": stats_after.get("queue_watermark"),
        },
    }
