"""Simulation-as-a-service: asyncio HTTP server over the typed API.

``python -m emissary.serve`` exposes the schema-versioned wire contract
(:mod:`emissary.wire`) over HTTP: ``POST /v1/simulate`` accepts a
:class:`~emissary.api.SimRequest` wire dict and answers from the
LRU-budgeted results cache, an identical in-flight simulation
(single-flight dedupe), or a bounded process worker pool — with
chunk-boundary progress ticks streamed as NDJSON for ``?stream=1``.
See :mod:`emissary.serve.service` for the admission design and
:mod:`emissary.serve.loadgen` for the benchmark driver behind
``BENCH_serve.json``.
"""

from emissary.serve.server import (DEFAULT_HOST, DEFAULT_PORT, ServeApp,
                                   run_server, start_server)
from emissary.serve.service import (DEFAULT_QUEUE_WATERMARK,
                                    DEFAULT_SERVE_CHUNK_BYTES, Admission,
                                    QueueFullError, SimService,
                                    run_simulation_worker)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_WATERMARK",
    "DEFAULT_SERVE_CHUNK_BYTES",
    "Admission",
    "QueueFullError",
    "ServeApp",
    "SimService",
    "run_server",
    "run_simulation_worker",
    "start_server",
]
