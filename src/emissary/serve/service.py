"""The simulation service: admission, single-flight dedupe, worker pool.

This module is the policy layer between the HTTP surface
(:mod:`emissary.serve.server`) and the engine: it decides, per wire
request, whether to answer from the budgeted results cache, join an
identical in-flight simulation, run a new one on the worker pool, or
push back with 429 when the queue is past its watermark.

Design points:

single-flight
    Requests are keyed by :func:`~emissary.results_cache.config_key` —
    the same content hash the results cache uses.  N identical
    submissions while one is in flight produce exactly **one**
    simulation; every waiter shares the same :class:`asyncio.Task` and
    the telemetry counters prove it (``serve.simulations`` vs
    ``serve.dedupe_joined``).

process workers
    Simulations run on a bounded :class:`~concurrent.futures.
    ProcessPoolExecutor` so the asyncio loop never blocks on a kernel
    loop.  A *clean* worker exception is surfaced as an error row; an
    *abrupt* worker death breaks the whole pool (CPython semantics), so
    the service catches :class:`BrokenProcessPool`, rebuilds the
    executor, and keeps serving — one crashed request never takes the
    server down.

progress spool
    The worker can't call back into the server's event loop, so it
    publishes progress ticks (one per ``simulate_stream`` chunk
    boundary) as an atomically-replaced JSON file per request key; the
    streaming handler polls the spool and relays ticks as NDJSON events.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import math
import os
import time
import uuid
from collections.abc import Callable, Mapping
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from emissary.api import SimRequest, simulate
from emissary.obs import (DEFAULT_LOG_CAPACITY, DEFAULT_TRACE_CAPACITY,
                          LogRing, TraceContext, TraceStore, derive_trace_id)
from emissary.results_cache import (DEFAULT_CACHE_DIR, BudgetedResultsCache,
                                    config_key)
from emissary.telemetry import Telemetry

logger = logging.getLogger(__name__)

#: Accepted-but-unfinished requests beyond this depth are refused with
#: 429 + Retry-After instead of queued without bound.
DEFAULT_QUEUE_WATERMARK = 64

#: Streaming chunk budget for served simulations.  Small relative to the
#: library default on purpose: each chunk boundary is a progress tick,
#: and a served request should tick several times, not once.
DEFAULT_SERVE_CHUNK_BYTES = 256 * 1024

#: Suggested client back-off for 429 responses, seconds — the floor and
#: the cold-start fallback before any service latency has been observed.
DEFAULT_RETRY_AFTER_S = 1

#: Ceiling for derived Retry-After hints, seconds: a deep queue should
#: push clients back, not tell them to go away for minutes.
MAX_RETRY_AFTER_S = 30

#: How long a finished request's progress spool file lingers so
#: streaming relays (polling at their own cadence) can still observe the
#: final tick before cleanup.
SPOOL_GRACE_S = 2.0


def _histogram_p50(hist: Mapping[int, int]) -> float | None:
    """Median observed value of a ``{value: count}`` histogram, or None
    for an empty one."""
    total = sum(hist.values())
    if total <= 0:
        return None
    midpoint = (total + 1) // 2
    seen = 0
    for value in sorted(hist):
        seen += hist[value]
        if seen >= midpoint:
            return float(value)
    return None


def _unlink_quietly(path: Path) -> None:
    try:
        path.unlink(missing_ok=True)
    except OSError as exc:
        logger.debug("spool cleanup of %s raced: %s", path, exc)


class QueueFullError(Exception):
    """Admission refused: the in-flight queue is past its watermark."""

    def __init__(self, depth: int, watermark: int,
                 retry_after_s: int = DEFAULT_RETRY_AFTER_S) -> None:
        super().__init__(
            f"queue depth {depth} is at the admission watermark "
            f"{watermark}; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


def _warmup_worker() -> int:
    """No-op warm-up task; submitting it forces the pool to fork."""
    return os.getpid()


def _write_progress_file(path: Path, done: int, total: int) -> None:
    """Atomically publish a progress tick (readers never see torn JSON)."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    try:
        tmp.write_text(json.dumps({"done": done, "total": total}))
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)


def run_simulation_worker(request_dict: dict[str, Any], progress_path: str | None,
                          chunk_bytes: int) -> dict[str, Any]:
    """Executed inside a worker process: decode, stream, encode.

    This is deliberately the same typed path a library user takes —
    :func:`emissary.api.simulate` on a :class:`~emissary.api.SimRequest`
    — with the streaming progress callback wired to the spool file.
    """
    request = SimRequest.from_dict(request_dict)
    progress: Callable[[int, int], None] | None = None
    if progress_path is not None:
        spool = Path(progress_path)

        def progress(done: int, total: int) -> None:
            try:
                _write_progress_file(spool, done, total)
            except OSError as exc:
                # Ticks are advisory; the simulation must not die because
                # the spool directory vanished under it.
                logger.warning("progress tick for %s failed: %s", spool, exc)

    if request.backend == "reference":
        # The reference oracle has no streaming path; run it one-shot.
        result = simulate(request)
    else:
        result = simulate(request, stream=True, chunk_bytes=chunk_bytes,
                          progress=progress)
    payload = dict(result.to_dict())
    # Advisory key (always allowed by check_known_keys, stripped by the
    # service before caching): lets the merged request trace put worker
    # spans on the real worker pid's track.
    payload["_worker_pid"] = os.getpid()
    return payload


@dataclass
class Admission:
    """Outcome of admitting one wire request (not a wire payload itself).

    ``status`` is ``"cached"`` (answered immediately, ``result`` set),
    ``"joined"`` (deduped onto an identical in-flight simulation), or
    ``"accepted"`` (a new simulation was scheduled).  For the latter two
    ``future`` resolves to the outcome row ``{"ok": True, "result": ...}``
    or ``{"ok": False, "error": ...}`` — error rows, not raised
    exceptions, so N waiters all observe the same terminal state.
    """

    key: str
    status: str
    result: dict[str, Any] | None = None
    future: "asyncio.Task[dict[str, Any]] | None" = None


class SimService:
    """Admission control + single-flight + worker pool + budgeted cache."""

    def __init__(self, cache_dir: str | Path = DEFAULT_CACHE_DIR,
                 cache_budget_bytes: int | None = None,
                 max_workers: int = 1,
                 queue_watermark: int = DEFAULT_QUEUE_WATERMARK,
                 chunk_bytes: int = DEFAULT_SERVE_CHUNK_BYTES,
                 spool_dir: str | Path | None = None,
                 telemetry: Telemetry | None = None,
                 worker_fn: Callable[..., dict[str, Any]] | None = None,
                 obs: bool = True,
                 obs_seed: int = 0,
                 trace_capacity: int = DEFAULT_TRACE_CAPACITY,
                 log_capacity: int = DEFAULT_LOG_CAPACITY,
                 spool_grace_s: float = SPOOL_GRACE_S) -> None:
        if queue_watermark < 1:
            raise ValueError(f"queue_watermark must be >= 1, got {queue_watermark}")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.cache = BudgetedResultsCache(cache_dir,
                                          budget_bytes=cache_budget_bytes,
                                          telemetry=self.telemetry)
        self.queue_watermark = queue_watermark
        self.chunk_bytes = chunk_bytes
        self.spool_dir = Path(spool_dir) if spool_dir is not None \
            else Path(cache_dir) / "progress"
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.spool_grace_s = spool_grace_s
        self._max_workers = max_workers
        self._worker_fn = worker_fn if worker_fn is not None \
            else run_simulation_worker
        self._executor = self._new_executor()
        self._inflight: dict[str, asyncio.Task[dict[str, Any]]] = {}
        self._spool_timers: dict[str, tuple[asyncio.TimerHandle, Path]] = {}
        self._started = time.monotonic()
        self.obs = obs
        self.obs_seed = obs_seed
        self._trace_counter = itertools.count()
        self.traces = TraceStore(capacity=trace_capacity)
        self.log_ring = LogRing(capacity=log_capacity)
        self._obs_logger: logging.Logger | None = None
        self._obs_prev_level: int | None = None
        if obs:
            self._attach_log_ring()
        self._purge_orphan_spools()

    def _attach_log_ring(self) -> None:
        """Attach the ``/v1/logz`` ring to the package logger tree.

        The ring needs INFO records even when the process-level logging
        config is quieter, so the ``emissary`` logger's level is bumped
        (and restored at :meth:`aclose`) — handlers attached elsewhere
        keep filtering at their own levels.
        """
        root = logging.getLogger("emissary")
        self._obs_logger = root
        if root.getEffectiveLevel() > logging.INFO:
            self._obs_prev_level = root.level
            root.setLevel(logging.INFO)
        root.addHandler(self.log_ring)

    def _purge_orphan_spools(self) -> None:
        """Evict progress spools orphaned by a previous process.

        A crash (or a SIGKILL mid-grace-period) can strand spool files
        that no live request owns; sweeping them at startup keeps the
        spool directory bounded by the in-flight set.
        """
        for orphan in sorted(self.spool_dir.glob("*.progress.json")):
            _unlink_quietly(orphan)
            logger.info("evicted orphan progress spool %s", orphan.name,
                        extra={"event": "spool_evicted"})

    def _new_executor(self) -> ProcessPoolExecutor:
        """Build the pool and fork its workers *eagerly*.

        Under the default ``fork`` start method the pool forks on first
        submit, and a fork performed mid-service would hand every worker
        a copy of every accepted connection socket — keeping clients
        from ever seeing EOF after the server closes their connection.
        A warm-up submit here forks the full complement while the only
        open fds are the service's own.
        """
        # EMI104 exception, by design: reachable from async _run only on
        # the BrokenProcessPool *rebuild* path, where the broken pool's
        # workers are already dead and the replacement must fork while
        # the server holds its listen socket.  Documented trade-off in
        # _rebuild_executor; normal construction happens in __init__
        # before any socket exists.
        executor = ProcessPoolExecutor(  # emi: ignore[EMI104]
            max_workers=self._max_workers)
        executor.submit(_warmup_worker).result()
        return executor

    # -- admission --------------------------------------------------------

    def admit(self, payload: Mapping[str, Any]) -> Admission:
        """Admit one wire request dict (strictly decoded).

        Raises ``ValueError`` / ``TypeError`` / ``KeyError`` for a
        malformed payload (the HTTP layer maps those to 400) and
        :class:`QueueFullError` past the watermark (mapped to 429).
        Cache-hit and dedupe-join admissions never count against the
        watermark — they add no work.
        """
        self.telemetry.inc("serve.requests")
        request = SimRequest.from_dict(dict(payload))
        key = config_key(request)

        cached = self.cache.load(request)
        if cached is not None:
            self.telemetry.inc("serve.cache_hits")
            return Admission(key=key, status="cached", result=cached)

        existing = self._inflight.get(key)
        if existing is not None:
            self.telemetry.inc("serve.dedupe_joined")
            logger.info("joined in-flight simulation %s", key[:16],
                        extra={"event": "dedupe_joined", "request_key": key})
            return Admission(key=key, status="joined", future=existing)

        depth = len(self._inflight)
        if depth >= self.queue_watermark:
            self.telemetry.inc("serve.rejected")
            logger.warning(
                "admission rejected: queue depth %d at watermark %d",
                depth, self.queue_watermark,
                extra={"event": "admission_rejected", "request_key": key})
            raise QueueFullError(depth, self.queue_watermark,
                                 retry_after_s=self.retry_after_s(depth))

        self.telemetry.inc("serve.cache_misses")
        self.telemetry.inc("serve.simulations")
        task = asyncio.get_running_loop().create_task(self._run(key, request))
        self._inflight[key] = task
        return Admission(key=key, status="accepted", future=task)

    async def _run(self, key: str, request: SimRequest) -> dict[str, Any]:
        """Run one simulation on the pool; always resolves to an outcome
        row (never raises), so every deduped waiter sees the same row."""
        loop = asyncio.get_running_loop()
        progress_path = self.progress_path(key)
        _unlink_quietly(progress_path)  # drop any stale tick from a prior run
        try:
            try:
                result = await loop.run_in_executor(
                    self._executor, self._worker_fn, request.to_dict(),
                    str(progress_path), self.chunk_bytes)
            except BrokenProcessPool:
                # Abrupt worker death poisons the whole executor; rebuild
                # it so the *service* survives the crash.
                self.telemetry.inc("serve.worker_crashes")
                self.telemetry.inc("serve.errors")
                logger.error("worker process died simulating %s; "
                             "rebuilding pool", key[:16],
                             extra={"event": "worker_crash",
                                    "request_key": key})
                self._rebuild_executor()
                return {"ok": False,
                        "error": f"worker process died simulating {key[:16]}"}
            except Exception as exc:
                # A clean worker exception leaves the pool healthy.
                self.telemetry.inc("serve.errors")
                logger.error("simulation %s failed: %s", key[:16], exc,
                             extra={"event": "simulation_failed",
                                    "request_key": key})
                return {"ok": False, "error": f"simulation failed: {exc}"}
            worker_pid = result.pop("_worker_pid", None)
            self.cache.store(request, result)
            return {"ok": True, "result": result, "worker_pid": worker_pid}
        finally:
            self._inflight.pop(key, None)
            self._schedule_spool_cleanup(loop, key, progress_path)

    def _rebuild_executor(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        # The replacement pool re-forks while connections may be open, so
        # the new workers can inherit live socket fds.  That only delays
        # EOF for clients that ignore HTTP framing; correct clients stop
        # at Content-Length / the terminal chunk either way.
        self._executor = self._new_executor()

    # -- progress spool ---------------------------------------------------

    def progress_path(self, key: str) -> Path:
        return self.spool_dir / f"{key}.progress.json"

    def _schedule_spool_cleanup(self, loop: asyncio.AbstractEventLoop,
                                key: str, progress_path: Path) -> None:
        """Unlink ``key``'s spool after one grace period, *tracked*.

        Streaming relays poll every ``PROGRESS_POLL_INTERVAL_S``, so
        unlinking at resolution would race a fast simulation's only tick
        away from them — but an untracked ``call_later`` leaks the spool
        whenever the loop dies before the timer fires (client disconnect
        tearing the test loop down, service shutdown).  Timers are kept
        in ``_spool_timers`` and drained by :meth:`aclose`.
        """
        stale = self._spool_timers.pop(key, None)
        if stale is not None:
            stale[0].cancel()

        def _cleanup() -> None:
            self._spool_timers.pop(key, None)
            _unlink_quietly(progress_path)

        self._spool_timers[key] = (
            loop.call_later(self.spool_grace_s, _cleanup), progress_path)

    def read_progress(self, key: str) -> dict[str, Any] | None:
        """Latest published tick for ``key``, or None before the first
        tick (or after completion cleaned the spool)."""
        try:
            payload = json.loads(self.progress_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None  # not yet published; atomic replace makes torn reads rare
        return payload if isinstance(payload, dict) else None

    # -- observability ----------------------------------------------------

    def observe_latency(self, seconds: float) -> None:
        """Record one request's service latency (microsecond histogram —
        bounded cardinality, unlike per-request spans)."""
        self.telemetry.observe("serve.latency_us", int(seconds * 1e6))

    def retry_after_s(self, depth: int) -> int:
        """Back-off hint for a refused request, in whole seconds.

        A static hint is either uselessly short under a deep queue or
        punitively long under a shallow one, so the hint is the time the
        queue plausibly needs to drain to the caller's position: queue
        depth x the observed p50 service time (read from the
        ``serve.latency_us`` histogram that :meth:`observe_latency`
        feeds), rounded up and clamped to
        [``DEFAULT_RETRY_AFTER_S``, ``MAX_RETRY_AFTER_S``].  Before any
        latency has been observed the static default stands.
        """
        p50_us = _histogram_p50(
            self.telemetry.histograms.get("serve.latency_us", {}))
        if p50_us is None:
            return DEFAULT_RETRY_AFTER_S
        drain_s = depth * p50_us / 1e6
        return max(DEFAULT_RETRY_AFTER_S,
                   min(MAX_RETRY_AFTER_S, math.ceil(drain_s)))

    def next_trace_context(self) -> TraceContext | None:
        """Mint the next deterministic trace identity (None with obs off).

        Ids come from ``sha256(obs_seed, counter)``, so a server replayed
        from the same seed names its traces identically — no wall clock,
        no process entropy.
        """
        if not self.obs:
            return None
        index = next(self._trace_counter)
        return TraceContext(trace_id=derive_trace_id(self.obs_seed, index),
                            index=index)

    def finish_request(self, ctx: TraceContext | None, admission: Admission,
                       outcome: Mapping[str, Any] | None,
                       server_telemetry: Telemetry | None, *,
                       telemetry_enabled: bool, elapsed_s: float) -> None:
        """Request epilogue: the completion log plus the merged trace.

        A trace is recorded only when the request itself asked for
        telemetry (``telemetry=False`` requests must not accrete trace
        state).  Cached admissions contribute server-side spans only —
        the stored result's worker spans carry timestamps from whenever
        the simulation originally ran, and rebasing them onto this
        request's timeline would be a lie.
        """
        ok = outcome is None or bool(outcome.get("ok"))
        # Per-request completion records are INFO only for requests that
        # opted into telemetry; the bulk path logs at DEBUG so a hot
        # server's obs cost stays in the noise (rejections, joins, and
        # crashes are still logged unconditionally at their own sites).
        level = logging.INFO if telemetry_enabled else logging.DEBUG
        logger.log(level, "request %s %s in %.1f ms", admission.status,
                   admission.key[:16], elapsed_s * 1e3,
                   extra={"event": "request", "request_key": admission.key})
        if ctx is None or not telemetry_enabled:
            return
        worker_spans: list[dict[str, Any]] = []
        worker_pid: int | None = None
        if admission.status != "cached" and ok and outcome is not None:
            result = outcome.get("result")
            if isinstance(result, Mapping):
                tel = result.get("telemetry")
                if isinstance(tel, Mapping) and isinstance(tel.get("spans"),
                                                           list):
                    worker_spans = list(tel["spans"])
            pid = outcome.get("worker_pid")
            worker_pid = pid if isinstance(pid, int) else None
        server_spans = server_telemetry.spans if server_telemetry is not None \
            else []
        self.traces.record(ctx, admission.key, admission.status,
                           server_spans, worker_spans, worker_pid=worker_pid)

    def metric_gauges(self) -> dict[str, float]:
        """Point-in-time gauges for the Prometheus exposition."""
        return {
            "serve.queue_depth": float(len(self._inflight)),
            "serve.queue_watermark": float(self.queue_watermark),
            "serve.cache_total_bytes": float(self.cache.total_bytes()),
            "serve.trace_ring_size": float(len(self.traces)),
            "serve.log_ring_dropped": float(self.log_ring.dropped),
        }

    def stats(self) -> dict[str, Any]:
        counters = self.telemetry.counters
        return {
            "uptime_s": time.monotonic() - self._started,
            "queue_depth": len(self._inflight),
            "queue_watermark": self.queue_watermark,
            "workers": self._max_workers,
            "requests": counters.get("serve.requests", 0),
            "simulations": counters.get("serve.simulations", 0),
            "dedupe_joined": counters.get("serve.dedupe_joined", 0),
            "rejected": counters.get("serve.rejected", 0),
            "errors": counters.get("serve.errors", 0),
            "worker_crashes": counters.get("serve.worker_crashes", 0),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "budget_bytes": self.cache.budget_bytes,
                "total_bytes": self.cache.total_bytes(),
            },
            "obs": {
                "enabled": self.obs,
                "seed": self.obs_seed,
                "traces": len(self.traces),
                "log_records": len(self.log_ring.records()),
                "log_dropped": self.log_ring.dropped,
            },
            "telemetry": self.telemetry.to_dict(),
        }

    # -- lifecycle --------------------------------------------------------

    async def aclose(self) -> None:
        """Cancel in-flight work, drain spool timers, release the pool."""
        for task in list(self._inflight.values()):
            task.cancel()
        for task in list(self._inflight.values()):
            try:
                await task
            except asyncio.CancelledError:
                logger.debug("in-flight simulation cancelled during shutdown")
        self._inflight.clear()
        # Pending grace-period timers would never fire after the loop
        # dies; run their cleanup now so no spool outlives the service.
        for handle, path in self._spool_timers.values():
            handle.cancel()
            _unlink_quietly(path)
        self._spool_timers.clear()
        if self._obs_logger is not None:
            self._obs_logger.removeHandler(self.log_ring)
            if self._obs_prev_level is not None:
                self._obs_logger.setLevel(self._obs_prev_level)
            # Single-task discipline: aclose is the shutdown path, called
            # once after the server stops accepting; no task races it.
            self._obs_logger = None  # emi: ignore[EMI105]
            self._obs_prev_level = None  # emi: ignore[EMI105]
        self._executor.shutdown(wait=False, cancel_futures=True)
