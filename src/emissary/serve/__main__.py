"""CLI for the serving layer.

Subcommands::

    python -m emissary.serve serve    # run the HTTP server
    python -m emissary.serve loadgen  # drive a running server, write bench JSON
    python -m emissary.serve bench    # server + loadgen in one shot
    python -m emissary.serve smoke    # start, POST flat + hierarchy, verify
    python -m emissary.serve top      # live dashboard over /v1/stats

``smoke`` is the CI gate: it boots an in-process server on an ephemeral
port, streams one single-level and one hierarchy request (asserting
progress ticks arrive), re-posts both (asserting they answer from the
results cache without a new simulation), posts one ``telemetry=True``
request and verifies the observability plane end to end — the merged
request trace at ``/v1/trace`` carries server- and worker-side spans
under one trace id, ``/v1/metrics`` round-trips through the strict
exposition parser, ``/v1/logz`` records correlate by trace id — and
checks ``/v1/stats`` accounting: an end-to-end pass over the wire API
in a few seconds.  ``--trace-out`` additionally writes the merged
Chrome trace JSON (loadable in Perfetto) for CI artifact upload.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import socket
import subprocess
import sys
import tempfile
import time
from typing import Any

from emissary.api import PolicySpec, SimRequest
from emissary.engine import CacheConfig
from emissary.hierarchy import HierarchyConfig
from emissary.obs import parse_prometheus, sample_value, setup_serve_logging
from emissary.serve.loadgen import fetch_json, fetch_text, run_loadgen
from emissary.serve.server import DEFAULT_HOST, DEFAULT_PORT, start_server
from emissary.serve.service import (DEFAULT_QUEUE_WATERMARK,
                                    DEFAULT_SERVE_CHUNK_BYTES, SimService)
from emissary.traces import TraceSpec

logger = logging.getLogger(__name__)


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=".results_cache",
                        help="results cache directory (default: %(default)s)")
    parser.add_argument("--cache-budget-bytes", type=int, default=None,
                        help="LRU byte budget for the results cache "
                             "(default: unbounded)")
    parser.add_argument("--workers", type=int, default=1,
                        help="simulation worker processes (default: %(default)s)")
    parser.add_argument("--queue-watermark", type=int,
                        default=DEFAULT_QUEUE_WATERMARK,
                        help="in-flight depth past which requests get 429 "
                             "(default: %(default)s)")
    parser.add_argument("--chunk-bytes", type=int,
                        default=DEFAULT_SERVE_CHUNK_BYTES,
                        help="streaming chunk budget per progress tick "
                             "(default: %(default)s)")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable the observability plane (per-request "
                             "traces, /v1/logz ring)")
    parser.add_argument("--obs-seed", type=int, default=0,
                        help="seed for deterministic trace ids "
                             "(default: %(default)s)")


def _service_from_args(args: argparse.Namespace) -> SimService:
    return SimService(cache_dir=args.cache_dir,
                      cache_budget_bytes=args.cache_budget_bytes,
                      max_workers=args.workers,
                      queue_watermark=args.queue_watermark,
                      chunk_bytes=args.chunk_bytes,
                      obs=not args.no_obs,
                      obs_seed=args.obs_seed)


async def _run_serve(args: argparse.Namespace) -> int:
    from emissary.serve.server import run_server

    await run_server(_service_from_args(args), args.host, args.port)
    return 0


async def _run_loadgen(args: argparse.Namespace) -> int:
    payload = await run_loadgen(args.host, args.port, clients=args.clients,
                                requests_per_client=args.requests_per_client,
                                distinct=args.distinct, seed=args.seed)
    text = json.dumps(payload, indent=1, sort_keys=True)
    if args.out:
        # One-shot CLI coroutine: the loadgen has already finished, so
        # nothing else shares this loop while the result file is written.
        with open(args.out, "w") as fh:  # emi: ignore[EMI102]
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    print(text)
    return 0


async def _run_bench(args: argparse.Namespace) -> int:
    """Boot a server *subprocess*, drive the fleet against it, tear down.

    A subprocess rather than in-process serving on purpose: at 10k+
    clients the client sockets and their server-side peers would live in
    one process and need 2x the fd budget; splitting them gives each
    process its own ``RLIMIT_NOFILE`` headroom.
    """
    with socket.socket() as probe:  # reserve an ephemeral port
        probe.bind((args.host, 0))
        port = probe.getsockname()[1]
    cmd = [sys.executable, "-m", "emissary.serve", "serve",
           "--host", args.host, "--port", str(port),
           "--cache-dir", args.cache_dir,
           "--workers", str(args.workers),
           "--queue-watermark", str(args.queue_watermark),
           "--chunk-bytes", str(args.chunk_bytes),
           "--obs-seed", str(args.obs_seed)]
    if args.cache_budget_bytes is not None:
        cmd += ["--cache-budget-bytes", str(args.cache_budget_bytes)]
    if args.no_obs:
        cmd += ["--no-obs"]
    # Popen only spawns (no wait); the bench loop is otherwise idle here.
    proc = subprocess.Popen(cmd)  # emi: ignore[EMI102]
    try:
        deadline = time.monotonic() + 30.0
        while True:
            try:
                status, _payload = await fetch_json(args.host, port,
                                                    "/v1/healthz")
                if status == 200:
                    break
            except OSError:
                if time.monotonic() > deadline:
                    raise RuntimeError("server did not come up in 30s") from None
                await asyncio.sleep(0.1)
        payload = await run_loadgen(args.host, port, clients=args.clients,
                                    requests_per_client=args.requests_per_client,
                                    distinct=args.distinct, seed=args.seed)
    finally:
        proc.terminate()
        proc.wait(timeout=10)
    text = json.dumps(payload, indent=1, sort_keys=True)
    # One-shot CLI coroutine: server subprocess is down, loop is idle.
    with open(args.out, "w") as fh:  # emi: ignore[EMI102]
        fh.write(text + "\n")
    print(f"wrote {args.out}")
    print(text)
    return 0


async def _stream_simulate(host: str, port: int,
                           body: dict[str, Any]) -> list[dict[str, Any]]:
    """POST ?stream=1 and return the decoded NDJSON event list.

    Parses chunked framing up to the terminal chunk instead of reading
    to EOF — the HTTP-correct behaviour, and required because worker
    processes forked mid-service can pin a copy of the socket open.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        encoded = json.dumps(body).encode()
        head = (f"POST /v1/simulate?stream=1 HTTP/1.1\r\nHost: smoke\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(encoded)}\r\nConnection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + encoded)
        await writer.drain()
        header_block = await reader.readuntil(b"\r\n\r\n")
        status = int(header_block.split(b" ", 2)[1])
        if status != 200:
            rest = await reader.read(200)
            raise RuntimeError(f"stream POST failed with {status}: {rest!r}")
        events: list[dict[str, Any]] = []
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip(), 16)
            if size == 0:
                await reader.readline()  # trailing CRLF of the last chunk
                break
            chunk = await reader.readexactly(size)
            await reader.readexactly(2)  # chunk's trailing CRLF
            for line in chunk.splitlines():
                if line.strip():
                    events.append(json.loads(line))
        return events
    finally:
        writer.close()
        await writer.wait_closed()


def _smoke_requests() -> tuple[dict[str, Any], dict[str, Any]]:
    trace = TraceSpec("loop", 200_000, seed=1,
                      params={"footprint_lines": 4096})
    flat = SimRequest(trace, PolicySpec("emissary", {"hp_threshold": 2}),
                      CacheConfig(num_sets=64, ways=8), seed=1)
    hier = SimRequest(trace, PolicySpec("lru"), HierarchyConfig(), seed=1)
    return flat.to_dict(), hier.to_dict()


def _check_smoke_trace(entry: dict[str, Any], failures: list[str]) -> None:
    """Assert one merged request trace has server + worker tracks under
    one trace id."""
    trace = entry.get("trace", {})
    if trace.get("otherData", {}).get("trace_id") != entry.get("trace_id"):
        failures.append(f"trace: otherData/entry trace_id mismatch ({entry})")
    spans = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    server_names = {s["name"] for s in spans if s.get("pid") == 0}
    worker_pids = {s["pid"] for s in spans if s.get("pid") != 0}
    if "serve.request" not in server_names:
        failures.append(f"trace: no server-side serve.request span "
                        f"({sorted(server_names)})")
    if not worker_pids:
        failures.append("trace: no worker-side spans in the merged trace")
    worker_names = {s["name"] for s in spans if s.get("pid") != 0}
    if not any(tag in name for name in worker_names
               for tag in ("kernel", "run", "stream", "decode")):
        failures.append(f"trace: worker spans carry no engine phases "
                        f"({sorted(worker_names)})")


async def _smoke_obs(port: int, traced_body: dict[str, Any],
                     failures: list[str],
                     trace_out: str | None) -> None:
    """The observability leg of the smoke: trace, metrics, logz."""
    status, _payload = await fetch_json(DEFAULT_HOST, port, "/v1/trace")
    if status != 404:
        failures.append(f"obs: expected no trace before any telemetry=True "
                        f"request, got {status}")
    status, traced = await fetch_json(DEFAULT_HOST, port, "/v1/simulate",
                                      method="POST", payload=traced_body)
    if status != 200:
        failures.append(f"obs: traced request failed with {status}: {traced}")
        return
    status, entry = await fetch_json(DEFAULT_HOST, port, "/v1/trace")
    if status != 200:
        failures.append(f"obs: /v1/trace returned {status} after a "
                        f"telemetry=True request")
        return
    _check_smoke_trace(entry, failures)

    status, text = await fetch_text(DEFAULT_HOST, port, "/v1/metrics")
    if status != 200:
        failures.append(f"obs: /v1/metrics returned {status}")
        return
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        failures.append(f"obs: /v1/metrics failed the exposition parser: {exc}")
        return
    _status, stats = await fetch_json(DEFAULT_HOST, port, "/v1/stats")
    requests_total = sample_value(families, "emissary_serve_requests_total")
    if requests_total is None or requests_total < stats.get("requests", 0) - 1:
        failures.append(f"obs: emissary_serve_requests_total {requests_total} "
                        f"vs stats requests {stats.get('requests')}")
    if "emissary_serve_latency_us" not in families:
        failures.append("obs: no emissary_serve_latency_us histogram family")

    status, logz = await fetch_json(DEFAULT_HOST, port, "/v1/logz")
    correlated = [r for r in logz.get("records", [])
                  if r.get("trace_id") == entry.get("trace_id")]
    if status != 200 or not correlated:
        failures.append(f"obs: no /v1/logz records correlated with trace "
                        f"{entry.get('trace_id')}")
    print(f"smoke obs: trace {entry.get('trace_id')} "
          f"({entry.get('span_count')} spans), "
          f"{len(families)} metric families, "
          f"{len(correlated)} correlated log records")
    if trace_out:
        # One-shot smoke coroutine: all requests already completed.
        with open(trace_out, "w") as fh:  # emi: ignore[EMI102]
            json.dump(entry.get("trace", {}), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {trace_out}")


async def _run_smoke(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="emissary-smoke-") as tmp:
        service = SimService(cache_dir=tmp, cache_budget_bytes=64 * 1024 * 1024,
                             chunk_bytes=64 * 1024, obs=not args.no_obs,
                             obs_seed=args.obs_seed)
        server = await start_server(service, DEFAULT_HOST, port=0)
        port = server.sockets[0].getsockname()[1]
        failures: list[str] = []
        try:
            flat, hier = _smoke_requests()
            for label, body in (("flat", flat), ("hierarchy", hier)):
                events = await _stream_simulate(DEFAULT_HOST, port, body)
                kinds = [e.get("event") for e in events]
                if kinds[0] != "accepted" or kinds[-1] != "result":
                    failures.append(f"{label}: bad event envelope {kinds}")
                if "progress" not in kinds:
                    failures.append(f"{label}: no progress ticks in {kinds}")
                replay = await _stream_simulate(DEFAULT_HOST, port, body)
                statuses = [e.get("status") for e in replay]
                if "cached" not in statuses:
                    failures.append(f"{label}: re-fetch not served from cache "
                                    f"({statuses})")
                print(f"smoke {label}: {len(events)} events "
                      f"({kinds.count('progress')} progress ticks), "
                      f"re-fetch cached")
            expected_sims = 2
            if not args.no_obs:
                traced_body = dict(flat)
                traced_body["telemetry"] = True
                await _smoke_obs(port, traced_body, failures, args.trace_out)
                expected_sims = 3
            _status, stats = await fetch_json(DEFAULT_HOST, port, "/v1/stats")
            if stats.get("simulations") != expected_sims:
                failures.append(f"expected {expected_sims} simulations, stats "
                                f"says {stats.get('simulations')}")
            if stats.get("cache", {}).get("hits", 0) < 2:
                failures.append(f"expected >=2 cache hits, stats says "
                                f"{stats.get('cache')}")
        finally:
            server.close()
            await server.wait_closed()
            await service.aclose()
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="emissary.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the HTTP server")
    p_serve.add_argument("--host", default=DEFAULT_HOST)
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_serve.add_argument("--log-json", action="store_true",
                         help="emit one JSON object per log line on stderr")
    _add_service_args(p_serve)

    p_load = sub.add_parser("loadgen", help="drive a running server")
    p_load.add_argument("--host", default=DEFAULT_HOST)
    p_load.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_load.add_argument("--clients", type=int, default=100)
    p_load.add_argument("--requests-per-client", type=int, default=2)
    p_load.add_argument("--distinct", type=int, default=24,
                        help="distinct configurations in the request mix")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--out", default=None,
                        help="also write the payload to this path")

    p_bench = sub.add_parser("bench",
                             help="in-process server + loadgen, one shot")
    p_bench.add_argument("--host", default=DEFAULT_HOST)
    p_bench.add_argument("--clients", type=int, default=10_000)
    p_bench.add_argument("--requests-per-client", type=int, default=2)
    p_bench.add_argument("--distinct", type=int, default=24)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default="BENCH_serve.json")
    _add_service_args(p_bench)

    p_smoke = sub.add_parser("smoke", help="end-to-end wire API check")
    p_smoke.add_argument("--trace-out", default=None,
                         help="write the smoke's merged Chrome trace JSON "
                              "here (CI artifact)")
    _add_service_args(p_smoke)

    p_top = sub.add_parser("top", help="live dashboard over /v1/stats")
    p_top.add_argument("--host", default=DEFAULT_HOST)
    p_top.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls (default: %(default)s)")
    p_top.add_argument("--iterations", type=int, default=None,
                       help="stop after N frames (default: run until ^C)")

    args = parser.parse_args(argv)
    if args.command == "serve" and args.log_json:
        setup_serve_logging(json_lines=True)
    else:
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s %(message)s")
    if args.command == "top":
        from emissary.obs.top import run_top

        try:
            return asyncio.run(run_top(args.host, args.port,
                                       interval_s=args.interval,
                                       iterations=args.iterations))
        except KeyboardInterrupt:
            return 0
    runner = {"serve": _run_serve, "loadgen": _run_loadgen,
              "bench": _run_bench, "smoke": _run_smoke}[args.command]
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
