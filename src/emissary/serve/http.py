"""Minimal asyncio HTTP/1.1 plumbing for the serving layer.

Deliberately small instead of pulling in a framework: the service speaks
exactly the subset the wire API needs — request-line + headers + an
optional ``Content-Length`` body on the way in; fixed-length JSON or
``Transfer-Encoding: chunked`` NDJSON on the way out, with keep-alive so
load generators can multiplex thousands of requests over persistent
connections.  Anything outside that subset is rejected loudly with the
right status code rather than guessed at.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

#: Request-line + header block size cap; a line longer than this is a
#: malformed or hostile client, not a simulation request.
MAX_HEADER_BYTES = 32 * 1024

#: Body cap — a SimRequest wire dict is a few hundred bytes; megabytes
#: of body means the client is confused.
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request-level protocol failure mapped to a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed inbound request (headers lower-cased, query decoded)."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one request off a keep-alive connection.

    Returns ``None`` on a clean EOF between requests (the client hung
    up); raises :class:`HttpError` for protocol violations mid-request.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "header block too large") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")

    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "invalid Content-Length") from exc
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "connection closed mid-body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return HttpRequest(method=method, path=split.path,
                       query=dict(parse_qsl(split.query)),
                       headers=headers, body=body)


def _framed(status: int, body: bytes, content_type: str,
            extra_headers: dict[str, str] | None) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}"]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def response_bytes(status: int, payload: Any, *,
                   extra_headers: dict[str, str] | None = None) -> bytes:
    """A complete fixed-length JSON response, ready to write."""
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    return _framed(status, body, "application/json", extra_headers)


def text_response_bytes(status: int, body: str,
                        content_type: str = "text/plain; charset=utf-8", *,
                        extra_headers: dict[str, str] | None = None) -> bytes:
    """A complete fixed-length plain-text response (metrics exposition)."""
    return _framed(status, body.encode("utf-8"), content_type, extra_headers)


class ChunkedNdjsonWriter:
    """Streams newline-delimited JSON events over chunked encoding.

    One :meth:`event` call = one NDJSON line = one HTTP chunk, so
    clients observe progress ticks as they happen instead of after the
    response buffer fills.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def start(self, status: int = 200) -> None:
        reason = STATUS_REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n\r\n")
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()
        # Single-task discipline: one ChunkedWriter is owned by exactly
        # one handler task; _started never sees a concurrent writer.
        self._started = True  # emi: ignore[EMI105]

    async def event(self, payload: Any) -> None:
        line = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self._writer.write(f"{len(line):x}\r\n".encode("latin-1")
                           + line + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()
