"""Trace-driven set-associative cache simulation engines.

Two engines with bit-identical outcomes:

:class:`BatchedEngine` (the hot path)
    Decodes the whole trace once into NumPy tag / set-index vectors,
    stable-sorts accesses by set, and dispatches each set's accesses to
    the policy kernel as one contiguous chunk.  Per-access Python
    overhead (address math, attribute lookups, method dispatch) is paid
    once per *chunk* instead of once per access, and the per-set inner
    loops run over plain lists with C-level ``list.index`` lookups.
    Legal because set-associative replacement state is independent
    across sets, so reordering accesses *between* sets (while preserving
    order *within* each set — hence the stable sort) cannot change any
    hit/miss outcome.

:class:`ReferenceEngine` (the oracle)
    The straightforward implementation: one Python iteration per access,
    decoding the address and calling zsim-style policy methods.  It
    exists to validate the batched engine (the equivalence test suite
    compares full hit/miss sequences) and to anchor the benchmark's
    speedup figure.

Randomness: the engine pre-generates one uniform per trace access from a
single ``numpy.random.Generator`` seeded once per run.  Policies index
it by global access position, so RNG consumption is identical no matter
the execution order.

Streaming: :meth:`BatchedEngine.simulate_stream` (and the incremental
:class:`EngineStream` behind it) accepts the trace as a sequence of
``uint64`` address chunks — e.g. a :class:`~emissary.trace_io.
TraceSource` reading a multi-GB file under a memory budget — and carries
all replacement state, the RNG stream, and the MRU run collapsing across
chunk boundaries, producing hit vectors and stats bit-identical to the
one-shot :meth:`BatchedEngine.run` path.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import NDArray

from emissary.api import PolicySpec, require_policy_spec
from emissary.wire import (WIRE_SCHEMA_KEY, WIRE_SCHEMA_VERSION,
                           check_known_keys, check_wire_version)
from emissary.compiled import (
    CompiledKernel,
    CompiledUnavailableError,
    make_compiled_kernel,
)
from emissary.policies import make_kernel, make_naive, policy_needs_rng
from emissary.policies.base import PolicyKernel
from emissary.telemetry import Telemetry, span_factory
from emissary.traces import AddressArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.analysis.sanitizer import Sanitizer

#: Kernel backends a :class:`BatchedEngine` can execute with.
KERNEL_BACKENDS = ("python", "compiled")


def _make_engine_kernel(spec: PolicySpec, config: "CacheConfig",
                        kernel_backend: str,
                        compiled_provider: str | None,
                        num_cores: int = 1
                        ) -> "PolicyKernel | CompiledKernel":
    """Build the policy kernel for one run.

    ``kernel_backend="compiled"`` tries the compiled providers; if none
    loads and no provider was pinned, it **warns and falls back** to the
    batched Python kernels (outcomes are bit-identical, only slower), so
    ``backend="compiled"`` requests stay portable to hosts without numba
    or a C compiler.  A pinned ``compiled_provider`` turns that fallback
    into a hard :class:`~emissary.compiled.CompiledUnavailableError` —
    benchmarks must fail loudly rather than silently time Python.

    ``num_cores`` is the engine's execution context (how many front-ends
    feed this cache), not a policy parameter — it is injected into the
    kernel rather than carried in ``spec.params`` so multi-core and solo
    requests keep their natural results-cache keys.  Only EMISSARY's
    partitioned HP budget consumes it.
    """
    extra = {"num_cores": num_cores} if spec.name == "emissary" else {}
    if kernel_backend == "compiled":
        try:
            return make_compiled_kernel(
                spec.name, config.num_sets, config.ways,
                provider=compiled_provider, **spec.params, **extra)
        except CompiledUnavailableError as exc:
            if compiled_provider is not None:
                raise
            warnings.warn(
                f"compiled kernel backend unavailable ({exc}); falling "
                "back to the batched Python kernels (outcomes are "
                "bit-identical, only slower)",
                RuntimeWarning, stacklevel=3)
    elif kernel_backend != "python":
        raise ValueError(f"unknown kernel_backend {kernel_backend!r} "
                         f"(expected one of {KERNEL_BACKENDS})")
    return make_kernel(spec.name, config.num_sets, config.ways,
                       **spec.params, **extra)


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


#: Per-access hit/miss outcomes.
BoolArray = NDArray[np.bool_]
#: Decoded int64 payloads: tags, set indices, costs, run lengths.
IndexArray = NDArray[np.int64]
#: Per-access uniform draws aligned with the trace.
UniformArray = NDArray[np.float64]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the simulated cache (defaults: 512 KiB, 8-way, 64 B lines)."""

    num_sets: int = 1024
    ways: int = 8
    line_size: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.num_sets):
            raise ValueError("num_sets must be a power of two")
        if not _is_pow2(self.line_size):
            raise ValueError("line_size must be a power of two")
        if self.ways < 1:
            raise ValueError("ways must be >= 1")

    @property
    def offset_bits(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def set_bits(self) -> int:
        return self.num_sets.bit_length() - 1

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_size

    def to_dict(self) -> dict[str, int]:
        return {"num_sets": self.num_sets, "ways": self.ways, "line_size": self.line_size}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CacheConfig":
        check_known_keys(d, ("num_sets", "ways", "line_size"), "CacheConfig")
        return cls(num_sets=int(d["num_sets"]), ways=int(d["ways"]),
                   line_size=int(d.get("line_size", 64)))


@dataclass
class SimResult:
    """Outcome of one (trace, policy, config) simulation.

    ``telemetry`` is the schema-versioned payload from
    :class:`~emissary.telemetry.Telemetry` when the run was instrumented,
    else None (and omitted from :meth:`to_dict`).
    """

    policy: str
    n: int
    hit_count: int
    miss_count: int
    elapsed_s: float
    hits: BoolArray | None = None
    policy_stats: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] | None = None

    @property
    def hit_rate(self) -> float:
        return self.hit_count / self.n if self.n else 0.0

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction (each trace entry is one fetch)."""
        return 1000.0 * self.miss_count / self.n if self.n else 0.0

    @property
    def accesses_per_s(self) -> float | None:
        """Throughput, or None when no time elapsed — None (JSON null)
        rather than ``inf``, which ``json`` emits as non-roundtrippable
        ``Infinity``.  Tables render it as ``-``."""
        return self.n / self.elapsed_s if self.elapsed_s > 0 else None

    #: Wire keys of the :meth:`to_dict` payload (see :mod:`emissary.wire`).
    _WIRE_KEYS = frozenset({WIRE_SCHEMA_KEY, "policy", "n", "hit_count",
                            "miss_count", "hit_rate", "mpki", "elapsed_s",
                            "accesses_per_s", "policy_stats", "telemetry"})

    def to_dict(self) -> dict[str, Any]:
        d = {
            WIRE_SCHEMA_KEY: WIRE_SCHEMA_VERSION,
            "policy": self.policy,
            "n": self.n,
            "hit_count": self.hit_count,
            "miss_count": self.miss_count,
            "hit_rate": self.hit_rate,
            "mpki": self.mpki,
            "elapsed_s": self.elapsed_s,
            "accesses_per_s": self.accesses_per_s,
            "policy_stats": self.policy_stats,
        }
        if self.telemetry is not None:
            d["telemetry"] = self.telemetry
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SimResult":
        """Rebuild from :meth:`to_dict` output (strict wire decode: v0
        dicts are accepted, unknown keys and newer versions rejected).
        Derived fields are recomputed from the counts; the hit vector is
        not serialized."""
        check_wire_version(d, "SimResult")
        check_known_keys(d, cls._WIRE_KEYS, "SimResult")
        return cls(
            policy=d["policy"],
            n=int(d["n"]),
            hit_count=int(d["hit_count"]),
            miss_count=int(d["miss_count"]),
            elapsed_s=float(d["elapsed_s"]),
            policy_stats=dict(d.get("policy_stats", {})),
            telemetry=d.get("telemetry"),
        )


def decode_trace(addresses: AddressArray,
                 config: CacheConfig) -> tuple[IndexArray, IndexArray]:
    """Vectorized address -> (tag, set index) decode for the whole trace."""
    addrs = np.ascontiguousarray(addresses, dtype=np.uint64)
    lines = addrs >> np.uint64(config.offset_bits)
    set_idx = (lines & np.uint64(config.num_sets - 1)).astype(np.int64)
    tags = (lines >> np.uint64(config.set_bits)).astype(np.int64)
    return tags, set_idx


def _uniforms(n: int, policy: str, seed: int) -> UniformArray | None:
    if not policy_needs_rng(policy):
        return None
    return np.random.default_rng(seed).random(n)


class BatchedEngine:
    """Batched set-major execution core.

    Two trace-level optimizations run before any Python-loop work:

    1. **MRU run collapsing** — instruction streams touch the same cache
       line many times in a row (sequential fetch within a 64 B line).
       An access to the line accessed immediately before it is always a
       hit and changes no replacement state under every shipped policy
       (LRU/EMISSARY: the line is already MRU; SRRIP: RRPV is already 0;
       Random: hits don't update state).  Only "edge" accesses — line
       transitions — enter the policy kernels; collapsed accesses are
       recorded as hits directly.  On instruction-like traces this
       removes ~90% of kernel iterations while keeping outcomes
       bit-identical (the equivalence suite checks this per access).
    2. **Set-major batching** — edge accesses are stable-sorted by set
       index and dispatched to the kernel one contiguous chunk per set,
       paying Python dispatch overhead per chunk instead of per access.
    """

    def __init__(self, config: CacheConfig | None = None,
                 collapse_runs: bool = True,
                 telemetry: Telemetry | None = None,
                 sanitizer: "Sanitizer" | None = None,
                 kernel_backend: str = "python",
                 compiled_provider: str | None = None,
                 num_cores: int = 1) -> None:
        self.config = config or CacheConfig()
        self.collapse_runs = collapse_runs
        #: How many front-ends feed this cache (execution context, not a
        #: policy parameter).  Injected into core-aware kernels; 1 for
        #: the ordinary single-stream engine.
        self.num_cores = num_cores
        #: Optional :class:`~emissary.telemetry.Telemetry` registry; when
        #: None (the default) the run takes the uninstrumented fast path.
        self.telemetry = telemetry
        #: Optional :class:`~emissary.analysis.sanitizer.Sanitizer`
        #: (debug mode): validates per-set kernel state after every
        #: dispatch.  None (the default) costs one ``is None`` test per run.
        self.sanitizer = sanitizer
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel_backend {kernel_backend!r} "
                             f"(expected one of {KERNEL_BACKENDS})")
        #: ``"python"`` runs the per-set list kernels; ``"compiled"``
        #: dispatches whole batches in trace order to a native provider
        #: (see :mod:`emissary.compiled`), skipping the set-major sort.
        self.kernel_backend = kernel_backend
        self.compiled_provider = compiled_provider

    def run(self, addresses: AddressArray, policy: PolicySpec, seed: int = 0,
            keep_hits: bool = True, cost: IndexArray | None = None,
            core: IndexArray | None = None) -> SimResult:
        spec = require_policy_spec(policy, caller="BatchedEngine.run")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        n = len(addresses)
        start = time.perf_counter()
        with span("decode"):
            addrs = np.ascontiguousarray(addresses, dtype=np.uint64)
            lines = addrs >> np.uint64(config.offset_bits)
            u = _uniforms(n, spec.name, seed)

        kernel = _make_engine_kernel(spec, config, self.kernel_backend,
                                     self.compiled_provider,
                                     num_cores=self.num_cores)
        if tel is not None:
            kernel.attach_telemetry(tel)
        if self.sanitizer is not None:
            # After attach_telemetry, so the wrapper sees the bound loop.
            self.sanitizer.attach_kernel(kernel)
        if cost is not None:
            if len(cost) != n:
                raise ValueError(f"cost has {len(cost)} entries for {n} accesses")
            if not kernel.consumes_cost:
                cost = None  # cost-blind policy: skip the slicing work
            else:
                cost = np.ascontiguousarray(cost, dtype=np.int64)
        if core is not None:
            if len(core) != n:
                raise ValueError(f"core has {len(core)} entries for {n} accesses")
            if not getattr(kernel, "consumes_core", False):
                core = None  # core-blind policy: skip the slicing work
            else:
                core = np.ascontiguousarray(core, dtype=np.int64)

        work_rep: NDArray[np.bool_] | None = None
        work_extra: IndexArray | None = None
        with span("run_collapse"):
            if self.collapse_runs and n > 1:
                edge_mask = np.empty(n, dtype=bool)
                edge_mask[0] = True
                np.not_equal(lines[1:], lines[:-1], out=edge_mask[1:])
                edge_idx = np.flatnonzero(edge_mask)
                work_lines = lines[edge_idx]
                work_u = u[edge_idx] if u is not None else None
                work_cost = cost[edge_idx] if cost is not None else None
                work_core = core[edge_idx] if core is not None else None
                if kernel.needs_repeat_flags or tel is not None:
                    # Run length per edge access; > 1 means the line is
                    # re-referenced immediately after (the collapsed hits).
                    run_lengths = np.diff(edge_idx, append=n)
                    if kernel.needs_repeat_flags:
                        work_rep = run_lengths > 1
                    if tel is not None:
                        # Collapsed hits folded into each edge access, so
                        # instrumented per-line hit accounting stays exact.
                        work_extra = run_lengths - 1
            else:
                edge_idx = None
                work_lines = lines
                work_u = u
                work_cost = cost
                work_core = core
                if kernel.needs_repeat_flags:
                    work_rep = np.zeros(len(work_lines), dtype=bool)
                if tel is not None:
                    work_extra = np.zeros(len(work_lines), dtype=np.int64)
        m = len(work_lines)

        if isinstance(kernel, CompiledKernel):
            # Compiled dispatch stays in trace order (sets are
            # independent, so per-set state evolution is identical) and
            # needs no set-major sort — one native call per run.
            with span("kernel_batch"):
                set_idx = (work_lines
                           & np.uint64(config.num_sets - 1)).astype(np.int64)
                tags = (work_lines
                        >> np.uint64(config.set_bits)).astype(np.int64)
                work_hits = kernel.run_batch(set_idx, tags, work_u, work_rep,
                                             work_cost, work_extra, work_core)
                if tel is not None:
                    kernel.telemetry_finalize()
            if edge_idx is None:
                hits = work_hits
            else:
                hits = np.ones(n, dtype=bool)  # collapsed accesses always hit
                hits[edge_idx] = work_hits
            return self._finish_run(spec, kernel, n, m, hits, keep_hits, start)

        with span("stable_sort"):
            set_idx = (work_lines & np.uint64(config.num_sets - 1)).astype(np.int64)
            tags = (work_lines >> np.uint64(config.set_bits)).astype(np.int64)

            # Stable sort groups accesses by set while preserving per-set order.
            order = np.argsort(set_idx, kind="stable")
            sorted_sets = set_idx[order]
            sorted_tags = tags[order]
            sorted_u = work_u[order] if work_u is not None else None
            sorted_rep = work_rep[order] if work_rep is not None else None
            sorted_cost = work_cost[order] if work_cost is not None else None
            sorted_core = work_core[order] if work_core is not None else None
            sorted_extra = work_extra[order] if work_extra is not None else None

            # bounds[s] .. bounds[s + 1] is set s's contiguous chunk.
            bounds = np.searchsorted(sorted_sets,
                                     np.arange(config.num_sets + 1, dtype=np.int64))

        sorted_hits = np.empty(m, dtype=bool)
        with span("kernel_loop"):
            for s in range(config.num_sets):
                lo = int(bounds[s])
                hi = int(bounds[s + 1])
                if lo == hi:
                    continue
                chunk_u = sorted_u[lo:hi].tolist() if sorted_u is not None else None
                chunk_rep = sorted_rep[lo:hi].tolist() if sorted_rep is not None else None
                chunk_cost = sorted_cost[lo:hi].tolist() if sorted_cost is not None else None
                chunk_core = sorted_core[lo:hi].tolist() if sorted_core is not None else None
                chunk_extra = (sorted_extra[lo:hi].tolist()
                               if sorted_extra is not None else None)
                sorted_hits[lo:hi] = kernel.run_set(s, sorted_tags[lo:hi].tolist(),
                                                    chunk_u, chunk_rep, chunk_cost,
                                                    chunk_extra, chunk_core)
            if tel is not None:
                kernel.telemetry_finalize()

        if edge_idx is None:
            hits = np.empty(n, dtype=bool)
            hits[order] = sorted_hits
        else:
            work_hits = np.empty(m, dtype=bool)
            work_hits[order] = sorted_hits
            hits = np.ones(n, dtype=bool)  # collapsed accesses are always hits
            hits[edge_idx] = work_hits
        return self._finish_run(spec, kernel, n, m, hits, keep_hits, start)

    def _finish_run(self, spec: PolicySpec,
                    kernel: "PolicyKernel | CompiledKernel", n: int, m: int,
                    hits: BoolArray, keep_hits: bool,
                    start: float) -> SimResult:
        """Engine-level counters + result assembly (both kernel paths)."""
        elapsed = time.perf_counter() - start
        tel = self.telemetry
        hit_count = int(hits.sum())
        if tel is not None:
            tel.inc("engine.accesses", n)
            tel.inc("engine.edge_accesses", m)
            tel.inc("engine.collapsed_hits", n - m)
            tel.inc("hits", hit_count)
            tel.inc("misses", n - hit_count)
            if self.sanitizer is not None:
                self.sanitizer.check_counters(tel, n, hit_count)
        return SimResult(
            policy=spec.name,
            n=n,
            hit_count=hit_count,
            miss_count=n - hit_count,
            elapsed_s=elapsed,
            hits=hits if keep_hits else None,
            policy_stats=kernel.extra_stats(),
            telemetry=tel.to_dict() if tel is not None else None,
        )

    def stream(self, policy: PolicySpec, seed: int = 0,
               keep_hits: bool = True) -> "EngineStream":
        """Open an incremental :class:`EngineStream` for chunked feeding."""
        spec = require_policy_spec(policy, caller="BatchedEngine.stream")
        return EngineStream(self, spec, seed=seed, keep_hits=keep_hits)

    def simulate_stream(self, chunks: Iterable[AddressArray],
                        policy: PolicySpec, seed: int = 0,
                        keep_hits: bool = True,
                        cost_chunks: Iterable[AddressArray] | None = None
                        ) -> SimResult:
        """Run ``policy`` over a chunked trace in bounded memory.

        ``chunks`` is any iterable of ``uint64`` address arrays in trace
        order — typically a :class:`~emissary.trace_io.TraceSource`
        reading a file under a memory budget.  Outcomes (hit vector,
        counts, policy stats) are bit-identical to :meth:`run` on the
        concatenated trace.  ``cost_chunks``, when given, must yield one
        cost array per address chunk (aligned lengths).
        """
        stream = self.stream(policy, seed=seed, keep_hits=keep_hits)
        span = span_factory(self.telemetry)
        cost_iter = iter(cost_chunks) if cost_chunks is not None else None
        chunk_iter = iter(chunks)
        while True:
            with span("stream_ingest"):
                chunk = next(chunk_iter, None)
            if chunk is None:
                break
            cost = next(cost_iter) if cost_iter is not None else None
            stream.feed(chunk, cost=cost)
        return stream.finish()


class EngineStream:
    """Incremental counterpart of :meth:`BatchedEngine.run`.

    Feed ``uint64`` address chunks in trace order with :meth:`feed`; all
    replacement state (per-set kernel state, the RNG stream, MRU run
    collapsing) carries across chunk boundaries, so the assembled result
    is bit-identical to running the concatenated trace in one shot —
    while only one chunk (plus O(1) carried state) is resident at a time.

    The subtlety is run collapsing at chunk boundaries: an access's
    repeat flag (a fill immediately re-referenced — SRRIP inserts it at
    RRPV 0) and its folded-hit count are only knowable once its MRU run
    *ends*, which may be several chunks later.  The stream therefore
    holds back each chunk's trailing run as a compressed carry
    ``(line, u, cost, core, length)`` — O(1) memory however long the
    run — and dispatches it the moment a different line arrives (or the
    stream is flushed).  Consequently :meth:`feed` returns outcomes for
    the accesses it *resolved*, which can trail the accesses fed so far
    by one run.
    """

    def __init__(self, engine: "BatchedEngine", spec: PolicySpec, seed: int = 0,
                 keep_hits: bool = True) -> None:
        config = engine.config
        self.config = config
        self.spec = spec
        self.keep_hits = keep_hits
        self.collapse_runs = engine.collapse_runs
        self.telemetry = engine.telemetry
        self._span = span_factory(self.telemetry)
        self.kernel = _make_engine_kernel(spec, config, engine.kernel_backend,
                                          engine.compiled_provider,
                                          num_cores=engine.num_cores)
        if self.telemetry is not None:
            self.kernel.attach_telemetry(self.telemetry)
        self.sanitizer = engine.sanitizer
        if self.sanitizer is not None:
            # After attach_telemetry, so the wrapper sees the bound loop.
            self.sanitizer.attach_kernel(self.kernel)
        self._rng = (np.random.default_rng(seed)
                     if policy_needs_rng(spec.name) else None)
        self.n = 0
        self._edge_count = 0
        self._hit_count = 0
        self._hit_chunks: list[BoolArray] = []
        self._chunk_index = 0
        #: Trailing unresolved MRU run: (line, u, cost, core, length) or None.
        self._pending: tuple[int, float | None, int | None, int | None,
                             int] | None = None
        #: Core ids of the misses returned by the latest ``feed``/``flush``
        #: (aligned with its ``miss_lines``), or None for core-blind runs.
        #: Per-chunk attribution can't be read off the *fed* cores because
        #: resolved accesses trail fed accesses by the pending run.
        self.last_miss_cores: IndexArray | None = None
        self._track_cores = False
        self._flushed = False
        self._start = time.perf_counter()

    def feed(self, addresses: AddressArray,
             cost: IndexArray | None = None,
             core: IndexArray | None = None) -> tuple[BoolArray, AddressArray]:
        """Process the next chunk of addresses (with optional per-access
        cost and issuing-core ids).

        Returns ``(hits, miss_lines)`` for the accesses *resolved* by
        this call: ``hits`` is their hit/miss outcomes in access order
        (cumulatively concatenating to the one-shot hit vector), and
        ``miss_lines`` the line numbers of the missing accesses in
        order — what a hierarchy feeds to the next level.
        """
        if self._flushed:
            raise RuntimeError("stream already flushed; start a new stream")
        addrs = np.ascontiguousarray(addresses, dtype=np.uint64)
        k_total = len(addrs)
        if cost is not None:
            if len(cost) != k_total:
                raise ValueError(f"cost has {len(cost)} entries for "
                                 f"{k_total} accesses")
            if self.kernel.consumes_cost:
                cost = np.ascontiguousarray(cost, dtype=np.int64)
            else:
                cost = None
        if core is not None:
            if len(core) != k_total:
                raise ValueError(f"core has {len(core)} entries for "
                                 f"{k_total} accesses")
            # Kept even for core-blind kernels: ``last_miss_cores``
            # attribution is an engine concern, not a policy one.
            core = np.ascontiguousarray(core, dtype=np.int64)
            self._track_cores = True
        if self._track_cores:
            # Reset every call so early returns (empty chunk, run
            # continuation) never leave a stale attribution array.
            self.last_miss_cores = np.zeros(0, dtype=np.int64)
        u_chunk = self._rng.random(k_total) if self._rng is not None else None
        self.n += k_total
        index = self._chunk_index
        self._chunk_index += 1
        if k_total == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64)
        with self._span("stream_chunk", chunk=index, accesses=k_total):
            lines = addrs >> np.uint64(self.config.offset_bits)

            if not self.collapse_runs:
                # Every access is its own length-1 run; nothing is carried.
                return self._dispatch(lines, u_chunk, cost, core,
                                      np.ones(k_total, dtype=np.int64))

            pending = self._pending
            if pending is not None:
                pline, pu, pcost, pcore, pcount = pending
                differs = np.flatnonzero(lines != np.uint64(pline))
                if differs.size == 0:
                    # Whole chunk continues the carried run.
                    self._pending = (pline, pu, pcost, pcore,
                                     pcount + k_total)
                    return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64)
                k = int(differs[0])
                pcount += k
            else:
                k = 0

            sub = lines[k:]
            edge_mask = np.empty(len(sub), dtype=bool)
            edge_mask[0] = True
            np.not_equal(sub[1:], sub[:-1], out=edge_mask[1:])
            edge_pos = np.flatnonzero(edge_mask) + k
            last_edge = int(edge_pos[-1])
            inner = edge_pos[:-1]

            run_lines = lines[inner]
            run_u = u_chunk[inner] if u_chunk is not None else None
            run_cost = cost[inner] if cost is not None else None
            run_core = core[inner] if core is not None else None
            run_lengths = np.diff(edge_pos).astype(np.int64)
            if pending is not None:
                run_lines = np.concatenate(
                    [np.array([pline], dtype=np.uint64), run_lines])
                run_lengths = np.concatenate(
                    [np.array([pcount], dtype=np.int64), run_lengths])
                if run_u is not None:
                    run_u = np.concatenate(
                        [np.array([pu], dtype=np.float64), run_u])
                if run_cost is not None:
                    run_cost = np.concatenate(
                        [np.array([pcost], dtype=np.int64), run_cost])
                if run_core is not None:
                    run_core = np.concatenate(
                        [np.array([pcore], dtype=np.int64), run_core])
            self._pending = (
                int(lines[last_edge]),
                float(u_chunk[last_edge]) if u_chunk is not None else None,
                int(cost[last_edge]) if cost is not None else None,
                int(core[last_edge]) if core is not None else None,
                k_total - last_edge,
            )
            return self._dispatch(run_lines, run_u, run_cost, run_core,
                                  run_lengths)

    def _dispatch(self, run_lines: AddressArray, run_u: UniformArray | None,
                  run_cost: IndexArray | None,
                  run_core: IndexArray | None,
                  run_lengths: IndexArray) -> tuple[BoolArray, AddressArray]:
        """Run the resolved runs' edge accesses through the kernel
        (set-major, exactly like the one-shot path) and expand outcomes
        back to per-access hits."""
        m = len(run_lines)
        if m == 0:
            if run_core is not None:
                self.last_miss_cores = np.zeros(0, dtype=np.int64)
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64)
        config = self.config
        kernel = self.kernel
        tel = self.telemetry
        rep = run_lengths > 1 if kernel.needs_repeat_flags else None
        extra = run_lengths - 1 if tel is not None else None
        # Core-blind kernels never see the array, but miss attribution
        # (``last_miss_cores``) still tracks it.
        kern_core = (run_core
                     if getattr(kernel, "consumes_core", False) else None)

        set_idx = (run_lines & np.uint64(config.num_sets - 1)).astype(np.int64)
        tags = (run_lines >> np.uint64(config.set_bits)).astype(np.int64)
        if isinstance(kernel, CompiledKernel):
            # Trace-order native dispatch: no set-major sort needed.
            edge_hits = kernel.run_batch(set_idx, tags, run_u, rep,
                                         run_cost, extra, kern_core)
            return self._expand(run_lines, run_core, run_lengths, edge_hits)
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        sorted_tags = tags[order]
        sorted_u = run_u[order] if run_u is not None else None
        sorted_rep = rep[order] if rep is not None else None
        sorted_cost = run_cost[order] if run_cost is not None else None
        sorted_core = kern_core[order] if kern_core is not None else None
        sorted_extra = extra[order] if extra is not None else None

        # Only the sets this batch actually touches (chunks are usually
        # much smaller than the whole trace, so scanning every set per
        # chunk would dominate).
        present, first = np.unique(sorted_sets, return_index=True)
        bounds = np.append(first, m)
        sorted_hits = np.empty(m, dtype=bool)
        for which, s in enumerate(present.tolist()):
            lo = int(bounds[which])
            hi = int(bounds[which + 1])
            chunk_u = sorted_u[lo:hi].tolist() if sorted_u is not None else None
            chunk_rep = (sorted_rep[lo:hi].tolist()
                         if sorted_rep is not None else None)
            chunk_cost = (sorted_cost[lo:hi].tolist()
                          if sorted_cost is not None else None)
            chunk_core = (sorted_core[lo:hi].tolist()
                          if sorted_core is not None else None)
            chunk_extra = (sorted_extra[lo:hi].tolist()
                           if sorted_extra is not None else None)
            sorted_hits[lo:hi] = kernel.run_set(s, sorted_tags[lo:hi].tolist(),
                                                chunk_u, chunk_rep, chunk_cost,
                                                chunk_extra, chunk_core)
        edge_hits = np.empty(m, dtype=bool)
        edge_hits[order] = sorted_hits
        return self._expand(run_lines, run_core, run_lengths, edge_hits)

    def _expand(self, run_lines: AddressArray, run_core: IndexArray | None,
                run_lengths: IndexArray,
                edge_hits: BoolArray) -> tuple[BoolArray, AddressArray]:
        """Expand run outcomes to per-access hits: each run contributes
        its edge outcome followed by (length - 1) collapsed hits."""
        total = int(run_lengths.sum())
        hits = np.ones(total, dtype=bool)
        starts = np.cumsum(run_lengths) - run_lengths
        hits[starts] = edge_hits
        self._edge_count += len(edge_hits)
        self._hit_count += int(hits.sum())
        if self.keep_hits:
            self._hit_chunks.append(hits)
        if run_core is not None:
            self.last_miss_cores = run_core[~edge_hits]
        return hits, run_lines[~edge_hits]

    def flush(self) -> tuple[BoolArray, AddressArray]:
        """Resolve the carried trailing run (stream end).  Returns its
        ``(hits, miss_lines)``; :meth:`feed` is an error afterwards."""
        if self._flushed:
            raise RuntimeError("stream already flushed")
        self._flushed = True
        if self._track_cores:
            self.last_miss_cores = np.zeros(0, dtype=np.int64)
        pending = self._pending
        self._pending = None
        if pending is None:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64)
        pline, pu, pcost, pcore, pcount = pending
        return self._dispatch(
            np.array([pline], dtype=np.uint64),
            np.array([pu], dtype=np.float64) if pu is not None else None,
            np.array([pcost], dtype=np.int64) if pcost is not None else None,
            np.array([pcore], dtype=np.int64) if pcore is not None else None,
            np.array([pcount], dtype=np.int64))

    def finish(self) -> SimResult:
        """Flush (if not already flushed) and assemble the SimResult."""
        if not self._flushed:
            self.flush()
        tel = self.telemetry
        if tel is not None:
            self.kernel.telemetry_finalize()
            tel.inc("engine.accesses", self.n)
            tel.inc("engine.edge_accesses", self._edge_count)
            tel.inc("engine.collapsed_hits", self.n - self._edge_count)
            tel.inc("engine.stream_chunks", self._chunk_index)
            tel.inc("hits", self._hit_count)
            tel.inc("misses", self.n - self._hit_count)
            if self.sanitizer is not None:
                self.sanitizer.check_counters(tel, self.n, self._hit_count)
        hits: BoolArray | None = None
        if self.keep_hits:
            hits = (np.concatenate(self._hit_chunks) if self._hit_chunks
                    else np.zeros(0, dtype=bool))
        return SimResult(
            policy=self.spec.name,
            n=self.n,
            hit_count=self._hit_count,
            miss_count=self.n - self._hit_count,
            elapsed_s=time.perf_counter() - self._start,
            hits=hits,
            policy_stats=self.kernel.extra_stats(),
            telemetry=tel.to_dict() if tel is not None else None,
        )


class ReferenceEngine:
    """Naive per-access reference implementation (one Python step per access).

    With a :class:`~emissary.telemetry.Telemetry` attached, the engine
    does the generic line-lifetime accounting itself (it resolves tags
    and victims), and the naive policy contributes its policy-specific
    counters via ``telemetry_finalize`` — producing the same counter and
    histogram names as the instrumented batched kernels, which the
    telemetry test suite compares across engines.
    """

    def __init__(self, config: CacheConfig | None = None,
                 telemetry: Telemetry | None = None,
                 sanitizer: "Sanitizer" | None = None,
                 num_cores: int = 1) -> None:
        self.config = config or CacheConfig()
        self.telemetry = telemetry
        self.sanitizer = sanitizer
        self.num_cores = num_cores

    def run(self, addresses: AddressArray, policy: PolicySpec, seed: int = 0,
            keep_hits: bool = True, cost: IndexArray | None = None,
            core: IndexArray | None = None) -> SimResult:
        spec = require_policy_spec(policy, caller="ReferenceEngine.run")
        config = self.config
        tel = self.telemetry
        n = len(addresses)
        num_sets, ways = config.num_sets, config.ways
        offset_bits, set_bits = config.offset_bits, config.set_bits
        set_mask = num_sets - 1
        if cost is not None and len(cost) != n:
            raise ValueError(f"cost has {len(cost)} entries for {n} accesses")
        if core is not None and len(core) != n:
            raise ValueError(f"core has {len(core)} entries for {n} accesses")

        start = time.perf_counter()
        u_arr = _uniforms(n, spec.name, seed)
        u_list = u_arr.tolist() if u_arr is not None else None
        cost_list = (np.asarray(cost, dtype=np.int64).tolist()
                     if cost is not None else None)
        core_list = (np.asarray(core, dtype=np.int64).tolist()
                     if core is not None else None)
        extra = {"num_cores": self.num_cores} if spec.name == "emissary" else {}
        impl = make_naive(spec.name, num_sets, ways, **spec.params, **extra)
        if self.sanitizer is not None:
            self.sanitizer.attach_naive(impl)
        tag_table = [[None] * ways for _ in range(num_sets)]
        hits = np.empty(n, dtype=bool)
        # Per-(set, way) hits-since-fill; only maintained when instrumented.
        track = tel is not None
        line_hits = [0] * (num_sets * ways) if track else None
        fills = evictions = dead = 0
        span = span_factory(tel)

        with span("naive_loop"):
            for i, addr in enumerate(addresses.tolist()):
                line = addr >> offset_bits
                s = line & set_mask
                tag = line >> set_bits
                u_i = u_list[i] if u_list is not None else 0.0
                set_tags = tag_table[s]
                way = -1
                for w in range(ways):
                    if set_tags[w] == tag:
                        way = w
                        break
                if way >= 0:
                    impl.on_hit(s, way, i)
                    if track:
                        line_hits[s * ways + way] += 1
                    hits[i] = True
                    continue
                for w in range(ways):
                    if set_tags[w] is None:
                        way = w
                        break
                else:
                    way = impl.find_victim(s, u_i)
                    impl.replaced(s, way)
                    if track:
                        victim_hits = line_hits[s * ways + way]
                        tel.observe("line_hits", victim_hits)
                        evictions += 1
                        if victim_hits == 0:
                            dead += 1
                set_tags[way] = tag
                impl.on_fill(s, way, i, u_i,
                             cost_list[i] if cost_list is not None else None,
                             core_list[i] if core_list is not None else None)
                if track:
                    line_hits[s * ways + way] = 0
                    fills += 1
                hits[i] = False

        elapsed = time.perf_counter() - start
        hit_count = int(hits.sum())
        if track:
            tel.inc("fills", fills)
            tel.inc("evictions", evictions)
            tel.inc("dead_on_fill", dead)
            tel.inc("hits", hit_count)
            tel.inc("misses", n - hit_count)
            tel.inc("engine.accesses", n)
            for s in range(num_sets):
                set_tags = tag_table[s]
                for w in range(ways):
                    if set_tags[w] is not None:
                        tel.observe("resident_line_hits", line_hits[s * ways + w])
            impl.telemetry_finalize(tel)
            if self.sanitizer is not None:
                self.sanitizer.check_counters(tel, n, hit_count)
        return SimResult(
            policy=spec.name,
            n=n,
            hit_count=hit_count,
            miss_count=n - hit_count,
            elapsed_s=elapsed,
            hits=hits if keep_hits else None,
            policy_stats={},
            telemetry=tel.to_dict() if tel is not None else None,
        )


def simulate(addresses: AddressArray, policy: PolicySpec,
             config: CacheConfig | None = None, seed: int = 0,
             engine: str = "batched") -> SimResult:
    """Array-level convenience wrapper: run ``policy`` over ``addresses``.

    For spec-described traces (and two-level hierarchies) prefer
    :func:`emissary.api.simulate` with a :class:`~emissary.api.SimRequest`.
    """
    if engine == "batched":
        return BatchedEngine(config).run(addresses, policy, seed=seed)
    if engine == "compiled":
        return BatchedEngine(config, kernel_backend="compiled").run(
            addresses, policy, seed=seed)
    if engine == "reference":
        return ReferenceEngine(config).run(addresses, policy, seed=seed)
    raise ValueError(f"unknown engine {engine!r} "
                     "(expected 'batched', 'compiled', or 'reference')")
