"""EMISSARY trace-driven cache simulation engine.

Reproduction scaffold for "EMISSARY: Enhanced Miss Awareness Replacement
Policy for L2 Instruction Caching" (ISCA 2023).  The package provides:

- :mod:`emissary.traces` — synthetic instruction-stream generators
- :mod:`emissary.api` — typed :class:`PolicySpec` / :class:`SimRequest`
  request objects and the unified :func:`simulate` entry point
- :mod:`emissary.engine` — batched set-major engine + naive reference engine
- :mod:`emissary.hierarchy` — two-level L1I -> L2 hierarchy engines (the
  paper's actual setting: EMISSARY at L2 behind an L1I filter, with HP
  candidacy driven by measured L1I miss counts)
- :mod:`emissary.policies` — replacement policy kernels (LRU, Random,
  SRRIP, EMISSARY)
- :mod:`emissary.compiled` — compiled kernel backend (numba ``@njit`` or
  the bundled C fallback), bit-identical to the python kernels and
  selectable via ``SimRequest(backend="compiled")``
- :mod:`emissary.sweep` — parallel (trace x policy x params) sweep runner
  with an on-disk results cache
- :mod:`emissary.telemetry` — opt-in instrumentation layer: policy
  counters/histograms, engine phase spans, Chrome trace export
- :mod:`emissary.report` — run-report CLI rendering sweep ``--out`` JSON
- :mod:`emissary.bench` — throughput benchmark harness emitting BENCH_*.json
- :mod:`emissary.analysis` — static analysis (the EMI determinism lint
  suite, ``python -m emissary.analysis``) and the opt-in runtime kernel
  state :class:`Sanitizer`
"""

from emissary.analysis.sanitizer import Sanitizer, SanitizerError
from emissary.api import BACKENDS, PolicySpec, SimRequest, simulate
from emissary.compiled import CompiledUnavailableError
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine, SimResult
from emissary.hierarchy import (BatchedHierarchyEngine, HierarchyConfig,
                                HierarchyReferenceEngine, HierarchyResult,
                                simulate_hierarchy)
from emissary.telemetry import TELEMETRY_SCHEMA_VERSION, Telemetry
from emissary.wire import WIRE_SCHEMA_VERSION

__version__ = "0.4.0"

__all__ = [
    "BACKENDS",
    "BatchedEngine",
    "BatchedHierarchyEngine",
    "CacheConfig",
    "CompiledUnavailableError",
    "HierarchyConfig",
    "HierarchyReferenceEngine",
    "HierarchyResult",
    "PolicySpec",
    "ReferenceEngine",
    "Sanitizer",
    "SanitizerError",
    "SimRequest",
    "SimResult",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "WIRE_SCHEMA_VERSION",
    "simulate",
    "simulate_hierarchy",
    "__version__",
]
