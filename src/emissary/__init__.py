"""EMISSARY trace-driven cache simulation engine.

Reproduction scaffold for "EMISSARY: Enhanced Miss Awareness Replacement
Policy for L2 Instruction Caching" (ISCA 2023).  The package provides:

- :mod:`emissary.traces` — synthetic instruction-stream generators
- :mod:`emissary.engine` — batched set-major engine + naive reference engine
- :mod:`emissary.policies` — replacement policy kernels (LRU, Random,
  SRRIP, EMISSARY)
- :mod:`emissary.sweep` — parallel (trace x policy x params) sweep runner
  with an on-disk results cache
- :mod:`emissary.bench` — throughput benchmark harness emitting BENCH_*.json
"""

from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine, SimResult, simulate

__version__ = "0.1.0"

__all__ = [
    "BatchedEngine",
    "CacheConfig",
    "ReferenceEngine",
    "SimResult",
    "simulate",
    "__version__",
]
