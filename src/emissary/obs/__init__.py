"""Observability plane for the serving stack.

Three concerns, one package (PR 3's process-local :mod:`~emissary.
telemetry` stays the raw signal source; this package makes it operable
from outside the process):

:mod:`~emissary.obs.tracing`
    Deterministic per-request trace ids and the bounded
    :class:`TraceStore` that stitches server-side HTTP-phase spans with
    worker-side engine spans into one Chrome trace per request
    (``GET /v1/trace``).

:mod:`~emissary.obs.metrics`
    A pure renderer from ``Telemetry.to_dict()`` payloads to Prometheus
    text exposition (``GET /v1/metrics``) plus the strict golden parser
    the tests and the CI smoke validate it with.

:mod:`~emissary.obs.logs`
    JSON structured logging with contextvar-bound trace correlation and
    the bounded :class:`LogRing` behind ``GET /v1/logz``.

(:mod:`~emissary.obs.top`, the live ``serve top`` dashboard, is imported
lazily by the CLI — it depends on the serve client helpers and stays out
of this namespace to keep the import graph acyclic.)
"""

from emissary.obs.logs import (DEFAULT_LOG_CAPACITY, JsonLogFormatter,
                               LogRing, bind_log_context, bound_trace_id,
                               record_to_dict, setup_serve_logging)
from emissary.obs.metrics import (PROMETHEUS_CONTENT_TYPE, histogram_quantile,
                                  metric_name, parse_prometheus,
                                  render_prometheus, sample_value)
from emissary.obs.tracing import (DEFAULT_TRACE_CAPACITY, TraceContext,
                                  TraceStore, derive_trace_id,
                                  merge_request_trace)

__all__ = [
    "DEFAULT_LOG_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "JsonLogFormatter",
    "LogRing",
    "PROMETHEUS_CONTENT_TYPE",
    "TraceContext",
    "TraceStore",
    "bind_log_context",
    "bound_trace_id",
    "derive_trace_id",
    "histogram_quantile",
    "merge_request_trace",
    "metric_name",
    "parse_prometheus",
    "record_to_dict",
    "render_prometheus",
    "sample_value",
    "setup_serve_logging",
]
