"""Prometheus text exposition over :meth:`Telemetry.to_dict` payloads.

:func:`render_prometheus` is a **pure function** from a telemetry
payload (plus optional point-in-time gauges) to the Prometheus text
exposition format (version 0.0.4): no I/O, no clock reads, no global
state — the goldens test pins its output byte-for-byte.  ``GET
/v1/metrics`` on the serving layer is exactly this function applied to
the live service registry.

Mapping rules:

counters
    ``serve.requests`` -> ``emissary_serve_requests_total`` (dots and
    other non-metric characters become ``_``; the ``_total`` suffix is
    the Prometheus counter convention).

histograms
    Telemetry histograms are exact value -> count maps.  Exposition
    folds them into **explicit cumulative buckets** (``_bucket{le=...}``
    + ``_sum`` + ``_count``): latency histograms (``*latency_us``) use
    the microsecond ladder :data:`LATENCY_BUCKETS_US`, everything else
    the power-of-two ladder :data:`GENERIC_BUCKETS`.  For metrics named
    in ``quantile_gauges`` (default ``serve.latency_us``) derived p50 /
    p99 gauges are also emitted — computed from the exact value map, so
    they carry no bucket-interpolation error.

gauges
    Point-in-time values the caller supplies (queue depth, uptime,
    cache bytes) — anything that can go down as well as up.

:func:`parse_prometheus` is the matching **golden parser**: it validates
the exposition grammar strictly (TYPE before samples, label syntax,
bucket monotonicity, ``_count`` == the ``+Inf`` bucket) and returns the
parsed families.  The test suite and the CI serve smoke both round-trip
the rendered text through it, so a formatting regression fails loudly.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Mapping
from typing import Any

#: Content-Type for the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported metric name is prefixed with this namespace.
METRIC_NAMESPACE = "emissary"

#: Explicit bucket upper bounds (microseconds) for ``*latency_us``
#: histograms: 100us .. 10s, roughly 2.5x steps.
LATENCY_BUCKETS_US: tuple[int, ...] = (
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000)

#: Explicit bucket upper bounds for generic integer-valued histograms
#: (per-line hit counts, HP occupancy): 0 plus powers of two.
GENERIC_BUCKETS: tuple[int, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)

#: Histogram names that additionally get derived p50/p99 gauges.
DEFAULT_QUANTILE_GAUGES = ("serve.latency_us",)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$")

_LABEL_PAIR = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def metric_name(name: str) -> str:
    """Canonical Prometheus metric name for a telemetry counter/histogram
    name (``serve.latency_us`` -> ``emissary_serve_latency_us``)."""
    return f"{METRIC_NAMESPACE}_{_NAME_OK.sub('_', name)}"


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def buckets_for(name: str) -> tuple[int, ...]:
    """The explicit bucket ladder used for histogram ``name``."""
    if name.endswith("latency_us"):
        return LATENCY_BUCKETS_US
    return GENERIC_BUCKETS


def histogram_quantile(hist: Mapping[int, int] | Mapping[str, int],
                       q: float) -> float:
    """Quantile ``q`` (0..1) of an exact value -> count histogram.

    Works on raw ``Telemetry.histograms`` entries or their stringified
    ``to_dict`` form.  Returns the smallest observed value whose
    cumulative count reaches ``q`` of the total (0.0 for an empty
    histogram) — exact, because the map holds every observed value.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    items = sorted((int(value), count) for value, count in hist.items())
    total = sum(count for _, count in items)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for value, count in items:
        cumulative += count
        if cumulative >= rank:
            return float(value)
    return float(items[-1][0])


def _render_histogram(out: list[str], name: str,
                      hist: Mapping[str, int] | Mapping[int, int]) -> None:
    base = metric_name(name)
    items = sorted((int(value), count) for value, count in hist.items())
    total = sum(count for _, count in items)
    mass = sum(value * count for value, count in items)
    out.append(f"# HELP {base} emissary histogram `{name}`")
    out.append(f"# TYPE {base} histogram")
    cumulative = 0
    index = 0
    for bound in buckets_for(name):
        while index < len(items) and items[index][0] <= bound:
            cumulative += items[index][1]
            index += 1
        out.append(f'{base}_bucket{{le="{bound}"}} {cumulative}')
    out.append(f'{base}_bucket{{le="+Inf"}} {total}')
    out.append(f"{base}_sum {mass}")
    out.append(f"{base}_count {total}")


def render_prometheus(telemetry: Mapping[str, Any],
                      gauges: Mapping[str, float] | None = None,
                      quantile_gauges: Iterable[str] = DEFAULT_QUANTILE_GAUGES,
                      ) -> str:
    """Render a ``Telemetry.to_dict`` payload (plus optional gauges) as
    Prometheus text exposition.  Pure: same inputs, same bytes."""
    counters: Mapping[str, int] = telemetry.get("counters", {})
    histograms: Mapping[str, Mapping[str, int]] = telemetry.get("histograms", {})
    out: list[str] = []
    for name in sorted(counters):
        base = f"{metric_name(name)}_total"
        out.append(f"# HELP {base} emissary counter `{name}`")
        out.append(f"# TYPE {base} counter")
        out.append(f"{base} {_format_value(counters[name])}")
    for name in sorted(histograms):
        _render_histogram(out, name, histograms[name])
    quantile_set = set(quantile_gauges)
    for name in sorted(quantile_set & set(histograms)):
        for q, tag in ((0.5, "p50"), (0.99, "p99")):
            base = f"{metric_name(name)}_{tag}"
            out.append(f"# HELP {base} emissary derived quantile "
                       f"{tag} of `{name}`")
            out.append(f"# TYPE {base} gauge")
            out.append(f"{base} {_format_value(histogram_quantile(histograms[name], q))}")
    for name in sorted(gauges or {}):
        base = metric_name(name)
        out.append(f"# HELP {base} emissary gauge `{name}`")
        out.append(f"# TYPE {base} gauge")
        out.append(f"{base} {_format_value((gauges or {})[name])}")
    return "\n".join(out) + "\n"


def _parse_labels(text: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    if not text:
        return labels
    for pair in text.split(","):
        match = _LABEL_PAIR.match(pair.strip())
        if match is None:
            raise ValueError(f"line {line_no}: malformed label pair {pair!r}")
        labels[match.group(1)] = match.group(2)
    return labels


def _family_of(name: str) -> str:
    """Metric family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Strictly parse text exposition; the golden parser for our output.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value)]}}``.  Raises ``ValueError`` on grammar violations: samples
    before their TYPE line, malformed sample/label syntax, duplicate
    TYPE declarations, non-monotonic histogram buckets, a histogram
    whose ``_count`` disagrees with its ``+Inf`` bucket, or a missing
    terminating newline.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    families: dict[str, dict[str, Any]] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ValueError(f"line {line_no}: malformed HELP line")
            family = families.setdefault(
                _family_of(parts[2]), {"type": None, "help": None, "samples": []})
            family["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "untyped"):
                raise ValueError(f"line {line_no}: malformed TYPE line {line!r}")
            family = families.setdefault(
                _family_of(parts[2]), {"type": None, "help": None, "samples": []})
            if family["type"] is not None:
                raise ValueError(f"line {line_no}: duplicate TYPE for {parts[2]}")
            family["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_no)
        value = float(match.group("value"))
        family_name = _family_of(name)
        family = families.get(family_name)
        if family is None or family["type"] is None:
            raise ValueError(f"line {line_no}: sample {name!r} before its "
                             f"TYPE declaration")
        family["samples"].append((name, labels, value))

    for family_name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets = [(labels.get("le", ""), value)
                   for name, labels, value in family["samples"]
                   if name == f"{family_name}_bucket"]
        if not buckets or buckets[-1][0] != "+Inf":
            raise ValueError(f"{family_name}: histogram missing +Inf bucket")
        previous = -1.0
        for le, value in buckets:
            if value < previous:
                raise ValueError(f"{family_name}: bucket le={le} count "
                                 f"{value} below previous {previous}")
            previous = value
        counts = [value for name, _, value in family["samples"]
                  if name == f"{family_name}_count"]
        if len(counts) != 1 or counts[0] != buckets[-1][1]:
            raise ValueError(f"{family_name}: _count {counts} disagrees with "
                             f"+Inf bucket {buckets[-1][1]}")
    return families


def sample_value(families: Mapping[str, dict[str, Any]], name: str,
                 labels: Mapping[str, str] | None = None) -> float | None:
    """Value of the first sample matching ``name`` (and ``labels``
    subset) in a parsed exposition, or None."""
    family = families.get(_family_of(name))
    if family is None:
        return None
    wanted = dict(labels or {})
    for sample_name, sample_labels, value in family["samples"]:
        if sample_name == name and all(
                sample_labels.get(k) == v for k, v in wanted.items()):
            return float(value)
    return None
