"""Structured (JSON) logging with trace correlation for the serve stack.

Every serve-layer lifecycle event — admission rejections, dedupe joins,
worker crashes, LRU evictions, request completions — is logged through
the stdlib ``logging`` tree with two correlation fields attached:

``trace_id``
    The request's deterministic trace id (see
    :mod:`emissary.obs.tracing`), bound to the asyncio task's context
    via a :class:`~contextvars.ContextVar` by the HTTP handler, so any
    log record emitted while serving that request — however deep in the
    service — carries it without threading it through every call.

``request_key``
    The results-cache content key of the simulation being served.

Both can also be supplied explicitly per record via ``extra=`` (the
explicit value wins over the bound context).

Two sinks consume the same structured record form:

:class:`JsonLogFormatter`
    A drop-in :class:`logging.Formatter` emitting one compact JSON
    object per line — machine-parseable process logs
    (``python -m emissary.serve serve --log-json``).

:class:`LogRing`
    A bounded in-memory handler keeping the last N records as dicts;
    the server exposes it at ``GET /v1/logz`` so an operator can see
    recent correlated events without shell access to the host.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any

#: Records kept by a :class:`LogRing` (oldest dropped first).
DEFAULT_LOG_CAPACITY = 512

#: Correlation fields promoted from bound context / ``extra=`` into the
#: structured record.
_CORRELATION_FIELDS = ("trace_id", "request_key", "event")

_TRACE_ID: ContextVar[str | None] = ContextVar("emissary_trace_id",
                                               default=None)
_REQUEST_KEY: ContextVar[str | None] = ContextVar("emissary_request_key",
                                                  default=None)


@contextmanager
def bind_log_context(trace_id: str | None = None,
                     request_key: str | None = None) -> Iterator[None]:
    """Bind correlation fields to the current (task) context.

    ``asyncio.create_task`` copies the context, so a simulation task
    created while bound keeps the binding for its whole lifetime — its
    crash/error logs correlate with the originating request even after
    the HTTP handler has moved on.
    """
    trace_token = _TRACE_ID.set(trace_id)
    key_token = _REQUEST_KEY.set(request_key)
    try:
        yield
    finally:
        _TRACE_ID.reset(trace_token)
        _REQUEST_KEY.reset(key_token)


def bound_trace_id() -> str | None:
    """The trace id bound to the current context, if any."""
    return _TRACE_ID.get()


def record_to_dict(record: logging.LogRecord) -> dict[str, Any]:
    """The canonical structured form of one log record.

    ``ts`` is the record's creation time (epoch seconds — wall clock is
    correct here: logs are operator-facing, and the serve layer is not
    under the kernel determinism contract).
    """
    out: dict[str, Any] = {
        "ts": record.created,
        "level": record.levelname,
        "logger": record.name,
        "message": record.getMessage(),
    }
    bound = {"trace_id": _TRACE_ID.get(), "request_key": _REQUEST_KEY.get(),
             "event": None}
    for field in _CORRELATION_FIELDS:
        value = getattr(record, field, None)
        if value is None:
            value = bound.get(field)
        if value is not None:
            out[field] = value
    if record.exc_info and record.exc_info[1] is not None:
        out["exc"] = repr(record.exc_info[1])
    return out


class JsonLogFormatter(logging.Formatter):
    """Formats each record as one compact JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(record_to_dict(record), sort_keys=True,
                          default=str)


class LogRing(logging.Handler):
    """Bounded in-memory structured-log ring (the ``/v1/logz`` source).

    Stores :func:`record_to_dict` dicts, not formatted strings, so the
    HTTP surface can serve them as a JSON array without re-parsing.
    """

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY,
                 level: int = logging.INFO) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(level=level)
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record: logging.LogRecord) -> None:
        try:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record_to_dict(record))
        except Exception:  # noqa: BLE001 - logging must never propagate
            self.handleError(record)

    def records(self) -> list[dict[str, Any]]:
        """Snapshot of the retained records, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()


def setup_serve_logging(level: int = logging.INFO,
                        json_lines: bool = True) -> None:
    """Configure process-level logging for the serve CLI.

    With ``json_lines`` every record on stderr is one JSON object
    (:class:`JsonLogFormatter`); otherwise the classic human format.
    Idempotent enough for a CLI entry point: it replaces the root
    handlers rather than stacking new ones.
    """
    handler = logging.StreamHandler()
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s"))
    root = logging.getLogger()
    root.handlers[:] = [handler]
    root.setLevel(level)
