"""``python -m emissary.serve top`` — a live terminal dashboard.

Polls a running server's ``GET /v1/stats`` on an interval and renders
one frame per poll: request/simulation rates (derived from counter
deltas between polls, not lifetime averages), hit/dedupe ratios, latency
percentiles straight from the ``serve.latency_us`` telemetry histogram,
queue depth against the admission watermark, and cache/observability
state.

:func:`render_frame` is pure (stats in, text out) so the frame layout is
unit-testable without a server; :func:`run_top` owns the polling loop
and the terminal.
"""

from __future__ import annotations

import asyncio
import sys
import time
from typing import Any

from emissary.obs.metrics import histogram_quantile

#: Seconds between polls (and thus frames).
DEFAULT_INTERVAL_S = 2.0

_CLEAR = "\x1b[2J\x1b[H"


def _rate(now: dict[str, Any], before: dict[str, Any] | None, field: str,
          dt: float) -> float:
    if before is None or dt <= 0:
        return 0.0
    return max(0.0, (now.get(field, 0) - before.get(field, 0)) / dt)


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def _bar(fraction: float, width: int = 24) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def render_frame(stats: dict[str, Any], previous: dict[str, Any] | None,
                 dt: float) -> str:
    """One dashboard frame from a ``/v1/stats`` payload.

    ``previous`` is the prior poll's payload (None on the first frame);
    ``dt`` the seconds between the two polls — rates are deltas over
    ``dt``, so a burst shows up in the frame it happened in.
    """
    requests = stats.get("requests", 0)
    simulations = stats.get("simulations", 0)
    joined = stats.get("dedupe_joined", 0)
    cache = stats.get("cache", {})
    hits = cache.get("hits", 0)
    hist = (stats.get("telemetry", {}).get("histograms", {})
            .get("serve.latency_us", {}))
    p50 = histogram_quantile(hist, 0.50) / 1e3
    p99 = histogram_quantile(hist, 0.99) / 1e3
    depth = stats.get("queue_depth", 0)
    watermark = max(1, stats.get("queue_watermark", 1))
    budget = cache.get("budget_bytes")
    obs = stats.get("obs", {})
    lines = [
        f"emissary serve top    uptime {stats.get('uptime_s', 0.0):8.1f}s    "
        f"workers {stats.get('workers', '?')}",
        "",
        f"  req/s  {_rate(stats, previous, 'requests', dt):8.1f}    "
        f"sims/s {_rate(stats, previous, 'simulations', dt):8.1f}    "
        f"requests {requests}    errors {stats.get('errors', 0)}    "
        f"rejected {stats.get('rejected', 0)}",
        f"  latency ms  p50 {p50:8.2f}    p99 {p99:8.2f}    "
        f"(n={sum(int(c) for c in hist.values())})",
        f"  queue  [{_bar(depth / watermark)}] {depth}/{watermark}    "
        f"worker crashes {stats.get('worker_crashes', 0)}",
        f"  cache  hit ratio {_ratio(hits, requests):5.2f}    "
        f"dedupe ratio {_ratio(joined, requests):5.2f}    "
        f"evictions {cache.get('evictions', 0)}    "
        f"bytes {cache.get('total_bytes', 0)}"
        + (f"/{budget}" if budget is not None else ""),
    ]
    if obs:
        lines.append(
            f"  obs    {'on' if obs.get('enabled') else 'off'}    "
            f"traces {obs.get('traces', 0)}    "
            f"log records {obs.get('log_records', 0)}")
    return "\n".join(lines)


async def run_top(host: str, port: int,
                  interval_s: float = DEFAULT_INTERVAL_S,
                  iterations: int | None = None,
                  clear_screen: bool | None = None) -> int:
    """Poll ``/v1/stats`` and render frames until interrupted.

    ``iterations`` bounds the loop (None = forever); ``clear_screen``
    defaults to auto-detection (ANSI clear only on a TTY, plain
    frame-per-poll output when piped).
    """
    from emissary.serve.loadgen import fetch_json

    if clear_screen is None:
        clear_screen = sys.stdout.isatty()
    previous: dict[str, Any] | None = None
    previous_at = time.monotonic()
    frame = 0
    while iterations is None or frame < iterations:
        try:
            status, stats = await fetch_json(host, port, "/v1/stats")
        except OSError as exc:
            print(f"top: cannot reach {host}:{port} ({exc})", file=sys.stderr)
            return 1
        if status != 200:
            print(f"top: /v1/stats returned {status}", file=sys.stderr)
            return 1
        now = time.monotonic()
        text = render_frame(stats, previous, now - previous_at)
        if clear_screen:
            print(_CLEAR + text, flush=True)
        else:
            print(text + "\n", flush=True)
        previous, previous_at = stats, now
        frame += 1
        if iterations is None or frame < iterations:
            await asyncio.sleep(interval_s)
    return 0
