"""Per-request distributed tracing for the serving layer.

A :class:`TraceContext` is minted once per HTTP request by
:class:`~emissary.serve.service.SimService`.  Its ``trace_id`` is
**deterministic** — derived from the service's observability seed and a
monotone request counter, never from the wall clock or ``uuid4`` — so a
replayed request sequence produces the same trace ids (the determinism
discipline the EMI lint enforces for kernels extends to the ids that
name their traces).

The spans themselves come from two places and meet in the
:class:`TraceStore`:

server-side spans
    The HTTP handler times its own phases (``serve.request``,
    ``serve.admit``, ``serve.await_result``) on a per-request
    :class:`~emissary.telemetry.Telemetry` instance.

worker-side spans
    A simulation that ran with ``telemetry=True`` returns the PR 3 phase
    spans (decode / run collapse / kernel loop / stream chunks) inside
    its result envelope; the worker process publishes its pid alongside
    so the merged trace keeps one track per process.

:meth:`TraceStore.record` stitches both into one Chrome trace-event JSON
object per request — pid 0 is the server, the worker's real pid is its
own track — bounded by a ring capacity so a long-lived server never
accretes traces without limit.  ``GET /v1/trace`` serves the ring.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from emissary.telemetry import spans_to_chrome_trace
from emissary.wire import check_known_keys

#: Completed request traces kept in the ring (oldest evicted first).
DEFAULT_TRACE_CAPACITY = 256

#: Synthetic pid for server-side spans in the merged Chrome trace (real
#: worker pids are always > 0).
SERVER_TRACK_PID = 0


def derive_trace_id(seed: int, counter: int) -> str:
    """Deterministic 16-hex-digit trace id for request ``counter``.

    Two servers started with different ``seed`` values produce disjoint
    id streams; one server replayed from the same seed reproduces its
    ids exactly.  No wall clock, no process entropy.
    """
    digest = hashlib.sha256(f"emissary.trace:{seed}:{counter}".encode())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one traced request: the trace id plus the request's
    position in the server's admission order (used as the Chrome trace
    ``tid`` so concurrent requests land on separate tracks)."""

    trace_id: str
    index: int

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "index": self.index}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceContext":
        check_known_keys(d, ("trace_id", "index"), "TraceContext")
        return cls(trace_id=str(d["trace_id"]), index=int(d["index"]))


def merge_request_trace(trace_id: str,
                        server_spans: Iterable[Mapping[str, Any]],
                        worker_spans: Iterable[Mapping[str, Any]],
                        worker_pid: int | None = None,
                        tid: int = 0) -> dict[str, Any]:
    """Stitch server- and worker-side spans into one Chrome trace.

    Server spans ride on pid :data:`SERVER_TRACK_PID`; worker spans on
    the worker's real pid (falling back to ``1`` for injected test
    workers that do not report one).  ``time.perf_counter`` is
    CLOCK_MONOTONIC system-wide on Linux, so the two processes' span
    timestamps share a base and the exporter's rebase aligns them on a
    common timeline.  Process-name metadata events label the tracks in
    Perfetto.
    """
    tagged: list[dict[str, Any]] = []
    for span in server_spans:
        merged = dict(span)
        merged["pid"] = SERVER_TRACK_PID
        merged["tid"] = tid
        tagged.append(merged)
    pid = worker_pid if worker_pid is not None else 1
    has_worker = False
    for span in worker_spans:
        merged = dict(span)
        merged["pid"] = pid
        merged["tid"] = tid
        tagged.append(merged)
        has_worker = True
    chrome = spans_to_chrome_trace(tagged)
    names = [(SERVER_TRACK_PID, "server")]
    if has_worker:
        names.append((pid, f"worker {pid}"))
    chrome["traceEvents"].extend({
        "name": "process_name", "ph": "M", "pid": track_pid, "tid": 0,
        "args": {"name": label},
    } for track_pid, label in names)
    chrome["otherData"] = {"trace_id": trace_id}
    return chrome


class TraceStore:
    """Bounded in-memory ring of completed request traces.

    ``record`` evicts the oldest entry past ``capacity`` — the store is
    a debugging window onto a live server, not an archive; ship traces
    to durable storage by polling ``GET /v1/trace`` if history matters.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._records)

    def record(self, ctx: TraceContext, key: str, status: str,
               server_spans: Iterable[Mapping[str, Any]],
               worker_spans: Iterable[Mapping[str, Any]],
               worker_pid: int | None = None) -> dict[str, Any]:
        """Stitch and retain one request's merged trace; returns the
        stored record."""
        chrome = merge_request_trace(ctx.trace_id, server_spans, worker_spans,
                                     worker_pid=worker_pid, tid=ctx.index)
        span_events = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
        entry = {
            "trace_id": ctx.trace_id,
            "index": ctx.index,
            "key": key,
            "status": status,
            "span_count": len(span_events),
            "worker_pid": worker_pid,
            "trace": chrome,
        }
        self._records[ctx.trace_id] = entry
        self._records.move_to_end(ctx.trace_id)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
        return entry

    def get(self, trace_id: str) -> dict[str, Any] | None:
        """Full stored record (including the Chrome trace), or None."""
        return self._records.get(trace_id)

    def latest(self) -> dict[str, Any] | None:
        """Most recently recorded entry, or None when the ring is empty."""
        if not self._records:
            return None
        return next(reversed(self._records.values()))

    def summaries(self) -> list[dict[str, Any]]:
        """Ring contents oldest-first, without the trace payloads."""
        return [{k: v for k, v in entry.items() if k != "trace"}
                for entry in self._records.values()]
