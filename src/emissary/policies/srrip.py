"""Static RRIP (SRRIP-HP) replacement with 2-bit re-reference predictions.

Lines are inserted with RRPV = max - 1 ("long re-reference"), promoted to
RRPV = 0 on hit, and the victim is the lowest-index way whose RRPV equals
max; if none exists all RRPVs in the set age by one until one does.
Deterministic — no RNG involved — and way positions are physical in both
implementations, so the scan order (way 0 upward) matches exactly.

The batched kernel bit-packs a whole set's RRPVs into one Python int
(2 bits per way) for associativities up to :data:`PACK_MAX_WAYS`:

- *aging* ("bump every way until one reaches max") becomes a single
  ``packed += d * 0b0101...01`` — fields cannot carry into each other
  because only ways already at the maximum stay at the maximum;
- *victim selection* becomes one lookup in a precomputed table mapping
  the packed value to the lowest-index way holding the maximum RRPV;
- *hit promotion* is one mask.

For wider caches it falls back to a plain list-of-RRPVs kernel with the
same semantics.  A fill that is immediately re-referenced is promoted to
RRPV 0 by that hit, so the kernel consumes the engine's repeat flags
(``needs_repeat_flags``) to stay exact under MRU run collapsing.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from emissary.policies.base import NaivePolicy, PolicyKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.telemetry import Telemetry

RRPV_BITS = 2
RRPV_MAX = (1 << RRPV_BITS) - 1
RRPV_INSERT = RRPV_MAX - 1

#: Packed-int fast path covers up to 8 ways (16-bit packed values, 64K tables).
PACK_MAX_WAYS = 8

_TABLES: dict[int, tuple[bytes, bytes]] = {}


def _pack_tables(ways: int) -> tuple[bytes, bytes]:
    """(max RRPV, lowest-index way holding it) for every packed value."""
    cached = _TABLES.get(ways)
    if cached is not None:
        return cached
    size = 1 << (RRPV_BITS * ways)
    packed = np.arange(size, dtype=np.uint32)
    fields = np.stack([(packed >> (RRPV_BITS * w)) & RRPV_MAX for w in range(ways)])
    top = fields.max(axis=0)
    victim = np.argmax(fields == top, axis=0)
    tables = (top.astype(np.uint8).tobytes(), victim.astype(np.uint8).tobytes())
    _TABLES[ways] = tables
    return tables


class SRRIPKernel(PolicyKernel):
    name = "srrip"
    needs_rng = False
    needs_repeat_flags = True

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        self._ways_of: list[dict[int, int]] = [{} for _ in range(num_sets)]
        self._tag_at: list[list[int]] = [[] for _ in range(num_sets)]
        self._packed_ok = ways <= PACK_MAX_WAYS
        if self._packed_ok:
            self._top_table, self._victim_table = _pack_tables(ways)
            self._packed: list[int] = [0] * num_sets
            # 0b0101...01: adds the aging delta to every 2-bit field at once.
            self._ones = int("01" * ways, 2)
            self._clear = [~(RRPV_MAX << (RRPV_BITS * w)) & ((1 << (RRPV_BITS * ways)) - 1)
                           for w in range(ways)]
        else:
            self._rrpv: list[list[int]] = [[] for _ in range(num_sets)]

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Instrumented runs always take the wide (list-based) path — one
        instrumented loop instead of two, with semantics the equivalence
        suite already proves identical to the packed fast path."""
        super().attach_telemetry(telemetry)
        if self._packed_ok:
            self._packed_ok = False
            self._rrpv = [[] for _ in range(self.num_sets)]
        self._way_hits: list[list[int]] = [[] for _ in range(self.num_sets)]

    def run_set(self, set_index: int, tags: list[int],
                u: Sequence[float] | None,
                rep: Sequence[bool] | None = None,
                cost: Sequence[int] | None = None,
                extra: Sequence[int] | None = None,
                core: Sequence[int] | None = None) -> list[bool]:
        assert rep is not None
        if not self._packed_ok:
            return self._run_set_wide(set_index, tags, rep)
        ways_of = self._ways_of[set_index]
        tag_at = self._tag_at[set_index]
        packed = self._packed[set_index]
        top_table = self._top_table
        victim_table = self._victim_table
        ones = self._ones
        clear = self._clear
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        get = ways_of.get
        for tag, repeated in zip(tags, rep):
            way = get(tag)
            if way is not None:
                packed &= clear[way]  # promote to RRPV 0
                hit_append(True)
            else:
                insert = 0 if repeated else RRPV_INSERT
                size = len(tag_at)
                if size < ways:
                    ways_of[tag] = size
                    tag_at.append(tag)
                    packed |= insert << (RRPV_BITS * size)
                else:
                    aging = RRPV_MAX - top_table[packed]
                    if aging:
                        packed += aging * ones
                    victim = victim_table[packed]
                    del ways_of[tag_at[victim]]
                    ways_of[tag] = victim
                    tag_at[victim] = tag
                    packed = (packed & clear[victim]) | (insert << (RRPV_BITS * victim))
                hit_append(False)
        self._packed[set_index] = packed
        return hits

    def _run_set_wide(self, set_index: int, tags: list[int],
                      rep: Sequence[bool]) -> list[bool]:
        """List-based fallback for associativities beyond the packed tables."""
        ways_of = self._ways_of[set_index]
        tag_at = self._tag_at[set_index]
        rrpv = self._rrpv[set_index]
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        get = ways_of.get
        for tag, repeated in zip(tags, rep):
            way = get(tag)
            if way is not None:
                rrpv[way] = 0
                hit_append(True)
            else:
                insert = 0 if repeated else RRPV_INSERT
                size = len(tag_at)
                if size < ways:
                    ways_of[tag] = size
                    tag_at.append(tag)
                    rrpv.append(insert)
                else:
                    top = max(rrpv)
                    if top < RRPV_MAX:
                        aging = RRPV_MAX - top
                        for k in range(ways):
                            rrpv[k] += aging
                    victim = rrpv.index(RRPV_MAX)
                    del ways_of[tag_at[victim]]
                    ways_of[tag] = victim
                    tag_at[victim] = tag
                    rrpv[victim] = insert
                hit_append(False)
        return hits

    def _run_set_tel(self, set_index: int, tags: list[int],
                     u: Sequence[float] | None,
                     rep: Sequence[bool] | None = None,
                     cost: Sequence[int] | None = None,
                     extra: Sequence[int] | None = None,
                     core: Sequence[int] | None = None) -> list[bool]:
        """Instrumented twin of ``_run_set_wide`` with per-way hit counts."""
        tel = self._tel
        assert rep is not None and tel is not None and extra is not None
        ways_of = self._ways_of[set_index]
        tag_at = self._tag_at[set_index]
        rrpv = self._rrpv[set_index]
        way_hits = self._way_hits[set_index]
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        get = ways_of.get
        observe = tel.observe
        fills = evictions = dead = 0
        for tag, repeated, extra_i in zip(tags, rep, extra):
            way = get(tag)
            if way is not None:
                rrpv[way] = 0
                way_hits[way] += 1 + extra_i
                hit_append(True)
            else:
                insert = 0 if repeated else RRPV_INSERT
                size = len(tag_at)
                if size < ways:
                    ways_of[tag] = size
                    tag_at.append(tag)
                    rrpv.append(insert)
                    way_hits.append(extra_i)
                else:
                    top = max(rrpv)
                    if top < RRPV_MAX:
                        aging = RRPV_MAX - top
                        for k in range(ways):
                            rrpv[k] += aging
                    victim = rrpv.index(RRPV_MAX)
                    victim_hits = way_hits[victim]
                    observe("line_hits", victim_hits)
                    evictions += 1
                    if victim_hits == 0:
                        dead += 1
                    del ways_of[tag_at[victim]]
                    ways_of[tag] = victim
                    tag_at[victim] = tag
                    rrpv[victim] = insert
                    way_hits[victim] = extra_i
                fills += 1
                hit_append(False)
        tel.inc("fills", fills)
        tel.inc("evictions", evictions)
        tel.inc("dead_on_fill", dead)
        return hits

    def telemetry_finalize(self) -> None:
        tel = self._tel
        if tel is None:
            return
        for way_hits in self._way_hits:
            tel.observe_many("resident_line_hits", way_hits)

    def effective_rrpv(self, set_index: int) -> list[int]:
        """Per-way RRPVs for the set's resident ways — for tests."""
        size = len(self._tag_at[set_index])
        if self._packed_ok:
            packed = self._packed[set_index]
            return [(packed >> (RRPV_BITS * w)) & RRPV_MAX for w in range(size)]
        return list(self._rrpv[set_index][:size])


class NaiveSRRIP(NaivePolicy):
    name = "srrip"
    needs_rng = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        self.rrpv = [0] * (num_sets * ways)

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        self.rrpv[set_index * self.ways + way] = 0

    def find_victim(self, set_index: int, u_i: float) -> int:
        base = set_index * self.ways
        rrpv = self.rrpv
        while True:
            for w in range(self.ways):
                if rrpv[base + w] == RRPV_MAX:
                    return w
            for w in range(self.ways):
                rrpv[base + w] += 1

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: int | None = None,
                core_i: int | None = None) -> None:
        self.rrpv[set_index * self.ways + way] = RRPV_INSERT
