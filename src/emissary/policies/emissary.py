"""EMISSARY: Enhanced Miss Awareness replacement (ISCA 2023).

Each line carries a priority bit.  When a miss fills a line, the fill is
a *candidate* for high priority (HP) with probability ``1 / prob_inv``
(the paper's pseudo-random 1/P selection); candidacy succeeds only while
the set holds fewer than ``hp_threshold`` HP lines.  Victim selection is
two-class LRU: prefer the LRU line among *low-priority* lines, but once
the set is saturated (``hp_count >= hp_threshold``) evict the LRU line
among *high-priority* lines instead, so stale protected lines cannot
pin the set forever.  If the preferred class is empty the overall LRU
line is evicted.  Evicting an HP line clears its bit and decrements the
per-set HP count — the count can never exceed the threshold.

Unlike the reference C++ snippets (which reseed ``srand(time(0))`` on
every call — a correctness hazard that makes runs irreproducible and
degenerate within a 1-second window), randomness comes from a single
``numpy.random.Generator`` seeded once per run: the engine pre-generates
one uniform per trace access and policies index it positionally.

HP bookkeeping is strictly per set.  That is what the paper's threshold
means (N of the W ways in a set may be protected), and it is also what
makes set-major batched execution legal: no state is shared across sets.

**Miss awareness.**  The paper's priority signal is *which fills cost
L1I demand misses*.  Standalone (single-level) runs cannot measure that,
so every fill is candidate-eligible — the synthetic assumption.  Under
the L1I -> L2 hierarchy engine every L2 access genuinely is an L1I miss,
and the engine supplies the line's running L1I miss count as the
per-access ``cost`` signal; ``min_l1_misses`` then gates HP candidacy on
*measured* cost (a line must have cost at least that many L1I misses so
far to qualify).  With ``min_l1_misses=1`` the hierarchy reproduces the
paper's binary signal exactly (every L2 fill was an L1I miss); higher
values demand repeat offenders.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from emissary.policies.base import NaivePolicy, PolicyKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.telemetry import Telemetry

DEFAULT_HP_THRESHOLD = 4
DEFAULT_PROB_INV = 32
DEFAULT_MIN_L1_MISSES = 1
DEFAULT_HP_BUDGET = "shared"

#: HP-budget sharing modes under a multi-core shared L2.  ``shared`` is
#: the paper's policy verbatim: one per-set pool of ``hp_threshold``
#: protected ways contended by every core.  ``partitioned`` splits the
#: threshold into per-core sub-budgets (round-robin remainder), so no
#: core can starve another's protection; victim selection is unchanged
#: (two-class over the *total* HP population).
HP_BUDGET_MODES = ("shared", "partitioned")


def _check_params(ways: int, hp_threshold: int, prob_inv: int,
                  min_l1_misses: int, hp_budget: str = DEFAULT_HP_BUDGET,
                  num_cores: int = 1) -> None:
    if hp_threshold < 0:
        raise ValueError("hp_threshold must be >= 0")
    if hp_threshold > ways:
        raise ValueError(f"hp_threshold ({hp_threshold}) cannot exceed ways ({ways})")
    if prob_inv < 1:
        raise ValueError("prob_inv must be >= 1")
    if min_l1_misses < 1:
        raise ValueError("min_l1_misses must be >= 1")
    if hp_budget not in HP_BUDGET_MODES:
        raise ValueError(f"hp_budget must be one of {HP_BUDGET_MODES}, "
                         f"got {hp_budget!r}")
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")


def core_quotas(hp_threshold: int, num_cores: int) -> list[int]:
    """Per-core HP sub-budgets for the partitioned mode: the threshold
    split as evenly as possible (lower core ids absorb the remainder),
    so the quotas always sum to exactly ``hp_threshold``."""
    base, rem = divmod(hp_threshold, num_cores)
    return [base + (1 if c < rem else 0) for c in range(num_cores)]


class EmissaryKernel(PolicyKernel):
    name = "emissary"
    needs_rng = True
    consumes_cost = True

    def __init__(self, num_sets: int, ways: int,
                 hp_threshold: int = DEFAULT_HP_THRESHOLD,
                 prob_inv: int = DEFAULT_PROB_INV,
                 min_l1_misses: int = DEFAULT_MIN_L1_MISSES,
                 hp_budget: str = DEFAULT_HP_BUDGET,
                 num_cores: int = 1,
                 **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        _check_params(ways, hp_threshold, prob_inv, min_l1_misses,
                      hp_budget, num_cores)
        self.hp_threshold = hp_threshold
        self.prob_inv = prob_inv
        self.min_l1_misses = min_l1_misses
        self.hp_budget = hp_budget
        self.num_cores = num_cores
        # One insertion-ordered dict per set mapping tag -> priority bit.
        # A hit pops and reinserts, so dict order is recency order (front =
        # LRU) and the two-class victim search walks it oldest-first.
        self._sets: list[dict[int, int]] = [{} for _ in range(num_sets)]
        self.hp_counts: list[int] = [0] * num_sets
        self.hp_promotions = 0
        self.hp_evictions = 0
        self.partitioned = hp_budget == "partitioned"
        if self.partitioned:
            # Partitioned candidacy needs the issuing core; priority bits
            # stay 0/1 (victim search and all invariants are unchanged) —
            # ownership lives in a parallel per-set tag -> core dict.
            self.consumes_core = True
            self.core_quotas = core_quotas(hp_threshold, num_cores)
            self._owner: list[dict[int, int]] = [{} for _ in range(num_sets)]
            self.hp_by_core: list[list[int]] = [[0] * num_cores
                                                for _ in range(num_sets)]
            # The shared-mode hot loop stays untouched; partitioned runs
            # dispatch through their own twin.
            self.run_set = self._run_set_part  # type: ignore[method-assign]

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        super().attach_telemetry(telemetry)
        if self.partitioned:
            self.run_set = self._run_set_part_tel  # type: ignore[method-assign]
        # Per-set tag -> hits-since-fill, parallel to the priority dicts.
        self._hits_of: list[dict[int, int]] = [{} for _ in range(self.num_sets)]

    def run_set(self, set_index: int, tags: list[int],
                u: Sequence[float] | None,
                rep: Sequence[bool] | None = None,
                cost: Sequence[int] | None = None,
                extra: Sequence[int] | None = None,
                core: Sequence[int] | None = None) -> list[bool]:
        assert u is not None
        d = self._sets[set_index]
        ways = self.ways
        threshold = self.hp_threshold
        min_cost = self.min_l1_misses
        p_hit = 1.0 / self.prob_inv
        hp = self.hp_counts[set_index]
        promotions = 0
        hp_evictions = 0
        hits: list[bool] = []
        hit_append = hits.append
        pop = d.pop
        # Without a measured cost signal every fill is candidate-eligible
        # (the synthetic single-level assumption); with one, eligibility
        # is the measured L1I miss count reaching min_l1_misses.
        if cost is None:
            cost = (min_cost,) * len(tags)
        for tag, u_i, c_i in zip(tags, u, cost):
            prio = pop(tag, -1)
            if prio >= 0:
                d[tag] = prio  # reinsert at the MRU end
                hit_append(True)
            else:
                if len(d) == ways:
                    want = 1 if hp >= threshold else 0
                    victim = -1
                    for vt, vp in d.items():
                        if vp == want:
                            victim = vt
                            break
                    if victim < 0:
                        victim = next(iter(d))  # preferred class empty: overall LRU
                    if pop(victim):
                        hp -= 1
                        hp_evictions += 1
                if c_i >= min_cost and u_i < p_hit and hp < threshold:
                    d[tag] = 1
                    hp += 1
                    promotions += 1
                else:
                    d[tag] = 0
                hit_append(False)
        self.hp_counts[set_index] = hp
        self.hp_promotions += promotions
        self.hp_evictions += hp_evictions
        return hits

    def _run_set_tel(self, set_index: int, tags: list[int],
                     u: Sequence[float] | None,
                     rep: Sequence[bool] | None = None,
                     cost: Sequence[int] | None = None,
                     extra: Sequence[int] | None = None,
                     core: Sequence[int] | None = None) -> list[bool]:
        """Instrumented twin of ``run_set``: identical two-class victim
        search, plus the paper's diagnostic accounting (eviction split by
        priority class, promotions, demotions, dead-on-fill lines)."""
        tel = self._tel
        assert u is not None and tel is not None and extra is not None
        d = self._sets[set_index]
        hits_of = self._hits_of[set_index]
        ways = self.ways
        threshold = self.hp_threshold
        min_cost = self.min_l1_misses
        p_hit = 1.0 / self.prob_inv
        hp = self.hp_counts[set_index]
        promotions = 0
        hp_evictions = 0
        hits: list[bool] = []
        hit_append = hits.append
        pop = d.pop
        observe = tel.observe
        fills = evictions = dead = lp_evictions = 0
        if cost is None:
            cost = (min_cost,) * len(tags)
        for tag, u_i, c_i, extra_i in zip(tags, u, cost, extra):
            prio = pop(tag, -1)
            if prio >= 0:
                d[tag] = prio  # reinsert at the MRU end
                hits_of[tag] += 1 + extra_i
                hit_append(True)
            else:
                if len(d) == ways:
                    want = 1 if hp >= threshold else 0
                    victim = -1
                    for vt, vp in d.items():
                        if vp == want:
                            victim = vt
                            break
                    if victim < 0:
                        victim = next(iter(d))  # preferred class empty: overall LRU
                    victim_hits = hits_of.pop(victim)
                    observe("line_hits", victim_hits)
                    evictions += 1
                    if victim_hits == 0:
                        dead += 1
                    if pop(victim):
                        hp -= 1
                        hp_evictions += 1
                    else:
                        lp_evictions += 1
                if c_i >= min_cost and u_i < p_hit and hp < threshold:
                    d[tag] = 1
                    hp += 1
                    promotions += 1
                else:
                    d[tag] = 0
                hits_of[tag] = extra_i
                fills += 1
                hit_append(False)
        self.hp_counts[set_index] = hp
        self.hp_promotions += promotions
        self.hp_evictions += hp_evictions
        tel.inc("fills", fills)
        tel.inc("evictions", evictions)
        tel.inc("dead_on_fill", dead)
        tel.inc("evictions_hp", hp_evictions)
        tel.inc("evictions_lp", lp_evictions)
        tel.inc("hp_promotions", promotions)
        # A line loses HP protection only by eviction, so demotions are
        # exactly the HP evictions — kept as a named counter so reports
        # and cross-engine parity checks read one canonical name.
        tel.inc("hp_demotions", hp_evictions)
        return hits

    def _run_set_part(self, set_index: int, tags: list[int],
                      u: Sequence[float] | None,
                      rep: Sequence[bool] | None = None,
                      cost: Sequence[int] | None = None,
                      extra: Sequence[int] | None = None,
                      core: Sequence[int] | None = None) -> list[bool]:
        """Partitioned-budget twin of ``run_set``: candidacy is gated by
        the issuing core's sub-budget (``hp_by_core < quota``) instead of
        the shared pool.  Quotas sum to ``hp_threshold``, so the per-set
        total can never exceed the shared bound and victim selection is
        byte-for-byte the same two-class walk."""
        assert u is not None
        d = self._sets[set_index]
        owner = self._owner[set_index]
        hp_by_core = self.hp_by_core[set_index]
        quota = self.core_quotas
        ways = self.ways
        threshold = self.hp_threshold
        min_cost = self.min_l1_misses
        p_hit = 1.0 / self.prob_inv
        hp = self.hp_counts[set_index]
        promotions = 0
        hp_evictions = 0
        hits: list[bool] = []
        hit_append = hits.append
        pop = d.pop
        if cost is None:
            cost = (min_cost,) * len(tags)
        if core is None:
            core = (0,) * len(tags)
        for tag, u_i, c_i, cr in zip(tags, u, cost, core):
            prio = pop(tag, -1)
            if prio >= 0:
                d[tag] = prio  # reinsert at the MRU end
                hit_append(True)
            else:
                if len(d) == ways:
                    want = 1 if hp >= threshold else 0
                    victim = -1
                    for vt, vp in d.items():
                        if vp == want:
                            victim = vt
                            break
                    if victim < 0:
                        victim = next(iter(d))  # preferred class empty: overall LRU
                    if pop(victim):
                        hp -= 1
                        hp_evictions += 1
                        hp_by_core[owner.pop(victim)] -= 1
                # hp_by_core[cr] < quota[cr] implies hp < threshold (the
                # quotas sum to the threshold and every sub-count is
                # bounded by its quota), so no shared-pool check remains.
                if c_i >= min_cost and u_i < p_hit \
                        and hp_by_core[cr] < quota[cr]:
                    d[tag] = 1
                    owner[tag] = cr
                    hp_by_core[cr] += 1
                    hp += 1
                    promotions += 1
                else:
                    d[tag] = 0
                hit_append(False)
        self.hp_counts[set_index] = hp
        self.hp_promotions += promotions
        self.hp_evictions += hp_evictions
        return hits

    def _run_set_part_tel(self, set_index: int, tags: list[int],
                          u: Sequence[float] | None,
                          rep: Sequence[bool] | None = None,
                          cost: Sequence[int] | None = None,
                          extra: Sequence[int] | None = None,
                          core: Sequence[int] | None = None) -> list[bool]:
        """Instrumented twin of ``_run_set_part``."""
        tel = self._tel
        assert u is not None and tel is not None and extra is not None
        d = self._sets[set_index]
        owner = self._owner[set_index]
        hp_by_core = self.hp_by_core[set_index]
        quota = self.core_quotas
        hits_of = self._hits_of[set_index]
        ways = self.ways
        threshold = self.hp_threshold
        min_cost = self.min_l1_misses
        p_hit = 1.0 / self.prob_inv
        hp = self.hp_counts[set_index]
        promotions = 0
        hp_evictions = 0
        hits: list[bool] = []
        hit_append = hits.append
        pop = d.pop
        observe = tel.observe
        fills = evictions = dead = lp_evictions = 0
        if cost is None:
            cost = (min_cost,) * len(tags)
        if core is None:
            core = (0,) * len(tags)
        for tag, u_i, c_i, extra_i, cr in zip(tags, u, cost, extra, core):
            prio = pop(tag, -1)
            if prio >= 0:
                d[tag] = prio  # reinsert at the MRU end
                hits_of[tag] += 1 + extra_i
                hit_append(True)
            else:
                if len(d) == ways:
                    want = 1 if hp >= threshold else 0
                    victim = -1
                    for vt, vp in d.items():
                        if vp == want:
                            victim = vt
                            break
                    if victim < 0:
                        victim = next(iter(d))  # preferred class empty: overall LRU
                    victim_hits = hits_of.pop(victim)
                    observe("line_hits", victim_hits)
                    evictions += 1
                    if victim_hits == 0:
                        dead += 1
                    if pop(victim):
                        hp -= 1
                        hp_evictions += 1
                        hp_by_core[owner.pop(victim)] -= 1
                    else:
                        lp_evictions += 1
                if c_i >= min_cost and u_i < p_hit \
                        and hp_by_core[cr] < quota[cr]:
                    d[tag] = 1
                    owner[tag] = cr
                    hp_by_core[cr] += 1
                    hp += 1
                    promotions += 1
                else:
                    d[tag] = 0
                hits_of[tag] = extra_i
                fills += 1
                hit_append(False)
        self.hp_counts[set_index] = hp
        self.hp_promotions += promotions
        self.hp_evictions += hp_evictions
        tel.inc("fills", fills)
        tel.inc("evictions", evictions)
        tel.inc("dead_on_fill", dead)
        tel.inc("evictions_hp", hp_evictions)
        tel.inc("evictions_lp", lp_evictions)
        tel.inc("hp_promotions", promotions)
        tel.inc("hp_demotions", hp_evictions)
        return hits

    def telemetry_finalize(self) -> None:
        tel = self._tel
        if tel is None:
            return
        for hits_of in self._hits_of:
            tel.observe_many("resident_line_hits", hits_of.values())
        tel.observe_many("hp_set_occupancy", self.hp_counts)
        tel.inc("hp_lines_final", sum(self.hp_counts))

    def set_contents(self, set_index: int) -> list[tuple]:
        """(tag, priority) pairs in recency order (LRU first) — for tests."""
        return list(self._sets[set_index].items())

    def extra_stats(self) -> dict[str, Any]:
        stats = {
            "hp_threshold": self.hp_threshold,
            "prob_inv": self.prob_inv,
            "min_l1_misses": self.min_l1_misses,
            "hp_promotions": self.hp_promotions,
            "hp_evictions": self.hp_evictions,
            "hp_lines_final": sum(self.hp_counts),
        }
        if self.partitioned:
            stats["hp_budget"] = self.hp_budget
            stats["hp_lines_final_by_core"] = [
                sum(per_set[c] for per_set in self.hp_by_core)
                for c in range(self.num_cores)]
        return stats


class NaiveEmissary(NaivePolicy):
    name = "emissary"
    needs_rng = True

    def __init__(self, num_sets: int, ways: int,
                 hp_threshold: int = DEFAULT_HP_THRESHOLD,
                 prob_inv: int = DEFAULT_PROB_INV,
                 min_l1_misses: int = DEFAULT_MIN_L1_MISSES,
                 hp_budget: str = DEFAULT_HP_BUDGET,
                 num_cores: int = 1,
                 **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        _check_params(ways, hp_threshold, prob_inv, min_l1_misses,
                      hp_budget, num_cores)
        self.hp_threshold = hp_threshold
        self.prob_inv = prob_inv
        self.min_l1_misses = min_l1_misses
        self.hp_budget = hp_budget
        self.num_cores = num_cores
        self.timestamps = [0] * (num_sets * ways)
        self.priority = [0] * (num_sets * ways)
        self.hp_counts = [0] * num_sets
        self.hp_promotions = 0
        self.evictions_hp = 0
        self.evictions_lp = 0
        self._clock = 1
        self.partitioned = hp_budget == "partitioned"
        if self.partitioned:
            self.core_quotas = core_quotas(hp_threshold, num_cores)
            # Owning core per (set, way); -1 marks low-priority lines.
            self.owner = [-1] * (num_sets * ways)
            self.hp_by_core = [[0] * num_cores for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self.timestamps[set_index * self.ways + way] = self._clock
        self._clock += 1

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        self._touch(set_index, way)

    def find_victim(self, set_index: int, u_i: float) -> int:
        base = set_index * self.ways
        ts = self.timestamps
        prio = self.priority
        want = 1 if self.hp_counts[set_index] >= self.hp_threshold else 0
        victim = -1
        best = None
        for w in range(self.ways):
            if prio[base + w] == want and (best is None or ts[base + w] < best):
                best = ts[base + w]
                victim = w
        if victim < 0:  # preferred class empty: overall LRU
            best = ts[base]
            victim = 0
            for w in range(1, self.ways):
                if ts[base + w] < best:
                    best = ts[base + w]
                    victim = w
        return victim

    def replaced(self, set_index: int, way: int) -> None:
        idx = set_index * self.ways + way
        self.timestamps[idx] = 0
        if self.priority[idx]:
            self.priority[idx] = 0
            self.hp_counts[set_index] -= 1
            self.evictions_hp += 1
            if self.partitioned:
                self.hp_by_core[set_index][self.owner[idx]] -= 1
                self.owner[idx] = -1
        else:
            self.evictions_lp += 1

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: int | None = None,
                core_i: int | None = None) -> None:
        idx = set_index * self.ways + way
        eligible = cost_i is None or cost_i >= self.min_l1_misses
        if self.partitioned:
            cr = 0 if core_i is None else core_i
            if eligible and u_i < 1.0 / self.prob_inv \
                    and self.hp_by_core[set_index][cr] < self.core_quotas[cr]:
                self.priority[idx] = 1
                self.owner[idx] = cr
                self.hp_by_core[set_index][cr] += 1
                self.hp_counts[set_index] += 1
                self.hp_promotions += 1
            else:
                self.priority[idx] = 0
        elif eligible and u_i < 1.0 / self.prob_inv \
                and self.hp_counts[set_index] < self.hp_threshold:
            self.priority[idx] = 1
            self.hp_counts[set_index] += 1
            self.hp_promotions += 1
        else:
            self.priority[idx] = 0
        self._touch(set_index, way)

    def telemetry_finalize(self, telemetry: "Telemetry", prefix: str = "") -> None:
        telemetry.inc(prefix + "evictions_hp", self.evictions_hp)
        telemetry.inc(prefix + "evictions_lp", self.evictions_lp)
        telemetry.inc(prefix + "hp_promotions", self.hp_promotions)
        telemetry.inc(prefix + "hp_demotions", self.evictions_hp)
        telemetry.observe_many(prefix + "hp_set_occupancy", self.hp_counts)
        telemetry.inc(prefix + "hp_lines_final", sum(self.hp_counts))
