"""Random replacement.

The victim way is ``int(u_i * ways)`` where ``u_i`` is the pre-generated
uniform for the triggering access (see ``policies.base``).  Cold fills go
to the lowest-index invalid way in both implementations, so physical way
positions — and therefore every subsequent random victim choice — line
up exactly between the batched and naive engines.  The batched kernel
tracks residency with a tag -> way dict plus a way -> tag list, keeping
lookup, eviction, and fill all O(1).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from emissary.policies.base import NaivePolicy, PolicyKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.telemetry import Telemetry


class RandomKernel(PolicyKernel):
    name = "random"
    needs_rng = True

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        self._ways_of: list[dict[int, int]] = [{} for _ in range(num_sets)]
        self._tag_at: list[list[int]] = [[] for _ in range(num_sets)]

    def run_set(self, set_index: int, tags: list[int],
                u: Sequence[float] | None,
                rep: Sequence[bool] | None = None,
                cost: Sequence[int] | None = None,
                extra: Sequence[int] | None = None,
                core: Sequence[int] | None = None) -> list[bool]:
        assert u is not None
        ways_of = self._ways_of[set_index]
        tag_at = self._tag_at[set_index]
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        for tag, u_i in zip(tags, u):
            if tag in ways_of:
                hit_append(True)
            else:
                size = len(tag_at)
                if size < ways:
                    ways_of[tag] = size
                    tag_at.append(tag)
                else:
                    victim = int(u_i * ways)
                    del ways_of[tag_at[victim]]
                    ways_of[tag] = victim
                    tag_at[victim] = tag
                hit_append(False)
        return hits

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        super().attach_telemetry(telemetry)
        # Per-set, per-way hit counts, parallel to ``_tag_at``.
        self._way_hits: list[list[int]] = [[] for _ in range(self.num_sets)]

    def _run_set_tel(self, set_index: int, tags: list[int],
                     u: Sequence[float] | None,
                     rep: Sequence[bool] | None = None,
                     cost: Sequence[int] | None = None,
                     extra: Sequence[int] | None = None,
                     core: Sequence[int] | None = None) -> list[bool]:
        """Instrumented twin of ``run_set`` with per-way hit accounting."""
        tel = self._tel
        assert u is not None and tel is not None and extra is not None
        ways_of = self._ways_of[set_index]
        tag_at = self._tag_at[set_index]
        way_hits = self._way_hits[set_index]
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        observe = tel.observe
        fills = evictions = dead = 0
        for tag, u_i, extra_i in zip(tags, u, extra):
            way = ways_of.get(tag)
            if way is not None:
                way_hits[way] += 1 + extra_i
                hit_append(True)
            else:
                size = len(tag_at)
                if size < ways:
                    ways_of[tag] = size
                    tag_at.append(tag)
                    way_hits.append(extra_i)
                else:
                    victim = int(u_i * ways)
                    victim_hits = way_hits[victim]
                    observe("line_hits", victim_hits)
                    evictions += 1
                    if victim_hits == 0:
                        dead += 1
                    del ways_of[tag_at[victim]]
                    ways_of[tag] = victim
                    tag_at[victim] = tag
                    way_hits[victim] = extra_i
                fills += 1
                hit_append(False)
        tel.inc("fills", fills)
        tel.inc("evictions", evictions)
        tel.inc("dead_on_fill", dead)
        return hits

    def telemetry_finalize(self) -> None:
        tel = self._tel
        if tel is None:
            return
        for way_hits in self._way_hits:
            tel.observe_many("resident_line_hits", way_hits)


class NaiveRandom(NaivePolicy):
    name = "random"
    needs_rng = True

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        pass

    def find_victim(self, set_index: int, u_i: float) -> int:
        return int(u_i * self.ways)

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: int | None = None,
                core_i: int | None = None) -> None:
        pass
