"""Random replacement.

The victim way is ``int(u_i * ways)`` where ``u_i`` is the pre-generated
uniform for the triggering access (see ``policies.base``).  Cold fills go
to the lowest-index invalid way in both implementations, so physical way
positions — and therefore every subsequent random victim choice — line
up exactly between the batched and naive engines.  The batched kernel
tracks residency with a tag -> way dict plus a way -> tag list, keeping
lookup, eviction, and fill all O(1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from emissary.policies.base import NaivePolicy, PolicyKernel


class RandomKernel(PolicyKernel):
    name = "random"
    needs_rng = True

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        self._ways_of: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self._tag_at: List[List[int]] = [[] for _ in range(num_sets)]

    def run_set(self, set_index: int, tags: List[int],
                u: Optional[Sequence[float]],
                rep: Optional[Sequence[bool]] = None,
                cost: Optional[Sequence[int]] = None) -> List[bool]:
        assert u is not None
        ways_of = self._ways_of[set_index]
        tag_at = self._tag_at[set_index]
        ways = self.ways
        hits: List[bool] = []
        hit_append = hits.append
        for tag, u_i in zip(tags, u):
            if tag in ways_of:
                hit_append(True)
            else:
                size = len(tag_at)
                if size < ways:
                    ways_of[tag] = size
                    tag_at.append(tag)
                else:
                    victim = int(u_i * ways)
                    del ways_of[tag_at[victim]]
                    ways_of[tag] = victim
                    tag_at[victim] = tag
                hit_append(False)
        return hits


class NaiveRandom(NaivePolicy):
    name = "random"
    needs_rng = True

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        pass

    def find_victim(self, set_index: int, u_i: float) -> int:
        return int(u_i * self.ways)

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: Optional[int] = None) -> None:
        pass
