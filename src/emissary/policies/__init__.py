"""Replacement policy registry.

Each policy name maps to a (batched kernel, naive per-access) pair with
identical semantics; the cross-check test suite asserts the two produce
bit-identical hit/miss sequences on every trace family.
"""

from __future__ import annotations

from typing import Any

from emissary.policies.base import NaivePolicy, PolicyKernel
from emissary.policies.emissary import EmissaryKernel, NaiveEmissary
from emissary.policies.lru import LRUKernel, NaiveLRU
from emissary.policies.random_policy import NaiveRandom, RandomKernel
from emissary.policies.srrip import NaiveSRRIP, SRRIPKernel

REGISTRY: dict[str, tuple[type[PolicyKernel], type[NaivePolicy]]] = {
    "lru": (LRUKernel, NaiveLRU),
    "random": (RandomKernel, NaiveRandom),
    "srrip": (SRRIPKernel, NaiveSRRIP),
    "emissary": (EmissaryKernel, NaiveEmissary),
}

POLICY_NAMES = tuple(REGISTRY)

#: Per-policy parameter schemas: name -> {param -> expected type}.  This
#: is what :class:`emissary.api.PolicySpec` validates against, so a
#: typo'd or mistyped parameter fails at spec construction instead of
#: being silently swallowed by a ``**params`` sink.
PARAM_SCHEMAS: dict[str, dict[str, type]] = {
    "lru": {},
    "random": {},
    "srrip": {},
    "emissary": {"hp_threshold": int, "prob_inv": int, "min_l1_misses": int,
                 "hp_budget": str},
}


def make_kernel(name: str, num_sets: int, ways: int, **params: Any) -> PolicyKernel:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][0](num_sets, ways, **params)


def make_naive(name: str, num_sets: int, ways: int, **params: Any) -> NaivePolicy:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][1](num_sets, ways, **params)


def policy_needs_rng(name: str) -> bool:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][0].needs_rng


def policy_consumes_cost(name: str) -> bool:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][0].consumes_cost


__all__ = [
    "REGISTRY",
    "POLICY_NAMES",
    "PARAM_SCHEMAS",
    "NaivePolicy",
    "PolicyKernel",
    "make_kernel",
    "make_naive",
    "policy_needs_rng",
    "policy_consumes_cost",
]
