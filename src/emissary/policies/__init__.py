"""Replacement policy registry.

Each policy name maps to a (batched kernel, naive per-access) pair with
identical semantics; the cross-check test suite asserts the two produce
bit-identical hit/miss sequences on every trace family.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Type

from emissary.policies.base import NaivePolicy, PolicyKernel
from emissary.policies.emissary import EmissaryKernel, NaiveEmissary
from emissary.policies.lru import LRUKernel, NaiveLRU
from emissary.policies.random_policy import NaiveRandom, RandomKernel
from emissary.policies.srrip import NaiveSRRIP, SRRIPKernel

REGISTRY: Dict[str, Tuple[Type[PolicyKernel], Type[NaivePolicy]]] = {
    "lru": (LRUKernel, NaiveLRU),
    "random": (RandomKernel, NaiveRandom),
    "srrip": (SRRIPKernel, NaiveSRRIP),
    "emissary": (EmissaryKernel, NaiveEmissary),
}

POLICY_NAMES = tuple(REGISTRY)


def make_kernel(name: str, num_sets: int, ways: int, **params: Any) -> PolicyKernel:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][0](num_sets, ways, **params)


def make_naive(name: str, num_sets: int, ways: int, **params: Any) -> NaivePolicy:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][1](num_sets, ways, **params)


def policy_needs_rng(name: str) -> bool:
    if name not in REGISTRY:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name][0].needs_rng


__all__ = [
    "REGISTRY",
    "POLICY_NAMES",
    "NaivePolicy",
    "PolicyKernel",
    "make_kernel",
    "make_naive",
    "policy_needs_rng",
]
