"""Policy kernel interfaces.

Every replacement policy ships two implementations with identical
semantics:

- a :class:`PolicyKernel` used by the batched set-major engine.  The
  engine hands it one contiguous chunk of accesses per set; the kernel
  runs a tight Python loop over plain lists (no per-access dispatch,
  no NumPy scalar indexing) and returns the hit/miss outcomes.
- a :class:`NaivePolicy` used by the per-access reference engine,
  mirroring the zsim-style ``update / find_victim / replaced`` API.

Randomness is never drawn inside a kernel.  Policies that need it set
``needs_rng = True`` and receive a pre-generated uniform in [0, 1) per
access, indexed by the access's global trace position.  This makes the
batched (set-major) and naive (trace-order) executions consume random
values identically, so outcomes are bit-identical and reproducible from
a single ``--seed``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from emissary.telemetry import Telemetry


class PolicyKernel:
    """Batched set-major kernel: processes one set's access chunk at a time.

    Telemetry is opt-in per instance: :meth:`attach_telemetry` swaps
    ``run_set`` for the kernel's instrumented variant (``_run_set_tel``),
    so the default fast loops carry **no** telemetry branches — disabled
    telemetry is structurally free, not just cheap.
    """

    name: str = "base"
    needs_rng: bool = False
    #: Set by :meth:`attach_telemetry`; instrumented loops record into it.
    _tel: "Telemetry" | None = None
    #: True if the kernel must know whether an access is immediately
    #: re-referenced (same line, no intervening access) — required for
    #: MRU run collapsing to stay exact when a *hit on the fill's
    #: successor* changes state (e.g. SRRIP promotes RRPV to 0).
    needs_repeat_flags: bool = False
    #: True if the kernel uses the per-access cost signal (the running
    #: L1I miss count for the access's line, supplied by the hierarchy
    #: engine).  Cost-blind kernels never receive the array.
    consumes_cost: bool = False
    #: True if the kernel uses the per-access core id (which L1I
    #: front-end issued the access, supplied by the multi-core hierarchy
    #: engine).  Core-blind kernels never receive the array.
    consumes_core: bool = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.params = params

    def run_set(self, set_index: int, tags: list[int],
                u: Sequence[float] | None,
                rep: Sequence[bool] | None = None,
                cost: Sequence[int] | None = None,
                extra: Sequence[int] | None = None,
                core: Sequence[int] | None = None) -> list[bool]:
        """Simulate ``tags`` (in access order) against set ``set_index``.

        ``u`` is the per-access uniform slice aligned with ``tags`` (None
        when ``needs_rng`` is False).  ``rep`` (only when
        ``needs_repeat_flags``) marks accesses whose line is re-accessed
        immediately afterwards.  ``cost`` (only when ``consumes_cost``
        and the caller measured one) is the per-access cost signal —
        in the L1I -> L2 hierarchy, the line's running L1I miss count.
        ``extra`` is only supplied to instrumented kernels: the number of
        MRU-collapsed hits folded into each access, so per-line hit
        accounting stays exact under run collapsing.  ``core`` (only when
        ``consumes_core``) is the per-access issuing core id; None means
        a single-core caller (treated as core 0).
        Returns one hit/miss bool per access.
        """
        raise NotImplementedError

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Enable instrumentation: rebind ``run_set`` to ``_run_set_tel``.

        Must be called before the first access (kernels may allocate
        accounting state here).  Subclasses extend it; every instrumented
        loop is semantically identical to its fast twin — the telemetry
        test suite asserts bit-identical hit vectors either way.
        """
        self._tel = telemetry
        self.run_set = self._run_set_tel  # type: ignore[method-assign]

    def _run_set_tel(self, set_index: int, tags: list[int],
                     u: Sequence[float] | None,
                     rep: Sequence[bool] | None = None,
                     cost: Sequence[int] | None = None,
                     extra: Sequence[int] | None = None,
                     core: Sequence[int] | None = None) -> list[bool]:
        raise NotImplementedError(
            f"{type(self).__name__} has no instrumented loop")

    def telemetry_finalize(self) -> None:
        """End-of-run accounting (resident-line histograms, occupancy)."""

    def extra_stats(self) -> dict[str, Any]:
        """Policy-specific counters folded into the simulation result."""
        return {}


class NaivePolicy:
    """Per-access policy with flat preallocated arrays (zsim-style API).

    The reference engine resolves the tag lookup itself and calls:
    ``on_hit`` for hits, ``find_victim`` + ``replaced`` when a full set
    must evict, and ``on_fill`` after installing the new line.
    """

    name: str = "base"
    needs_rng: bool = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.params = params

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        raise NotImplementedError

    def find_victim(self, set_index: int, u_i: float) -> int:
        raise NotImplementedError

    def replaced(self, set_index: int, way: int) -> None:
        """Victim bookkeeping before the new line is installed."""

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: int | None = None,
                core_i: int | None = None) -> None:
        """Install bookkeeping.  ``cost_i`` is the access's cost signal
        (line's running L1I miss count) or None when unmeasured;
        ``core_i`` the issuing core id or None for single-core callers."""
        raise NotImplementedError

    def telemetry_finalize(self, telemetry: "Telemetry", prefix: str = "") -> None:
        """Dump policy-specific counters into ``telemetry``.

        The reference engines do the generic line-lifetime accounting
        themselves (they resolve tags and victims); this hook contributes
        only what the policy alone knows (e.g. EMISSARY's priority-class
        eviction split and per-set HP occupancy).  ``prefix`` namespaces
        the names in hierarchy runs (``l2.``)."""
