"""Policy kernel interfaces.

Every replacement policy ships two implementations with identical
semantics:

- a :class:`PolicyKernel` used by the batched set-major engine.  The
  engine hands it one contiguous chunk of accesses per set; the kernel
  runs a tight Python loop over plain lists (no per-access dispatch,
  no NumPy scalar indexing) and returns the hit/miss outcomes.
- a :class:`NaivePolicy` used by the per-access reference engine,
  mirroring the zsim-style ``update / find_victim / replaced`` API.

Randomness is never drawn inside a kernel.  Policies that need it set
``needs_rng = True`` and receive a pre-generated uniform in [0, 1) per
access, indexed by the access's global trace position.  This makes the
batched (set-major) and naive (trace-order) executions consume random
values identically, so outcomes are bit-identical and reproducible from
a single ``--seed``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class PolicyKernel:
    """Batched set-major kernel: processes one set's access chunk at a time."""

    name: str = "base"
    needs_rng: bool = False
    #: True if the kernel must know whether an access is immediately
    #: re-referenced (same line, no intervening access) — required for
    #: MRU run collapsing to stay exact when a *hit on the fill's
    #: successor* changes state (e.g. SRRIP promotes RRPV to 0).
    needs_repeat_flags: bool = False
    #: True if the kernel uses the per-access cost signal (the running
    #: L1I miss count for the access's line, supplied by the hierarchy
    #: engine).  Cost-blind kernels never receive the array.
    consumes_cost: bool = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.params = params

    def run_set(self, set_index: int, tags: List[int],
                u: Optional[Sequence[float]],
                rep: Optional[Sequence[bool]] = None,
                cost: Optional[Sequence[int]] = None) -> List[bool]:
        """Simulate ``tags`` (in access order) against set ``set_index``.

        ``u`` is the per-access uniform slice aligned with ``tags`` (None
        when ``needs_rng`` is False).  ``rep`` (only when
        ``needs_repeat_flags``) marks accesses whose line is re-accessed
        immediately afterwards.  ``cost`` (only when ``consumes_cost``
        and the caller measured one) is the per-access cost signal —
        in the L1I -> L2 hierarchy, the line's running L1I miss count.
        Returns one hit/miss bool per access.
        """
        raise NotImplementedError

    def extra_stats(self) -> Dict[str, Any]:
        """Policy-specific counters folded into the simulation result."""
        return {}


class NaivePolicy:
    """Per-access policy with flat preallocated arrays (zsim-style API).

    The reference engine resolves the tag lookup itself and calls:
    ``on_hit`` for hits, ``find_victim`` + ``replaced`` when a full set
    must evict, and ``on_fill`` after installing the new line.
    """

    name: str = "base"
    needs_rng: bool = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.params = params

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        raise NotImplementedError

    def find_victim(self, set_index: int, u_i: float) -> int:
        raise NotImplementedError

    def replaced(self, set_index: int, way: int) -> None:
        """Victim bookkeeping before the new line is installed."""

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: Optional[int] = None) -> None:
        """Install bookkeeping.  ``cost_i`` is the access's cost signal
        (line's running L1I miss count) or None when unmeasured."""
        raise NotImplementedError
