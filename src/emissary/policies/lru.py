"""Least-recently-used replacement.

The batched kernel keeps one insertion-ordered dict per set (Python
dicts preserve insertion order): a hit pops and reinserts the tag, so
dict order *is* recency order and the LRU victim is simply the first
key.  Every operation on the hot path is a single O(1) hash op — no
linear scans, no exceptions.  The naive implementation uses an explicit
monotonic timestamp per line, exactly like the zsim ``LRUReplPolicy``;
timestamps are unique, so both orderings select identical victims.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from emissary.policies.base import NaivePolicy, PolicyKernel

_MISS = object()


class LRUKernel(PolicyKernel):
    name = "lru"
    needs_rng = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        self._sets: list[dict[int, None]] = [{} for _ in range(num_sets)]

    def run_set(self, set_index: int, tags: list[int],
                u: Sequence[float] | None,
                rep: Sequence[bool] | None = None,
                cost: Sequence[int] | None = None,
                extra: Sequence[int] | None = None,
                core: Sequence[int] | None = None) -> list[bool]:
        d = self._sets[set_index]
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        pop = d.pop
        for tag in tags:
            if pop(tag, _MISS) is _MISS:
                if len(d) == ways:
                    del d[next(iter(d))]
                d[tag] = None
                hit_append(False)
            else:
                d[tag] = None  # reinsert at the MRU end
                hit_append(True)
        return hits

    def _run_set_tel(self, set_index: int, tags: list[int],
                     u: Sequence[float] | None,
                     rep: Sequence[bool] | None = None,
                     cost: Sequence[int] | None = None,
                     extra: Sequence[int] | None = None,
                     core: Sequence[int] | None = None) -> list[bool]:
        """Instrumented twin of ``run_set``: identical replacement
        decisions, with dict values repurposed as per-line hit counts."""
        tel = self._tel
        assert tel is not None and extra is not None
        d = self._sets[set_index]
        ways = self.ways
        hits: list[bool] = []
        hit_append = hits.append
        pop = d.pop
        observe = tel.observe
        fills = evictions = dead = 0
        for tag, extra_i in zip(tags, extra):
            count = pop(tag, -1)
            if count < 0:
                if len(d) == ways:
                    victim_hits = pop(next(iter(d)))
                    observe("line_hits", victim_hits)
                    evictions += 1
                    if victim_hits == 0:
                        dead += 1
                d[tag] = extra_i  # collapsed re-touches hit the fresh fill
                fills += 1
                hit_append(False)
            else:
                d[tag] = count + 1 + extra_i  # reinsert at the MRU end
                hit_append(True)
        tel.inc("fills", fills)
        tel.inc("evictions", evictions)
        tel.inc("dead_on_fill", dead)
        return hits

    def telemetry_finalize(self) -> None:
        tel = self._tel
        if tel is None:
            return
        for d in self._sets:
            tel.observe_many("resident_line_hits", d.values())


class NaiveLRU(NaivePolicy):
    name = "lru"
    needs_rng = False

    def __init__(self, num_sets: int, ways: int, **params: Any) -> None:
        super().__init__(num_sets, ways, **params)
        self.timestamps = [0] * (num_sets * ways)
        self._clock = 1

    def _touch(self, set_index: int, way: int) -> None:
        self.timestamps[set_index * self.ways + way] = self._clock
        self._clock += 1

    def on_hit(self, set_index: int, way: int, access_index: int) -> None:
        self._touch(set_index, way)

    def find_victim(self, set_index: int, u_i: float) -> int:
        base = set_index * self.ways
        ts = self.timestamps
        victim = 0
        best = ts[base]
        for w in range(1, self.ways):
            t = ts[base + w]
            if t < best:
                best = t
                victim = w
        return victim

    def replaced(self, set_index: int, way: int) -> None:
        self.timestamps[set_index * self.ways + way] = 0

    def on_fill(self, set_index: int, way: int, access_index: int, u_i: float,
                cost_i: int | None = None,
                core_i: int | None = None) -> None:
        self._touch(set_index, way)
