"""Content-keyed on-disk results cache with integrity guarding.

Layout: ``.results_cache/<key>.json`` where ``key`` is the SHA-256 of
the canonical (sorted-keys, compact) JSON encoding of the configuration.
Each entry stores the config it was computed from, the result payload,
and a checksum over the payload.  Loading validates the schema, the
filename/key binding, and the checksum; anything corrupt is skipped with
a warning (and the sweep recomputes) instead of crashing the run.

Config fields whose name starts with ``_`` are *advisory*: they are
stored with the entry but excluded from the content key.  File-backed
trace specs use this for the trace's on-disk location
(``params["_path"]``) — the key binds to the file's SHA-256, so moving
or renaming the file never invalidates cached results.

Stores are concurrency-safe: each writer stages the entry under its own
unique temp name and atomically renames it into place, so concurrent
workers publishing the same key can never interleave writes into one
temp file and expose torn JSON.  Loads and LRU eviction are audited
against cross-process check-then-use races too: a load never pre-checks
existence (it reads and treats "vanished" as a miss), and an evictor
re-validates an entry's recency immediately before unlinking so a key
republished or touched after the directory scan is not evicted on stale
information.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import uuid
from pathlib import Path
from typing import Any

from emissary.wire import WIRE_SCHEMA_KEY

logger = logging.getLogger(__name__)

DEFAULT_CACHE_DIR = ".results_cache"
SCHEMA_VERSION = 1

_REQUIRED_FIELDS = {
    "schema_version": int,
    "key": str,
    "config": dict,
    "result": dict,
    "checksum": str,
}


def canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _as_config_dict(config: Any) -> dict[str, Any]:
    """Accept a plain dict or anything with a canonical ``to_dict``
    encoding (e.g. :class:`emissary.api.SimRequest`)."""
    if isinstance(config, dict):
        return config
    to_dict = getattr(config, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise TypeError(f"config must be a dict or provide to_dict(), "
                    f"got {type(config).__name__}")


def strip_advisory(obj: Any) -> Any:
    """Drop dict keys that are metadata, not content, recursively:
    ``_``-prefixed advisory keys (location hints) and the wire
    ``schema_version`` stamp (layout versioning — the same request
    encoded under any wire version must keep one cache key, and every
    key minted before versioning existed must stay byte-identical)."""
    if isinstance(obj, dict):
        return {k: strip_advisory(v) for k, v in obj.items()
                if not k.startswith("_") and k != WIRE_SCHEMA_KEY}
    if isinstance(obj, list):
        return [strip_advisory(v) for v in obj]
    return obj


def config_key(config: Any) -> str:
    canonical = canonical_json(strip_advisory(_as_config_dict(config)))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _result_checksum(result: dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


class ResultsCache:
    def __init__(self, cache_dir: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.cache_dir = Path(cache_dir)
        # Lifetime load outcomes for this handle; the sweep's run report
        # surfaces them as the results-cache hit/miss counts.
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Load outcomes since construction: ``{"hits": ..., "misses": ...}``
        (a corrupt or mismatched entry counts as a miss)."""
        return {"hits": self.hits, "misses": self.misses}

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _validate(self, entry: Any, key: str, path: Path) -> dict[str, Any] | None:
        if not isinstance(entry, dict):
            logger.warning("results cache: %s is not a JSON object; skipping", path)
            return None
        for name, typ in _REQUIRED_FIELDS.items():
            if not isinstance(entry.get(name), typ):
                logger.warning("results cache: %s missing/invalid field %r; skipping", path, name)
                return None
        if entry["schema_version"] != SCHEMA_VERSION:
            logger.warning("results cache: %s has schema_version %r (want %d); skipping",
                           path, entry["schema_version"], SCHEMA_VERSION)
            return None
        if entry["key"] != key:
            logger.warning("results cache: %s key mismatch (stored %s); skipping",
                           path, entry["key"][:16])
            return None
        if entry["key"] != config_key(entry["config"]):
            logger.warning("results cache: %s config does not hash to its key; skipping", path)
            return None
        if entry["checksum"] != _result_checksum(entry["result"]):
            logger.warning("results cache: %s result checksum mismatch; skipping", path)
            return None
        return entry["result"]

    def load(self, config: Any) -> dict[str, Any] | None:
        """Return the cached result for ``config`` (a dict or a
        :class:`~emissary.api.SimRequest`), or None (corrupt => warn + None)."""
        key = config_key(config)
        path = self._path(key)
        # No exists() pre-check: that would be a check-then-use race with
        # concurrent evictors (the entry can vanish between the two
        # calls).  Read directly and treat "not there" as an ordinary
        # miss — it is one, whether the entry never existed or a
        # concurrent eviction just removed it.
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("results cache: failed to read %s (%s); skipping", path, exc)
            self.misses += 1
            return None
        result = self._validate(entry, key, path)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def store(self, config: Any, result: dict[str, Any]) -> Path:
        config = _as_config_dict(config)
        key = config_key(config)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "config": config,
            "result": result,
            "checksum": _result_checksum(result),
        }
        path = self._path(key)
        # Unique per-writer staging name: a shared tmp path would let two
        # workers storing the same key interleave writes and publish torn
        # JSON.  pid + uuid keeps names unique across processes and
        # threads; the final rename is the atomic publish either way.
        tmp = path.with_name(f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            tmp.write_text(json.dumps(entry, indent=1, sort_keys=True))
            tmp.replace(path)  # atomic publish: readers never see partial JSON
        finally:
            tmp.unlink(missing_ok=True)
        return path


class BudgetedResultsCache(ResultsCache):
    """A :class:`ResultsCache` bounded by an LRU byte budget.

    A long-lived server accretes cache entries forever; this wrapper
    keeps the on-disk footprint under ``budget_bytes`` by evicting the
    least-recently-*used* entries after every store.  Recency is the
    entry file's mtime: :meth:`load` touches the file on a hit, so a
    hot entry survives however old its original store was.  ``None``
    budget disables eviction (plain unbounded behaviour).

    Evictions are observable: the ``evictions`` attribute counts them
    for this handle's lifetime, and when a telemetry registry is
    attached each eviction also bumps the ``serve.cache_evictions``
    counter (and ``serve.cache_evicted_bytes`` by the entry size).
    """

    def __init__(self, cache_dir: str | Path = DEFAULT_CACHE_DIR,
                 budget_bytes: int | None = None,
                 telemetry: Any = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        super().__init__(cache_dir)
        self.budget_bytes = budget_bytes
        self.telemetry = telemetry
        self.evictions = 0

    def load(self, config: Any) -> dict[str, Any] | None:
        result = super().load(config)
        if result is not None:
            try:
                os.utime(self._path(config_key(config)))  # LRU touch
            except OSError as exc:
                # A concurrent eviction may have unlinked it; the result
                # is already in hand, so recency bookkeeping is best-effort.
                logger.debug("results cache: LRU touch failed (%s)", exc)
        return result

    def store(self, config: Any, result: dict[str, Any]) -> Path:
        path = super().store(config, result)
        self._enforce_budget(keep=path)
        return path

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries (bytes)."""
        return sum(size for _, size, _ in self._entries())

    def _entries(self) -> list[tuple[float, int, Path]]:
        entries: list[tuple[float, int, Path]] = []
        for path in self.cache_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError as exc:  # raced with another evictor
                logger.debug("results cache: stat failed for %s (%s)", path, exc)
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _enforce_budget(self, keep: Path) -> None:
        """Evict least-recently-used entries until under budget.

        The just-stored entry (``keep``) is never evicted — even when it
        alone exceeds the budget, the caller must be able to read back
        what it just wrote; the *next* store will displace it.
        """
        if self.budget_bytes is None:
            return
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.budget_bytes:
            return
        for mtime, size, path in sorted(entries):
            if total <= self.budget_bytes:
                break
            if path == keep:
                continue
            # Re-check recency at the last moment: between the directory
            # scan and this point, a concurrent process may have stored a
            # *fresh* entry under the same key (atomic replace) or
            # LRU-touched it on a hit.  Unlinking on the stale scan would
            # evict a now-hot entry, so skip anything whose mtime moved.
            # The stat->unlink window that remains is benign: losing a
            # touch-vs-evict race costs one recomputation, never a torn
            # or wrong read.
            try:
                if path.stat().st_mtime > mtime:
                    continue
            except OSError:  # already gone: a concurrent evictor won
                continue
            try:
                path.unlink()
            except OSError as exc:  # raced with another evictor
                logger.debug("results cache: eviction of %s raced (%s)", path, exc)
                continue
            total -= size
            self.evictions += 1
            logger.info("evicted LRU cache entry %s (%d bytes, %d over "
                        "budget)", path.stem[:16], size,
                        max(0, total - self.budget_bytes),
                        extra={"event": "cache_eviction",
                               "request_key": path.stem})
            if self.telemetry is not None:
                self.telemetry.inc("serve.cache_evictions")
                self.telemetry.inc("serve.cache_evicted_bytes", size)
