"""Parallel sweep runner.

Fans (trace x policy x hp_threshold x prob_inv) configurations —
single-level or two-level L1I -> L2 hierarchy points — across
``multiprocessing`` workers.  The parent process consults the on-disk
results cache first, dispatches only uncached configurations, and writes
each result back the moment its worker completes (``imap_unordered`` +
per-completion ``store``), so an interrupted sweep keeps everything that
finished and repeated sweeps are incremental.  Workers regenerate the
synthetic trace from its spec (the spec is part of the config key),
keeping inter-process payloads tiny.

Sweep points are typed :class:`~emissary.api.SimRequest` objects; their
``to_dict`` encoding keys the results cache.

Usage::

    python -m emissary.sweep --demo
    python -m emissary.sweep --traces loop,shift,call --n 200000 \
        --policies lru,srrip,emissary --hp-thresholds 2,4 --prob-invs 16,32
    python -m emissary.sweep --l1-sets 64 --l1-ways 8 --min-l1-misses 2
"""

from __future__ import annotations

import argparse
import json
import logging
import multiprocessing as mp
import os
import sys
import time
from collections.abc import Sequence
from typing import Any

from emissary.api import PolicySpec, SimRequest
from emissary.engine import BatchedEngine, CacheConfig
from emissary.hierarchy import BatchedHierarchyEngine, HierarchyConfig
from emissary.policies import POLICY_NAMES
from emissary.results_cache import DEFAULT_CACHE_DIR, ResultsCache
from emissary.telemetry import Telemetry
from emissary.traces import FILE_KIND, InterleaveSpec, TraceSpec

logger = logging.getLogger(__name__)

AnyCacheConfig = CacheConfig | HierarchyConfig

#: Version of the ``--out`` / run-report JSON envelope.  Version 1 was a
#: bare row list (still readable by ``python -m emissary.report``);
#: version 3 added the ``analysis`` lint-posture digest.
SWEEP_SCHEMA_VERSION = 3


def make_config(request: SimRequest) -> dict[str, Any]:
    """One sweep point, encoded as the version-stamped wire dict that
    keys the results cache.  The PR 2 legacy positional form
    ``make_config(trace_spec, policy_name, cache, seed, policy_params)``
    has been removed; build a :class:`~emissary.api.SimRequest`."""
    if not isinstance(request, SimRequest):
        raise TypeError(
            f"make_config takes a SimRequest (the legacy positional form was "
            f"removed), got {type(request).__name__}")
    return request.to_dict()


def run_config(config: dict[str, Any],
               backend: str = "batched") -> dict[str, Any]:
    """Worker entry point: simulate one configuration, return plain dicts.

    A config with ``"telemetry": true`` runs instrumented; its result
    dict then carries the telemetry payload.  File-backed traces
    (``kind="file"``) are *streamed* from disk in chunk-budget-sized
    pieces rather than materialized, so a worker's peak memory stays
    bounded by the chunk budget however large the trace file is.

    ``backend`` selects the kernel backend (``"batched"`` or
    ``"compiled"``).  It rides *next to* the config rather than inside
    it because backends are bit-identical and the config dict is the
    results-cache key — the same point run on either backend must share
    one cache entry.
    """
    if backend not in ("batched", "compiled"):
        raise ValueError(f"unknown sweep backend {backend!r} "
                         f"(expected 'batched' or 'compiled')")
    kernel_backend = "compiled" if backend == "compiled" else "python"
    request = SimRequest.from_dict(config)
    telemetry = Telemetry() if request.telemetry else None
    if request.is_hierarchy:
        engine: Any = BatchedHierarchyEngine(request.config, telemetry=telemetry,
                                             kernel_backend=kernel_backend)
    else:
        engine = BatchedEngine(request.config, telemetry=telemetry,
                               kernel_backend=kernel_backend)
    if request.is_multicore:
        addresses, core_ids = request.trace.generate()
        result = engine.run_multicore(addresses, core_ids, request.policy,
                                      num_cores=request.trace.num_cores,
                                      seed=request.seed, keep_hits=False)
    elif request.trace.kind == FILE_KIND:
        from emissary import trace_io

        source = trace_io.spec_source(request.trace)
        result = engine.simulate_stream(source, request.policy,
                                        seed=request.seed, keep_hits=False)
    else:
        addresses = request.trace.generate()
        result = engine.run(addresses, request.policy, seed=request.seed,
                            keep_hits=False)
    return result.to_dict()


def _run_indexed(item: tuple[int, dict[str, Any], str]
                 ) -> tuple[int, dict[str, Any], dict[str, Any]]:
    """Run one indexed config, never letting an exception escape the
    worker: a raising config becomes an ``{"error": ...}`` payload so one
    bad point cannot kill the pool and discard in-flight results.

    The third element is worker metadata (pid, wall time) for the run
    report."""
    index, config, backend = item
    started = time.perf_counter()
    try:
        payload = {"result": run_config(config, backend=backend)}
    except Exception as exc:  # noqa: BLE001 - isolate arbitrary config failures
        payload = {"error": f"{type(exc).__name__}: {exc}"}
    worker = {"pid": os.getpid(), "elapsed_s": time.perf_counter() - started}
    return index, payload, worker


def build_grid(traces: Sequence[TraceSpec | InterleaveSpec],
               policies: Sequence[str],
               cache: AnyCacheConfig, seed: int, hp_thresholds: Sequence[int],
               prob_invs: Sequence[int], min_l1_misses: int = 1,
               hp_budgets: Sequence[str] = ("shared",)) -> list[SimRequest]:
    """Cross traces x policies (x EMISSARY parameter grid) into SimRequests.

    ``min_l1_misses`` only applies to EMISSARY points and only has a
    measured signal to gate on when ``cache`` is a
    :class:`~emissary.hierarchy.HierarchyConfig`.

    ``hp_budgets`` adds the EMISSARY partitioned-vs-shared HP-budget axis
    (``"shared"`` / ``"partitioned"``): partitioning only bites on
    multi-core :class:`~emissary.traces.InterleaveSpec` traces, where the
    per-set HP quota is split across cores.  The default ``"shared"`` is
    encoded implicitly (no ``hp_budget`` param), so existing single-core
    cache keys are untouched.
    """
    grid: list[SimRequest] = []
    for trace in traces:
        for policy in policies:
            if policy == "emissary":
                for thr in hp_thresholds:
                    for pinv in prob_invs:
                        for budget in hp_budgets:
                            params = {"hp_threshold": thr, "prob_inv": pinv}
                            if min_l1_misses != 1:
                                params["min_l1_misses"] = min_l1_misses
                            if budget != "shared":
                                params["hp_budget"] = budget
                            grid.append(SimRequest(trace,
                                                   PolicySpec(policy, params),
                                                   cache, seed))
            else:
                grid.append(SimRequest(trace, PolicySpec(policy), cache, seed))
    return grid


def solo_requests(request: SimRequest) -> list[SimRequest]:
    """One single-core request per core of a multi-core sweep point.

    Each core's own :class:`~emissary.traces.TraceSpec` runs alone on the
    same hierarchy, policy, and seed — the baseline the fairness metric
    compares the contended run against.  Solo requests are ordinary
    cacheable sweep points, so repeated fairness sweeps reuse them.
    """
    if not request.is_multicore:
        raise ValueError("solo_requests needs a multi-core request "
                         "(trace must be an InterleaveSpec)")
    # A solo run has one core, where a partitioned HP budget is provably
    # identical to the shared one — drop the axis so the shared and
    # partitioned variants of a mix compare against the *same* cached
    # baselines.
    params = {k: v for k, v in request.policy.params.items()
              if k != "hp_budget"}
    policy = PolicySpec(request.policy.name, params)
    return [SimRequest(core_spec, policy, request.config, request.seed)
            for core_spec in request.trace.cores]


def add_fairness(rows: list[dict[str, Any]], workers: int = 0,
                 cache_dir: str = DEFAULT_CACHE_DIR,
                 store: ResultsCache | None = None,
                 backend: str = "batched") -> int:
    """Attach per-core fairness deltas to every multi-core sweep row.

    For each multi-core row, every core's trace is re-run *solo* (same
    hierarchy, policy, seed; deduplicated across rows and served from the
    results cache), and the row gains ``row["fairness"]["per_core"]``:
    the core's solo L2 MPKI, its MPKI inside the contended run, and the
    contention penalty ``delta_l2_mpki = shared - solo``.  Returns the
    number of rows annotated.
    """
    targets: list[tuple[dict[str, Any], list[dict[str, Any]]]] = []
    solo_configs: dict[str, dict[str, Any]] = {}
    for row in rows:
        if "result" not in row or "cores" not in row["config"].get("trace", {}):
            continue
        request = SimRequest.from_dict(row["config"])
        keys = []
        for solo in solo_requests(request):
            config = solo.to_dict()
            key = json.dumps(config, sort_keys=True)
            solo_configs[key] = config
            keys.append(key)
        targets.append((row, keys))
    if not targets:
        return 0
    ordered = sorted(solo_configs)
    solo_rows = run_sweep([solo_configs[key] for key in ordered],
                          workers=workers, cache_dir=cache_dir, store=store,
                          backend=backend)
    by_key = dict(zip(ordered, solo_rows))
    for row, keys in targets:
        per_core = []
        for core, key in enumerate(keys):
            solo_row = by_key[key]
            shared = row["result"]["per_core"][core]
            if "error" in solo_row:
                per_core.append({"core": core, "error": solo_row["error"]})
                continue
            solo_mpki = solo_row["result"]["l2_mpki"]
            per_core.append({
                "core": core,
                "solo_l2_mpki": solo_mpki,
                "shared_l2_mpki": shared["l2_mpki"],
                "delta_l2_mpki": shared["l2_mpki"] - solo_mpki,
            })
        row["fairness"] = {"per_core": per_core}
    return len(targets)


def run_sweep(grid: Sequence[SimRequest | dict[str, Any]], workers: int = 0,
              cache_dir: str = DEFAULT_CACHE_DIR,
              telemetry: bool = False,
              store: ResultsCache | None = None,
              backend: str = "batched") -> list[dict[str, Any]]:
    """Run every configuration, reusing cached results; returns one row per config.

    Fresh results are persisted to the cache *as each worker completes*
    (not in one batch at the end), so interrupting a sweep loses only the
    configurations still in flight.  A configuration that *raises* does
    not kill the pool: its row carries ``"error"`` instead of
    ``"result"``, is logged, and the remaining configurations keep
    running (the CLI exits nonzero if any row errored).

    ``telemetry=True`` re-keys every grid point with the telemetry flag
    (instrumented results cache separately from default ones) and fresh
    rows then carry the telemetry payload inside ``row["result"]``.
    Fresh rows also record ``row["worker"]`` metadata (pid, wall time)
    for the run report.

    ``backend`` selects the worker kernel backend (``"batched"`` or
    ``"compiled"``); it never enters the cache key, so a sweep run on
    either backend reuses (and warms) the same cached results.

    Pass ``store`` to supply (and afterwards inspect, via
    :meth:`~emissary.results_cache.ResultsCache.stats`) the results-cache
    handle; otherwise one is opened on ``cache_dir``.
    """
    if store is None:
        store = ResultsCache(cache_dir)
    if backend not in ("batched", "compiled"):
        raise ValueError(f"unknown sweep backend {backend!r} "
                         f"(expected 'batched' or 'compiled')")
    configs = [g.to_dict() if isinstance(g, SimRequest) else dict(g) for g in grid]
    if telemetry:
        for config in configs:
            config["telemetry"] = True
    rows: list[dict[str, Any] | None] = [None] * len(configs)
    pending: list[int] = []
    for i, config in enumerate(configs):
        cached = store.load(config)
        if cached is not None:
            rows[i] = {"config": config, "result": cached, "cached": True}
        else:
            pending.append(i)

    def record(i: int, payload: dict[str, Any], worker: dict[str, Any]) -> None:
        row = {"config": configs[i], "cached": False, "worker": worker}
        if "error" in payload:
            logger.error("config %d failed: %s", i, payload["error"])
            row["error"] = payload["error"]
        else:
            store.store(configs[i], payload["result"])
            row["result"] = payload["result"]
        rows[i] = row

    if pending:
        if workers <= 0:
            workers = min(len(pending), os.cpu_count() or 1)
        items = [(i, configs[i], backend) for i in pending]
        if workers == 1:
            for item in items:
                record(*_run_indexed(item))
        else:
            with mp.Pool(processes=workers) as pool:
                for i, payload, worker in pool.imap_unordered(_run_indexed, items):
                    record(i, payload, worker)

    assert all(row is not None for row in rows)
    return rows  # type: ignore[return-value]


def build_envelope(rows: list[dict[str, Any]], seed: int, elapsed_s: float,
                   cache_stats: dict[str, int] | None = None,
                   telemetry: bool = False) -> dict[str, Any]:
    """Assemble the schema-versioned run-report envelope around sweep rows.

    This is what ``--out`` writes and ``python -m emissary.report``
    renders: grid size, fresh/cached/error counts, per-worker wall time,
    and the results-cache hit/miss counts, with the row list (and any
    per-config telemetry) nested under ``"rows"``.
    """
    fresh = sum(1 for r in rows if not r["cached"] and "error" not in r)
    errors = sum(1 for r in rows if "error" in r)
    workers: dict[str, dict[str, Any]] = {}
    for row in rows:
        meta = row.get("worker")
        if meta is None:
            continue
        per = workers.setdefault(str(meta["pid"]), {"configs": 0, "elapsed_s": 0.0})
        per["configs"] += 1
        per["elapsed_s"] += meta["elapsed_s"]
    from emissary.analysis.posture import posture

    return {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "generated_by": "emissary.sweep",
        "analysis": posture(),
        "seed": seed,
        "elapsed_s": elapsed_s,
        "grid_size": len(rows),
        "fresh": fresh,
        "cached": sum(1 for r in rows if r["cached"]),
        "errors": errors,
        "telemetry_enabled": telemetry,
        "cache_stats": dict(cache_stats or {}),
        "workers": workers,
        "rows": rows,
    }


def _trace_label(trace: dict[str, Any]) -> str:
    """Table label for a trace config dict: the kind for a single-core
    trace, ``mix/<kinds>`` for a multi-core interleave."""
    if "cores" in trace:
        return "mix/" + "+".join(core["kind"] for core in trace["cores"])
    return trace["kind"]


def _format_table(rows: list[dict[str, Any]]) -> str:
    def params_of(cfg: dict[str, Any]) -> str:
        return ",".join(f"{k}={v}"
                        for k, v in sorted(cfg["policy"]["params"].items())) or "-"

    pw = max([22] + [len(params_of(row["config"])) for row in rows])
    tw = max([8] + [len(_trace_label(row["config"]["trace"])) for row in rows])
    header = (f"{'trace':<{tw}} {'policy':<10} {'params':<{pw}} {'L1hit%':>7} "
              f"{'L2hit%':>7} {'MPKI':>8} {'Macc/s':>8} {'cached':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        cfg = row["config"]
        params = params_of(cfg)
        prefix = (f"{_trace_label(cfg['trace']):<{tw}} "
                  f"{cfg['policy']['name']:<10} {params:<{pw}} ")
        if "error" in row:
            lines.append(prefix + f"ERROR: {row['error']}")
            continue
        res = row["result"]
        if "l1" in res:  # hierarchy row: per-level stats
            l1_hit = f"{100.0 * res['l1_hit_rate']:>6.2f}%"
            l2_hit = f"{100.0 * res['l2_local_hit_rate']:>6.2f}%"
            mpki = res["l2_mpki"]
        else:  # single-level row: the lone cache plays the L2 column
            l1_hit = f"{'-':>7}"
            l2_hit = f"{100.0 * res['hit_rate']:>6.2f}%"
            mpki = res["mpki"]
        rate = res.get("accesses_per_s")
        macc = f"{rate / 1e6:>8.2f}" if rate is not None else f"{'-':>8}"
        lines.append(
            f"{prefix}{l1_hit} {l2_hit} {mpki:>8.2f} "
            f"{macc} {str(row['cached']):>6}"
        )
    return "\n".join(lines)


def demo_grid(n: int = 200_000, seed: int = 42) -> list[SimRequest]:
    # A small L2 (256 sets x 8 ways = 2048 lines) with a footprint ~1.25x
    # capacity: the loop cycles several times within n accesses, so pure
    # LRU thrashes while EMISSARY's protected lines keep hitting — the
    # paper's qualitative effect is visible straight from the demo table.
    l2 = CacheConfig(num_sets=256, ways=8)
    lines = int(l2.num_sets * l2.ways * 1.25)
    traces = [
        TraceSpec("loop", n, seed, {"footprint_lines": lines}),
        TraceSpec("shift", n, seed, {"footprint_lines": lines // 2, "phases": 4}),
        TraceSpec("call", n, seed, {"caller_lines": lines // 2, "num_callees": 128}),
    ]
    grid = build_grid(traces, list(POLICY_NAMES), l2, seed,
                      hp_thresholds=[4, 6], prob_invs=[8, 32])
    # The paper's actual setting: the same L2 behind a 32 KiB L1I filter.
    # EMISSARY's HP candidacy is gated on *measured* L1I miss counts
    # (min_l1_misses=2: a line must already have cost two demand misses).
    hierarchy = HierarchyConfig(l1=CacheConfig(num_sets=64, ways=8), l2=l2)
    grid += build_grid(traces, list(POLICY_NAMES), hierarchy, seed,
                       hp_thresholds=[4, 6], prob_invs=[8, 32], min_l1_misses=2)
    # Multi-core contention leg: two instruction streams interleaved 2:1
    # into the same shared L2, swept with the HP budget both shared and
    # partitioned — the fairness digest compares each core against its
    # solo baseline.
    mix = InterleaveSpec(cores=(traces[0], traces[2]), weights=(2, 1))
    grid += build_grid([mix], ["lru", "emissary"], hierarchy, seed,
                       hp_thresholds=[6], prob_invs=[8], min_l1_misses=2,
                       hp_budgets=("shared", "partitioned"))
    return grid


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="emissary.sweep", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--demo", action="store_true",
                        help="run the built-in demonstration sweep")
    parser.add_argument("--traces", default="loop,shift,call",
                        help="comma-separated trace kinds (pass '' to sweep "
                             "only --trace-file traces)")
    parser.add_argument("--trace-file", action="append", default=[],
                        metavar="PATH",
                        help="add a trace file (ChampSim binary, .gz variant, "
                             ".npy, or .npz) as a sweep trace; repeatable. "
                             "Workers stream the file in bounded-memory chunks")
    parser.add_argument("--n", type=int, default=200_000, help="accesses per trace")
    parser.add_argument("--policies", default=",".join(POLICY_NAMES),
                        help="comma-separated policy names")
    parser.add_argument("--hp-thresholds", default="4",
                        help="comma-separated EMISSARY HP thresholds")
    parser.add_argument("--prob-invs", default="32",
                        help="comma-separated EMISSARY 1/P denominators")
    parser.add_argument("--num-sets", type=int, default=1024)
    parser.add_argument("--ways", type=int, default=8)
    parser.add_argument("--l1-sets", type=int, default=0,
                        help="L1I sets; > 0 simulates the two-level L1I -> L2 "
                             "hierarchy with the main cache as L2")
    parser.add_argument("--l1-ways", type=int, default=8, help="L1I associativity")
    parser.add_argument("--l1-policy", default="lru",
                        help="L1I replacement policy (must be deterministic)")
    parser.add_argument("--min-l1-misses", type=int, default=1,
                        help="EMISSARY HP candidacy: minimum measured L1I "
                             "misses for a line to qualify (hierarchy only)")
    parser.add_argument("--hp-budgets", default="shared",
                        help="comma-separated EMISSARY HP budget modes "
                             "('shared', 'partitioned'); partitioning "
                             "splits each set's HP quota across cores")
    parser.add_argument("--interleave", action="store_true",
                        help="also sweep the listed traces interleaved as "
                             "one multi-core mix contending for the shared "
                             "L2 (requires --l1-sets > 0)")
    parser.add_argument("--weights", default="",
                        help="comma-separated per-core interleave weights "
                             "for --interleave (default: equal round-robin)")
    parser.add_argument("--no-fairness", action="store_true",
                        help="skip the per-core solo-baseline fairness "
                             "annotation of multi-core rows")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--out", default=None,
                        help="write the schema-versioned run-report envelope "
                             "(results + telemetry) as JSON here")
    parser.add_argument("--telemetry", action="store_true",
                        help="run every configuration instrumented: rows carry "
                             "policy counters, histograms, and engine phase spans")
    parser.add_argument("--backend", choices=("batched", "compiled"),
                        default="batched",
                        help="kernel backend for workers; outcomes are "
                             "bit-identical, so either backend shares the "
                             "same results cache")
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO, format="%(levelname)s %(message)s")

    if args.demo:
        if args.trace_file:
            parser.error("--trace-file cannot be combined with --demo")
        grid = demo_grid(n=args.n, seed=args.seed)
    else:
        l2 = CacheConfig(num_sets=args.num_sets, ways=args.ways)
        cache: AnyCacheConfig = l2
        if args.l1_sets > 0:
            cache = HierarchyConfig(l1=CacheConfig(num_sets=args.l1_sets,
                                                   ways=args.l1_ways),
                                    l2=l2, l1_policy=args.l1_policy)
        lines = int(l2.num_sets * l2.ways * 1.5)
        defaults = {
            "loop": {"footprint_lines": lines},
            "shift": {"footprint_lines": lines // 2, "phases": 4},
            "call": {"caller_lines": lines // 2, "num_callees": 128},
        }
        traces = [TraceSpec(kind, args.n, args.seed, defaults.get(kind, {}))
                  for kind in args.traces.split(",") if kind]
        if args.trace_file:
            from emissary import trace_io

            traces += [trace_io.file_spec(path) for path in args.trace_file]
        policies = [p for p in args.policies.split(",") if p]
        hp_budgets = [b for b in args.hp_budgets.split(",") if b]
        sweep_traces: list[TraceSpec | InterleaveSpec] = list(traces)
        if args.interleave:
            if args.l1_sets <= 0:
                parser.error("--interleave needs --l1-sets > 0 (multi-core "
                             "runs share an L2 behind per-core L1Is)")
            if len(traces) < 2:
                parser.error("--interleave needs at least two traces")
            weights = tuple(int(x) for x in args.weights.split(",") if x)
            sweep_traces.append(InterleaveSpec(cores=tuple(traces),
                                               weights=weights))
        grid = build_grid(sweep_traces, policies, cache, args.seed,
                          [int(x) for x in args.hp_thresholds.split(",") if x],
                          [int(x) for x in args.prob_invs.split(",") if x],
                          min_l1_misses=args.min_l1_misses,
                          hp_budgets=hp_budgets)

    store = ResultsCache(args.cache_dir)
    start = time.perf_counter()
    rows = run_sweep(grid, workers=args.workers, cache_dir=args.cache_dir,
                     telemetry=args.telemetry, store=store,
                     backend=args.backend)
    if not args.no_fairness:
        annotated = add_fairness(rows, workers=args.workers,
                                 cache_dir=args.cache_dir, store=store,
                                 backend=args.backend)
        if annotated:
            logger.info("fairness baselines attached to %d multi-core rows",
                        annotated)
    elapsed = time.perf_counter() - start

    print(_format_table(rows))
    errors = sum(1 for r in rows if "error" in r)
    fresh = sum(1 for r in rows if not r["cached"]) - errors
    print(f"\n{len(rows)} configs ({fresh} simulated, "
          f"{len(rows) - fresh - errors} cached, {errors} errored) "
          f"in {elapsed:.2f}s")

    if args.out:
        envelope = build_envelope(rows, seed=args.seed, elapsed_s=elapsed,
                                  cache_stats=store.stats(),
                                  telemetry=args.telemetry)
        with open(args.out, "w") as fh:
            json.dump(envelope, fh, indent=1, sort_keys=True)
        print(f"results written to {args.out} "
              f"(render with: python -m emissary.report {args.out})")
    if errors:
        logger.error("%d of %d configurations failed", errors, len(rows))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
