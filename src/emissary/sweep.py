"""Parallel sweep runner.

Fans (trace x policy x hp_threshold x prob_inv) configurations across
``multiprocessing`` workers.  The parent process consults the on-disk
results cache first, dispatches only uncached configurations, and writes
results back as workers complete — so interrupted or repeated sweeps are
incremental.  Workers regenerate the synthetic trace from its spec (the
spec is part of the config key), keeping inter-process payloads tiny.

Usage::

    python -m emissary.sweep --demo
    python -m emissary.sweep --traces loop,shift,call --n 200000 \
        --policies lru,srrip,emissary --hp-thresholds 2,4 --prob-invs 16,32
"""

from __future__ import annotations

import argparse
import json
import logging
import multiprocessing as mp
import os
import sys
import time
from typing import Any, Dict, List, Optional

from emissary.engine import BatchedEngine, CacheConfig
from emissary.policies import POLICY_NAMES
from emissary.results_cache import DEFAULT_CACHE_DIR, ResultsCache
from emissary.traces import TraceSpec

logger = logging.getLogger(__name__)


def make_config(trace: TraceSpec, policy: str, cache: CacheConfig, seed: int,
                policy_params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One sweep point, encoded as the plain dict that keys the results cache."""
    return {
        "trace": trace.to_dict(),
        "policy": policy,
        "policy_params": dict(policy_params or {}),
        "cache": cache.to_dict(),
        "seed": seed,
    }


def run_config(config: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: simulate one configuration, return plain dicts."""
    trace = TraceSpec.from_dict(config["trace"]).generate()
    cache_cfg = CacheConfig(**config["cache"])
    engine = BatchedEngine(cache_cfg)
    result = engine.run(trace, config["policy"], seed=config["seed"],
                        keep_hits=False, **config["policy_params"])
    return result.to_dict()


def build_grid(traces: List[TraceSpec], policies: List[str], cache: CacheConfig,
               seed: int, hp_thresholds: List[int],
               prob_invs: List[int]) -> List[Dict[str, Any]]:
    grid: List[Dict[str, Any]] = []
    for trace in traces:
        for policy in policies:
            if policy == "emissary":
                for thr in hp_thresholds:
                    for pinv in prob_invs:
                        grid.append(make_config(trace, policy, cache, seed,
                                                {"hp_threshold": thr, "prob_inv": pinv}))
            else:
                grid.append(make_config(trace, policy, cache, seed))
    return grid


def run_sweep(grid: List[Dict[str, Any]], workers: int = 0,
              cache_dir: str = DEFAULT_CACHE_DIR) -> List[Dict[str, Any]]:
    """Run every configuration, reusing cached results; returns one row per config."""
    store = ResultsCache(cache_dir)
    rows: List[Optional[Dict[str, Any]]] = [None] * len(grid)
    pending: List[int] = []
    for i, config in enumerate(grid):
        cached = store.load(config)
        if cached is not None:
            rows[i] = {"config": config, "result": cached, "cached": True}
        else:
            pending.append(i)

    if pending:
        if workers <= 0:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers == 1:
            fresh = [run_config(grid[i]) for i in pending]
        else:
            with mp.Pool(processes=workers) as pool:
                fresh = pool.map(run_config, [grid[i] for i in pending])
        for i, result in zip(pending, fresh):
            store.store(grid[i], result)
            rows[i] = {"config": grid[i], "result": result, "cached": False}

    assert all(row is not None for row in rows)
    return rows  # type: ignore[return-value]


def _format_table(rows: List[Dict[str, Any]]) -> str:
    header = f"{'trace':<8} {'policy':<10} {'params':<22} {'hit%':>7} {'MPKI':>8} " \
             f"{'Macc/s':>8} {'cached':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        cfg, res = row["config"], row["result"]
        params = ",".join(f"{k}={v}" for k, v in sorted(cfg["policy_params"].items())) or "-"
        lines.append(
            f"{cfg['trace']['kind']:<8} {cfg['policy']:<10} {params:<22} "
            f"{100.0 * res['hit_rate']:>6.2f}% {res['mpki']:>8.2f} "
            f"{res['accesses_per_s'] / 1e6:>8.2f} {str(row['cached']):>6}"
        )
    return "\n".join(lines)


def demo_grid(n: int = 200_000, seed: int = 42) -> List[Dict[str, Any]]:
    # A small L2 (256 sets x 8 ways = 2048 lines) with a footprint ~1.25x
    # capacity: the loop cycles several times within n accesses, so pure
    # LRU thrashes while EMISSARY's protected lines keep hitting — the
    # paper's qualitative effect is visible straight from the demo table.
    cache = CacheConfig(num_sets=256, ways=8)
    lines = int(cache.num_sets * cache.ways * 1.25)
    traces = [
        TraceSpec("loop", n, seed, {"footprint_lines": lines}),
        TraceSpec("shift", n, seed, {"footprint_lines": lines // 2, "phases": 4}),
        TraceSpec("call", n, seed, {"caller_lines": lines // 2, "num_callees": 128}),
    ]
    return build_grid(traces, list(POLICY_NAMES), cache, seed,
                      hp_thresholds=[4, 6], prob_invs=[8, 32])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="emissary.sweep", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--demo", action="store_true",
                        help="run the built-in demonstration sweep")
    parser.add_argument("--traces", default="loop,shift,call",
                        help="comma-separated trace kinds")
    parser.add_argument("--n", type=int, default=200_000, help="accesses per trace")
    parser.add_argument("--policies", default=",".join(POLICY_NAMES),
                        help="comma-separated policy names")
    parser.add_argument("--hp-thresholds", default="4",
                        help="comma-separated EMISSARY HP thresholds")
    parser.add_argument("--prob-invs", default="32",
                        help="comma-separated EMISSARY 1/P denominators")
    parser.add_argument("--num-sets", type=int, default=1024)
    parser.add_argument("--ways", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--out", default=None, help="write full results JSON here")
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO, format="%(levelname)s %(message)s")

    if args.demo:
        grid = demo_grid(n=args.n, seed=args.seed)
    else:
        cache = CacheConfig(num_sets=args.num_sets, ways=args.ways)
        lines = int(cache.num_sets * cache.ways * 1.5)
        defaults = {
            "loop": {"footprint_lines": lines},
            "shift": {"footprint_lines": lines // 2, "phases": 4},
            "call": {"caller_lines": lines // 2, "num_callees": 128},
        }
        traces = [TraceSpec(kind, args.n, args.seed, defaults.get(kind, {}))
                  for kind in args.traces.split(",") if kind]
        policies = [p for p in args.policies.split(",") if p]
        grid = build_grid(traces, policies, cache, args.seed,
                          [int(x) for x in args.hp_thresholds.split(",") if x],
                          [int(x) for x in args.prob_invs.split(",") if x])

    start = time.perf_counter()
    rows = run_sweep(grid, workers=args.workers, cache_dir=args.cache_dir)
    elapsed = time.perf_counter() - start

    print(_format_table(rows))
    fresh = sum(1 for r in rows if not r["cached"])
    print(f"\n{len(rows)} configs ({fresh} simulated, {len(rows) - fresh} cached) "
          f"in {elapsed:.2f}s")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(rows, fh, indent=1, sort_keys=True)
        print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
