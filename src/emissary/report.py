"""Structured run-report renderer for sweep output.

``python -m emissary.sweep --telemetry --out sweep.json`` writes a
schema-versioned envelope (see
:data:`~emissary.sweep.SWEEP_SCHEMA_VERSION`); this module turns it back
into something a human can read::

    python -m emissary.report sweep.json
    python -m emissary.report sweep.json --trace-out trace.json

The text report shows the sweep header (seed, wall time, grid size,
fresh/cached/error counts, results-cache hit/miss), the per-config
results table, per-worker wall-time totals, and — for instrumented rows
— the policy telemetry the paper's argument rests on: evictions split by
priority class, HP promotions/demotions, dead-on-fill lines, final HP
set occupancy, and the per-line hit-count distribution.

``--trace-out`` merges every row's engine phase spans into one Chrome
trace-event JSON file (pid = worker process, tid = config index),
loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

Pointing the CLI at a benchmark report instead prints its digest:
``BENCH_backend.json`` (compiled backend) shows per-row speedup vs
python-batched and the aggregate bit-identity verdict;
``BENCH_serve.json`` (serving layer, ``python -m emissary.serve bench``)
shows throughput, the latency distribution, the single-flight dedupe
ratio, and the results-cache hit/eviction accounting;
``BENCH_telemetry.json`` (overhead guard) shows the kernel off-path
guard per policy plus the serve-path observability overhead and latency
percentiles derived from its ``serve.latency_us`` histogram.

Legacy (version 1) output — a bare row list with no envelope — still
loads; missing header fields simply render as absent.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from emissary.sweep import SWEEP_SCHEMA_VERSION, _format_table, _trace_label
from emissary.telemetry import spans_to_chrome_trace


def load_sweep_output(path: str) -> dict[str, Any]:
    """Read sweep ``--out`` JSON, normalizing to the envelope form.

    Accepts the current schema-versioned envelope or the legacy bare row
    list (pre-envelope output), which is wrapped as a version-1 envelope
    with only ``rows`` populated.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if isinstance(payload, list):
        return {"schema_version": 1, "rows": payload}
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ValueError(f"{path}: not sweep output (expected an envelope "
                         f"with 'rows' or a bare row list)")
    version = payload.get("schema_version")
    if version is not None and version > SWEEP_SCHEMA_VERSION:
        raise ValueError(f"{path}: envelope schema_version {version} is newer "
                         f"than supported ({SWEEP_SCHEMA_VERSION})")
    return payload


def _config_label(config: dict[str, Any], index: int) -> str:
    policy = config.get("policy", {})
    params = ",".join(f"{k}={v}" for k, v in sorted(policy.get("params", {}).items()))
    trace_cfg = config.get("trace", {})
    trace = _trace_label(trace_cfg) if trace_cfg else "?"
    level = "hier" if "l1" in config.get("config", {}) else "single"
    label = f"[{index}] {trace}/{policy.get('name', '?')}"
    if params:
        label += f"({params})"
    return f"{label} {level}"


def _hist_summary(hist: dict[str, int], max_buckets: int = 6) -> str:
    """Render ``value:count`` pairs, eliding the middle of wide histograms."""
    items = sorted(((int(v), c) for v, c in hist.items()), key=lambda vc: vc[0])
    shown = [f"{v}:{c}" for v, c in items]
    if len(shown) > max_buckets:
        head = max_buckets // 2
        shown = shown[:head] + [f"... ({len(items) - max_buckets} more)"] + shown[-head:]
    total = sum(c for _, c in items)
    mass = sum(v * c for v, c in items)
    mean = mass / total if total else 0.0
    return f"{{{', '.join(shown)}}} (n={total}, mean={mean:.2f})"


def _telemetry_lines(telemetry: dict[str, Any]) -> list[str]:
    """The policy-facing counter/histogram digest for one config."""
    counters: dict[str, int] = telemetry.get("counters", {})
    histograms: dict[str, dict[str, int]] = telemetry.get("histograms", {})
    lines: list[str] = []
    # A hierarchy payload holds both levels under l1./l2. prefixes; a
    # single-level payload holds unprefixed names.  Render whichever
    # prefixes are actually present, engine.* internals last.
    prefixes = sorted({name.split(".", 1)[0] + "."
                       for name in counters if "." in name and
                       not name.startswith("engine.") and
                       not name.startswith("core")}) or [""]
    for prefix in prefixes:
        tag = f"  {prefix.rstrip('.')}: " if prefix else "  "

        def c(name: str, p: str = prefix) -> int | None:
            return counters.get(p + name)

        core = [(label, c(name)) for label, name in (
            ("hits", "hits"), ("misses", "misses"), ("fills", "fills"),
            ("evictions", "evictions"), ("dead_on_fill", "dead_on_fill"))]
        lines.append(tag + "  ".join(f"{label}={value}" for label, value in core
                                     if value is not None))
        hp = [(label, c(name)) for label, name in (
            ("evictions_hp", "evictions_hp"), ("evictions_lp", "evictions_lp"),
            ("hp_promotions", "hp_promotions"), ("hp_demotions", "hp_demotions"),
            ("hp_lines_final", "hp_lines_final"))]
        if any(value is not None for _, value in hp):
            lines.append(tag + "  ".join(f"{label}={value}" for label, value in hp
                                         if value is not None))
        for hist_name in ("line_hits", "resident_line_hits", "hp_set_occupancy"):
            hist = histograms.get(prefix + hist_name)
            if hist:
                lines.append(f"{tag}{hist_name} {_hist_summary(hist)}")
    core = 0
    while f"core{core}.n" in counters:
        lines.append(f"  core{core}: n={counters[f'core{core}.n']}  "
                     f"l1_misses={counters[f'core{core}.l1_misses']}  "
                     f"l2_misses={counters[f'core{core}.l2_misses']}")
        core += 1
    engine = {name: value for name, value in counters.items() if "engine." in name}
    if engine:
        lines.append("  " + "  ".join(f"{name}={value}"
                                      for name, value in sorted(engine.items())))
    stream = _stream_digest(telemetry.get("spans", []))
    if stream:
        lines.append(stream)
    return lines


def _stream_digest(spans: list[dict[str, Any]]) -> str | None:
    """One-line chunk-ingest summary for streamed (chunked) runs.

    Streaming engines emit ``stream_ingest`` spans around pulling each
    chunk from the trace source and ``stream_chunk`` spans around
    simulating it (hierarchy payloads carry them under ``l1.``/``l2.``
    prefixes).  Sums both so I/O-bound vs simulate-bound streamed runs
    are distinguishable straight from the report.
    """
    ingest_us = chunk_us = 0.0
    chunk_count = 0
    for span in spans:
        base = span.get("name", "").rsplit(".", 1)[-1]
        if base == "stream_ingest":
            ingest_us += span.get("dur_us", 0.0)
        elif base == "stream_chunk":
            chunk_us += span.get("dur_us", 0.0)
            chunk_count += 1
    if not chunk_count:
        return None
    return (f"  stream: {chunk_count} chunk spans, "
            f"ingest {ingest_us / 1e3:.1f}ms, simulate {chunk_us / 1e3:.1f}ms")


def fairness_lines(rows: list[dict[str, Any]]) -> list[str]:
    """The multi-core fairness digest: per core, the solo-baseline L2
    MPKI against the MPKI inside the contended run (``delta`` is the
    contention penalty; negative means the core *gained* from sharing),
    plus the per-row spread — the imbalance a partitioned HP budget is
    meant to bound."""
    annotated = [(i, row) for i, row in enumerate(rows)
                 if isinstance(row.get("fairness"), dict)]
    if not annotated:
        return []
    out = ["", "fairness (per-core L2 MPKI vs solo baseline):"]
    for i, row in annotated:
        out.append(_config_label(row["config"], i))
        deltas = []
        for pc in row["fairness"].get("per_core", []):
            if "error" in pc:
                out.append(f"  core {pc['core']}: baseline error: "
                           f"{pc['error']}")
                continue
            out.append(f"  core {pc['core']}: solo {pc['solo_l2_mpki']:.2f} "
                       f"-> shared {pc['shared_l2_mpki']:.2f} MPKI "
                       f"(delta {pc['delta_l2_mpki']:+.2f})")
            deltas.append(pc["delta_l2_mpki"])
        if deltas:
            out.append(f"  worst delta {max(deltas):+.2f}, "
                       f"spread {max(deltas) - min(deltas):.2f}")
    return out


def render_report(envelope: dict[str, Any]) -> str:
    """Render the full text report for a loaded sweep envelope."""
    rows: list[dict[str, Any]] = envelope["rows"]
    out: list[str] = ["emissary sweep report"]
    header_bits = []
    for key, label in (("schema_version", "schema"), ("seed", "seed"),
                       ("grid_size", "configs"), ("fresh", "fresh"),
                       ("cached", "cached"), ("errors", "errors")):
        if key in envelope:
            header_bits.append(f"{label}={envelope[key]}")
    if "elapsed_s" in envelope:
        header_bits.append(f"elapsed={envelope['elapsed_s']:.2f}s")
    cache_stats = envelope.get("cache_stats") or {}
    if cache_stats:
        header_bits.append(f"results-cache hits={cache_stats.get('hits', 0)} "
                           f"misses={cache_stats.get('misses', 0)}")
    if header_bits:
        out.append("  " + "  ".join(header_bits))
    analysis = envelope.get("analysis") or {}
    if analysis:
        # The lint posture of the tree that produced this sweep (v3+
        # envelopes): how checked the code was, and how many findings
        # were waved through.
        out.append(f"  analysis: {analysis.get('rules', '?')} rules, "
                   f"{analysis.get('files_scanned', '?')} files scanned, "
                   f"{analysis.get('suppressions', '?')} suppression(s)")
    out += ["", _format_table(rows)]

    out += fairness_lines(rows)

    workers = envelope.get("workers") or {}
    if workers:
        out += ["", "per-worker wall time:"]
        for pid, meta in sorted(workers.items()):
            out.append(f"  pid {pid}: {meta['configs']} configs "
                       f"in {meta['elapsed_s']:.2f}s")

    telemetry_rows = [(i, row) for i, row in enumerate(rows)
                      if isinstance(row.get("result"), dict)
                      and row["result"].get("telemetry")]
    if telemetry_rows:
        out += ["", "telemetry:"]
        for i, row in telemetry_rows:
            out.append(_config_label(row["config"], i))
            out += _telemetry_lines(row["result"]["telemetry"])
    errors = [(i, row) for i, row in enumerate(rows) if "error" in row]
    if errors:
        out += ["", "errors:"]
        for i, row in errors:
            out.append(f"  {_config_label(row['config'], i)}: {row['error']}")
    return "\n".join(out)


def render_backend_digest(report: dict[str, Any]) -> str:
    """Digest of a ``BENCH_backend.json`` compiled-backend report: the
    speedup range, the best row, and the bit-identity verdict."""
    rows: list[dict[str, Any]] = report.get("policies", [])
    lines = [f"compiled backend benchmark "
             f"(provider={report.get('compiled_provider', '?')}, "
             f"trace={report.get('trace', {}).get('kind', '?')} "
             f"n={report.get('trace', {}).get('n', '?')})"]
    best: dict[str, Any] | None = None
    for row in rows:
        name = row["policy"] + (" (L1I->L2)" if row.get("hierarchy") else "")
        lines.append(f"  {name}: {row['speedup_vs_python']:.1f}x vs "
                     f"python-batched "
                     f"({row['compiled']['accesses_per_s'] / 1e6:.1f} Macc/s), "
                     f"identical={row['outcomes_identical']}")
        if best is None or row["speedup_vs_python"] > best["speedup_vs_python"]:
            best = row
    if best is not None:
        lines.append(f"  best: {best['policy']} "
                     f"{best['speedup_vs_python']:.1f}x; all outcomes "
                     f"identical: {report.get('all_outcomes_identical')}")
    return "\n".join(lines)


def render_serve_digest(report: dict[str, Any]) -> str:
    """Digest of a ``BENCH_serve.json`` serving-layer load report: fleet
    shape, latency distribution, and the dedupe/cache/eviction verdict."""
    latency = report.get("latency_ms", {})
    dedupe = report.get("dedupe", {})
    cache = report.get("cache", {})
    lines = [
        f"serve load benchmark ({report.get('clients', '?')} clients x "
        f"{report.get('requests_per_client', '?')} reqs, "
        f"{report.get('distinct_configs', '?')} distinct configs)",
        f"  throughput: {report.get('req_per_s', 0):.0f} req/s "
        f"({report.get('completed_requests', 0)} requests in "
        f"{report.get('wall_s', 0):.2f}s)",
        f"  latency ms: p50={latency.get('p50', 0):.1f} "
        f"p90={latency.get('p90', 0):.1f} p99={latency.get('p99', 0):.1f} "
        f"max={latency.get('max', 0):.1f}",
        f"  dedupe: {dedupe.get('simulations', 0)} simulations served "
        f"{dedupe.get('requests', 0)} requests "
        f"({dedupe.get('dedupe_joined', 0)} joined in flight, "
        f"ratio {dedupe.get('dedupe_ratio', 0):.2f})",
        f"  cache: hit rate {cache.get('hit_rate', 0):.2f}, "
        f"{cache.get('evictions', 0)} LRU evictions, "
        f"{cache.get('total_bytes', 0)}/{cache.get('budget_bytes')} bytes "
        f"(under budget: {cache.get('under_budget')})",
    ]
    statuses = report.get("status_counts", {})
    if statuses:
        counted = ", ".join(f"{k}: {v}" for k, v in sorted(statuses.items()))
        lines.append(f"  statuses: {counted}")
    return "\n".join(lines)


def render_telemetry_overhead_digest(report: dict[str, Any]) -> str:
    """Digest of a ``BENCH_telemetry.json`` overhead-guard report: the
    kernel off-path guard per policy, and — when the serve arm ran — the
    serve-path obs overhead plus latency percentiles derived from the
    ``serve.latency_us`` histogram the bench captured."""
    from emissary.obs.metrics import histogram_quantile

    rows: list[dict[str, Any]] = report.get("policies", [])
    lines = [f"telemetry overhead guard "
             f"(trace={report.get('trace', {}).get('kind', '?')} "
             f"n={report.get('trace', {}).get('n', '?')}, "
             f"repeats={report.get('repeats', '?')})"]
    for row in rows:
        lines.append(f"  {row['policy']}: off {1e3 * row['off_s']:.2f}ms, "
                     f"on {1e3 * row['on_s']:.2f}ms, "
                     f"off-path overhead {100 * row['off_overhead']:+.2f}%, "
                     f"telemetry cost {100 * row['on_cost']:+.1f}%")
    lines.append(f"  max off-path overhead: "
                 f"{100 * report.get('max_off_overhead', 0.0):+.2f}%")
    serve = report.get("serve")
    if serve:
        lines.append(
            f"  serve path: obs overhead {100 * serve['obs_overhead']:+.2f}% "
            f"(off {serve['off_req_per_s']:.0f} req/s, "
            f"on {serve['on_req_per_s']:.0f} req/s, "
            f"{serve['clients']} clients x {serve['requests_per_client']})")
        hist = serve.get("latency_us_hist") or {}
        if hist:
            p50 = histogram_quantile(hist, 0.50) / 1e3
            p99 = histogram_quantile(hist, 0.99) / 1e3
            n = sum(int(count) for count in hist.values())
            lines.append(f"  serve latency (obs on): p50={p50:.2f}ms "
                         f"p99={p99:.2f}ms (n={n})")
    return "\n".join(lines)


_BENCH_DIGESTS = {
    "backend_throughput": render_backend_digest,
    "serve_load": render_serve_digest,
    "telemetry_overhead": render_telemetry_overhead_digest,
}


def _try_backend_digest(path: str) -> str | None:
    """Render ``path`` as a known bench report, or None if it isn't one."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(payload, dict):
        renderer = _BENCH_DIGESTS.get(payload.get("benchmark", ""))
        if renderer is not None:
            return renderer(payload)
    return None


def export_chrome_trace(envelope: dict[str, Any]) -> dict[str, Any]:
    """Merge every row's engine phase spans into one Chrome trace.

    Tracks: pid = the worker process that ran the config (0 for cached or
    legacy rows), tid = the config's index in the sweep grid.
    """
    spans: list[dict[str, Any]] = []
    for i, row in enumerate(envelope["rows"]):
        result = row.get("result")
        if not isinstance(result, dict):
            continue
        telemetry = result.get("telemetry")
        if not telemetry:
            continue
        pid = (row.get("worker") or {}).get("pid", 0)
        for span in telemetry.get("spans", []):
            tagged = dict(span)
            tagged["pid"] = pid
            tagged["tid"] = i
            spans.append(tagged)
    return spans_to_chrome_trace(spans)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="emissary.report", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("path", help="sweep --out JSON (envelope or legacy row list)")
    parser.add_argument("--trace-out", default=None,
                        help="also write merged engine phase spans as Chrome "
                             "trace-event JSON (open in Perfetto)")
    args = parser.parse_args(argv)

    try:
        envelope = load_sweep_output(args.path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        digest = _try_backend_digest(args.path)
        if digest is not None:
            print(digest)
            return 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(envelope))
    if args.trace_out:
        trace = export_chrome_trace(envelope)
        with open(args.trace_out, "w") as fh:
            json.dump(trace, fh, indent=1)
        print(f"\nchrome trace ({len(trace['traceEvents'])} events) "
              f"written to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
