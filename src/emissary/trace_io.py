"""Trace file I/O: ChampSim-style binary, gzip variants, ``.npy``/``.npz``.

EMISSARY's evaluation lives on real instruction streams, and the
trace-driven simulator ecosystem (ChampSim, MANA, the BSC front-end
studies) exchanges them as packed binary instruction records.  This
module reads and writes those files and exposes every format as a
:class:`TraceSource`: an iterable of fixed-size ``uint64`` byte-address
chunks under a configurable memory budget, which the engines'
``simulate_stream`` entry points consume so multi-GB traces run in
bounded memory.

Formats
-------

``champsim``
    Packed 64-byte instruction records (little-endian), matching
    ChampSim's ``trace_instr_format``: ``ip`` (u64), ``is_branch`` /
    ``branch_taken`` (u8), 2 destination + 4 source register ids (u8),
    2 destination + 4 source memory operands (u64).  Only ``ip`` — the
    instruction fetch address — drives an instruction-cache simulation;
    the writer zero-fills the rest.
``champsim.gz`` / ``champsim.xz``
    The same records gzip- or xz-compressed (``.gz`` / ``.xz`` suffix —
    ChampSim traces in the wild ship as ``.trace.xz``), decompressed
    incrementally while streaming.
``npy``
    A 1-D unsigned integer array of byte addresses, memory-mapped so
    chunks are sliced straight off the file without loading it.
``npz``
    The same array inside a (compressed) NumPy archive under the key
    ``"addresses"``.  The zip member is read as an incrementally
    decompressing stream (its ``.npy`` header parsed off the stream,
    element bytes pulled per chunk), so ``.npz`` traces stream in
    bounded memory like every other format.

File-backed trace specs
-----------------------

:func:`file_spec` turns a trace file into a
:class:`~emissary.traces.TraceSpec` with ``kind="file"``.  The spec's
content identity — and therefore its results-cache key — is the file's
SHA-256 (``params["sha256"]``); the on-disk location travels in the
advisory ``params["_path"]``, which the cache excludes from the key, so
a moved or renamed trace file keeps every cached result.

CLI
---

::

    python -m emissary.trace_io inspect trace.champsim.gz
    python -m emissary.trace_io convert trace.champsim trace.npy
    python -m emissary.trace_io convert synth:call out.champsim.gz \
        --n 1000000 --seed 42 --param num_callees=128
"""

from __future__ import annotations

import argparse
import gzip
import hashlib
import lzma
import sys
import zipfile
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any, BinaryIO

import numpy as np

from emissary.traces import (FILE_KIND, GENERATORS, LINE_BYTES,
                             AddressArray, TraceSpec)

#: Default streaming memory budget: 8 MiB of addresses per chunk.
DEFAULT_CHUNK_BYTES = 8 << 20

#: ChampSim's packed ``trace_instr_format`` (64 bytes per instruction).
CHAMPSIM_DTYPE = np.dtype([
    ("ip", "<u8"),
    ("is_branch", "u1"),
    ("branch_taken", "u1"),
    ("destination_registers", "u1", (2,)),
    ("source_registers", "u1", (4,)),
    ("destination_memory", "<u8", (2,)),
    ("source_memory", "<u8", (4,)),
])
assert CHAMPSIM_DTYPE.itemsize == 64

FORMATS = ("champsim", "champsim.gz", "champsim.xz", "npy", "npz")

#: Raw (uncompressed) ChampSim record suffixes.
_RAW_SUFFIXES = (".champsim", ".bin", ".trace")

#: ChampSim compression codec -> incremental (de)compressing opener.
_COMPRESSION_OPENERS = {"gz": gzip.open, "xz": lzma.open}


def detect_format(path: str | Path) -> str:
    """Infer the trace format from the file name."""
    name = str(path).lower()
    if name.endswith(".npy"):
        return "npy"
    if name.endswith(".npz"):
        return "npz"
    if name.endswith(".gz"):
        return "champsim.gz"
    if name.endswith(".xz"):
        return "champsim.xz"
    if name.endswith(_RAW_SUFFIXES):
        return "champsim"
    raise ValueError(
        f"cannot infer trace format from {str(path)!r}; expected a suffix in "
        f"{_RAW_SUFFIXES} (raw ChampSim records), .gz (gzip ChampSim), "
        f".xz (xz ChampSim), .npy, or .npz")


def file_sha256(path: str | Path) -> str:
    """Streaming SHA-256 of the file's on-disk bytes (the content key)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


#: Per-process verification memo: (resolved path, size, mtime_ns) -> sha256.
#: A sweep worker simulating many configs against one trace file pays the
#: full-file hash once, not once per config; any rewrite of the file
#: changes size or mtime and forces a re-hash.
_SHA_MEMO: dict[tuple, str] = {}


def verified_sha256(path: str | Path) -> str:
    """:func:`file_sha256` with a per-process (path, size, mtime) memo."""
    resolved = Path(path).resolve()
    stat = resolved.stat()
    key = (str(resolved), stat.st_size, stat.st_mtime_ns)
    cached = _SHA_MEMO.get(key)
    if cached is None:
        cached = _SHA_MEMO[key] = file_sha256(resolved)
    return cached


class TraceSource:
    """One trace file, iterable as bounded ``uint64`` address chunks.

    ``chunk_bytes`` is the memory budget for a single yielded chunk (the
    engines hold at most one chunk plus carried state at a time).  Every
    yielded array is a fresh contiguous ``uint64`` buffer — safe to hold
    across iterations.
    """

    format: str = "?"

    def __init__(self, path: str | Path,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if chunk_bytes < 8:
            raise ValueError("chunk_bytes must be at least 8 (one address)")
        self.path = Path(path)
        self.chunk_bytes = chunk_bytes

    def __iter__(self) -> Iterator[AddressArray]:
        raise NotImplementedError

    def count(self) -> int:
        """Number of accesses in the trace (may scan the file once)."""
        raise NotImplementedError

    def read_all(self) -> AddressArray:
        """The whole trace in memory (chunks concatenated)."""
        chunks = list(self)
        if not chunks:
            return np.zeros(0, dtype=np.uint64)
        return np.concatenate(chunks)


class ChampSimSource(TraceSource):
    """Raw, gzip- or xz-compressed packed instruction records -> fetch
    addresses.

    ``compression`` is ``"gz"``, ``"xz"``, or None (raw); by default it
    is inferred from the file suffix.  The legacy boolean ``compressed``
    keyword still selects gzip.
    """

    def __init__(self, path: str | Path,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 compression: str | None = None,
                 compressed: bool | None = None) -> None:
        super().__init__(path, chunk_bytes)
        if compression is None:
            if compressed is not None:
                compression = "gz" if compressed else None
            else:
                name = str(path).lower()
                if name.endswith(".gz"):
                    compression = "gz"
                elif name.endswith(".xz"):
                    compression = "xz"
        elif compression not in _COMPRESSION_OPENERS:
            raise ValueError(f"unknown compression {compression!r}; "
                             f"known: {sorted(_COMPRESSION_OPENERS)} or None")
        self.compression = compression
        self.compressed = compression is not None
        self.format = f"champsim.{compression}" if compression else "champsim"

    def _open(self) -> BinaryIO:
        if self.compression is not None:
            opener = _COMPRESSION_OPENERS[self.compression]
            return opener(self.path, "rb")  # type: ignore[return-value]
        return open(self.path, "rb")

    def _records_per_chunk(self) -> int:
        return max(1, self.chunk_bytes // CHAMPSIM_DTYPE.itemsize)

    def __iter__(self) -> Iterator[AddressArray]:
        record_bytes = CHAMPSIM_DTYPE.itemsize
        read_bytes = self._records_per_chunk() * record_bytes
        with self._open() as fh:
            while True:
                buf = fh.read(read_bytes)
                if not buf:
                    return
                if len(buf) % record_bytes:
                    raise ValueError(
                        f"{self.path}: truncated ChampSim trace — trailing "
                        f"{len(buf) % record_bytes} bytes do not form a "
                        f"{record_bytes}-byte record")
                records = np.frombuffer(buf, dtype=CHAMPSIM_DTYPE)
                yield np.ascontiguousarray(records["ip"], dtype=np.uint64)

    def count(self) -> int:
        record_bytes = CHAMPSIM_DTYPE.itemsize
        if not self.compressed:
            size = self.path.stat().st_size
            if size % record_bytes:
                raise ValueError(f"{self.path}: size {size} is not a multiple "
                                 f"of the {record_bytes}-byte record")
            return size // record_bytes
        # Compressed: the payload size is only knowable by decompressing.
        total = 0
        with self._open() as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                total += len(block)
        if total % record_bytes:
            raise ValueError(f"{self.path}: decompressed size {total} is not "
                             f"a multiple of the {record_bytes}-byte record")
        return total // record_bytes


class NpySource(TraceSource):
    """``.npy`` address array, memory-mapped and sliced per chunk."""

    format = "npy"

    def _mmap(self) -> AddressArray:
        arr = np.load(self.path, mmap_mode="r")
        if arr.ndim != 1 or arr.dtype.kind not in "ui":
            raise ValueError(f"{self.path}: expected a 1-D unsigned/integer "
                             f"address array, got {arr.dtype} {arr.shape}")
        return arr

    def __iter__(self) -> Iterator[AddressArray]:
        arr = self._mmap()
        step = max(1, self.chunk_bytes // 8)
        for lo in range(0, len(arr), step):
            yield np.ascontiguousarray(arr[lo:lo + step], dtype=np.uint64)

    def count(self) -> int:
        return int(len(self._mmap()))


class NpzSource(TraceSource):
    """``.npz`` archive holding the address array under ``"addresses"``.

    Zip members cannot be memory-mapped, but they *can* be read as an
    incrementally-decompressing stream: the member's ``.npy`` header is
    parsed off the stream, then element bytes are pulled chunk by chunk,
    so the resident set is bounded by ``chunk_bytes`` — the archive is
    never materialized, however large the trace.
    """

    format = "npz"

    def _member_name(self, zf: zipfile.ZipFile) -> str:
        names = zf.namelist()
        if "addresses.npy" in names:
            return "addresses.npy"
        if len(names) != 1:
            raise ValueError(
                f"{self.path}: expected an 'addresses' array (or a "
                f"single-array archive), found {sorted(names)}")
        return names[0]

    def _read_header(self, fh: Any) -> tuple[int, np.dtype]:
        """Parse the member's ``.npy`` header; returns (count, dtype)."""
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            raise ValueError(f"{self.path}: unsupported .npy format version "
                             f"{version} inside the archive")
        if len(shape) != 1 or dtype.kind not in "ui" or dtype.hasobject:
            raise ValueError(f"{self.path}: expected a 1-D unsigned/integer "
                             f"address array, got {dtype} {shape}")
        return int(shape[0]), dtype

    def __iter__(self) -> Iterator[AddressArray]:
        with zipfile.ZipFile(self.path) as zf:
            with zf.open(self._member_name(zf)) as fh:
                total, dtype = self._read_header(fh)
                itemsize = dtype.itemsize
                per_chunk = max(1, self.chunk_bytes // max(itemsize, 8))
                remaining = total
                while remaining > 0:
                    take = min(per_chunk, remaining)
                    buf = fh.read(take * itemsize)
                    if len(buf) != take * itemsize:
                        raise ValueError(
                            f"{self.path}: truncated archive member — expected "
                            f"{take * itemsize} bytes, got {len(buf)}")
                    arr = np.frombuffer(buf, dtype=dtype)
                    yield np.ascontiguousarray(arr, dtype=np.uint64)
                    remaining -= take

    def count(self) -> int:
        with zipfile.ZipFile(self.path) as zf:
            with zf.open(self._member_name(zf)) as fh:
                total, _ = self._read_header(fh)
        return total


def open_trace(path: str | Path, chunk_bytes: int = DEFAULT_CHUNK_BYTES,
               format: str | None = None) -> TraceSource:
    """Open a trace file as a chunked :class:`TraceSource`."""
    fmt = format or detect_format(path)
    if fmt == "champsim":
        return ChampSimSource(path, chunk_bytes, compression=None,
                              compressed=False)
    if fmt == "champsim.gz":
        return ChampSimSource(path, chunk_bytes, compression="gz")
    if fmt == "champsim.xz":
        return ChampSimSource(path, chunk_bytes, compression="xz")
    if fmt == "npy":
        return NpySource(path, chunk_bytes)
    if fmt == "npz":
        return NpzSource(path, chunk_bytes)
    raise ValueError(f"unknown trace format {fmt!r}; known: {FORMATS}")


# -- writers ---------------------------------------------------------------


def _champsim_records(addresses: AddressArray) -> np.ndarray:
    records = np.zeros(len(addresses), dtype=CHAMPSIM_DTYPE)
    records["ip"] = np.asarray(addresses, dtype=np.uint64)
    return records


def write_trace(path: str | Path, chunks: Iterable[AddressArray],
                format: str | None = None) -> int:
    """Write address chunks to ``path`` (format from suffix unless given).

    ChampSim formats stream chunk by chunk; ``npy``/``npz`` buffer the
    full array (NumPy's writers are not incremental).  Returns the
    number of addresses written.
    """
    fmt = format or detect_format(path)
    if isinstance(chunks, np.ndarray):
        chunks = [chunks]
    written = 0
    if fmt in ("champsim", "champsim.gz", "champsim.xz"):
        opener = (_COMPRESSION_OPENERS[fmt.rsplit(".", 1)[1]]
                  if "." in fmt else open)
        with opener(path, "wb") as fh:  # type: ignore[operator]
            for chunk in chunks:
                fh.write(_champsim_records(chunk).tobytes())
                written += len(chunk)
        return written
    buffered = [np.ascontiguousarray(c, dtype=np.uint64) for c in chunks]
    addresses = (np.concatenate(buffered) if buffered
                 else np.zeros(0, dtype=np.uint64))
    if fmt == "npy":
        np.save(path, addresses)
    elif fmt == "npz":
        np.savez_compressed(path, addresses=addresses)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; known: {FORMATS}")
    return len(addresses)


def convert(src: str | Path | TraceSource, dst: str | Path,
            chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> int:
    """Convert a trace file (or an opened source) to another format."""
    source = src if isinstance(src, TraceSource) else open_trace(src, chunk_bytes)
    return write_trace(dst, iter(source))


# -- file-backed TraceSpec -------------------------------------------------


def file_spec(path: str | Path, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> TraceSpec:
    """Describe a trace file as an immutable ``kind="file"`` spec.

    The spec's params carry the content identity (``sha256``, ``format``)
    plus the advisory ``_path`` (excluded from results-cache keys); its
    ``n`` is the file's access count.
    """
    source = open_trace(path, chunk_bytes)
    return TraceSpec(FILE_KIND, source.count(), seed=0, params={
        "sha256": file_sha256(path),
        "format": source.format,
        "_path": str(Path(path).resolve()),
    })


def spec_source(spec: TraceSpec,
                chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                verify: bool = True) -> TraceSource:
    """Open the :class:`TraceSource` behind a ``kind="file"`` spec.

    ``verify`` hashes the file and demands it still matches the spec's
    ``sha256`` — the spec *is* the cache key, so simulating a file that
    drifted from its recorded content would poison the cache.  The hash
    is memoized per process keyed on (path, size, mtime), so a sweep
    worker verifying one trace against many configs pays the full-file
    SHA-256 pass once.
    """
    if spec.kind != FILE_KIND:
        raise ValueError(f"spec kind {spec.kind!r} is not {FILE_KIND!r}")
    path = spec.params.get("_path")
    if not path:
        raise ValueError(
            "file trace spec carries no '_path' advisory param (it was "
            "probably rebuilt from a cache entry on another machine); "
            "re-create it with emissary.trace_io.file_spec(<path>)")
    if verify:
        actual = verified_sha256(path)
        if actual != spec.params["sha256"]:
            raise ValueError(
                f"{path}: content hash {actual[:16]}... does not match the "
                f"spec's sha256 {spec.params['sha256'][:16]}... — the file "
                f"changed since file_spec() recorded it")
    return open_trace(path, chunk_bytes, format=spec.params.get("format"))


def load_spec_addresses(spec: TraceSpec,
                        verify: bool = True) -> AddressArray:
    """Load a ``kind="file"`` spec fully into memory (TraceSpec.generate)."""
    addresses = spec_source(spec, verify=verify).read_all()
    if len(addresses) != spec.n:
        raise ValueError(f"{spec.params.get('_path')}: holds {len(addresses)} "
                         f"accesses but the spec records n={spec.n}")
    return addresses


# -- CLI -------------------------------------------------------------------

_SYNTH_PREFIX = "synth:"


def _parse_param(text: str) -> tuple[str, Any]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"--param needs key=value, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value: Any = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            value = raw
    return key, value


def _synth_chunks(kind: str, n: int, seed: int,
                  params: dict[str, Any]) -> Iterable[AddressArray]:
    if kind not in GENERATORS:
        raise SystemExit(f"unknown synthetic trace kind {kind!r}; "
                         f"known: {sorted(GENERATORS)}")
    spec = TraceSpec(kind, n, seed, params)
    return [spec.generate()]


def _cmd_convert(args: argparse.Namespace) -> int:
    params = dict(args.param or [])
    if args.src.startswith(_SYNTH_PREFIX):
        kind = args.src[len(_SYNTH_PREFIX):]
        chunks = _synth_chunks(kind, args.n, args.seed, params)
        src_label = f"{kind} (synthetic, n={args.n}, seed={args.seed})"
    else:
        if params or args.n != DEFAULT_SYNTH_N or args.seed != 0:
            print("note: --n/--seed/--param only apply to synth: sources",
                  file=sys.stderr)
        chunks = iter(open_trace(args.src, args.chunk_bytes))
        src_label = args.src
    written = write_trace(args.dst, chunks)
    spec = file_spec(args.dst, args.chunk_bytes)
    print(f"{src_label} -> {args.dst} [{spec.params['format']}]: "
          f"{written} accesses, sha256 {spec.params['sha256'][:16]}...")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    source = open_trace(args.path, args.chunk_bytes)
    total = 0
    lines: set = set()
    head: list[int] = []
    for chunk in source:
        if len(head) < args.head:
            head.extend(chunk[:args.head - len(head)].tolist())
        total += len(chunk)
        lines.update(np.unique(chunk >> np.uint64(
            LINE_BYTES.bit_length() - 1)).tolist())
    sha = file_sha256(args.path)
    print(f"path:         {args.path}")
    print(f"format:       {source.format}")
    print(f"accesses:     {total}")
    print(f"unique lines: {len(lines)} "
          f"({len(lines) * LINE_BYTES / 1024:.1f} KiB footprint)")
    print(f"sha256:       {sha}")
    if head:
        shown = "  ".join(f"0x{a:x}" for a in head)
        print(f"head:         {shown}")
    return 0


DEFAULT_SYNTH_N = 1_000_000


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="emissary.trace_io", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    convert_p = sub.add_parser(
        "convert", help="convert a trace file (or synth:<kind>) to another format")
    convert_p.add_argument("src", help=f"source trace file, or "
                                       f"'{_SYNTH_PREFIX}<kind>' for a synthetic "
                                       f"trace ({', '.join(sorted(GENERATORS))})")
    convert_p.add_argument("dst", help="destination file (format from suffix)")
    convert_p.add_argument("--n", type=int, default=DEFAULT_SYNTH_N,
                           help="synthetic trace length (synth: sources)")
    convert_p.add_argument("--seed", type=int, default=0,
                           help="synthetic trace seed (synth: sources)")
    convert_p.add_argument("--param", type=_parse_param, action="append",
                           help="synthetic generator parameter key=value "
                                "(repeatable)")
    convert_p.add_argument("--chunk-bytes", type=int, default=DEFAULT_CHUNK_BYTES,
                           help="streaming memory budget per chunk")
    convert_p.set_defaults(func=_cmd_convert)

    inspect_p = sub.add_parser("inspect", help="summarize a trace file")
    inspect_p.add_argument("path")
    inspect_p.add_argument("--head", type=int, default=4,
                           help="leading addresses to print")
    inspect_p.add_argument("--chunk-bytes", type=int, default=DEFAULT_CHUNK_BYTES)
    inspect_p.set_defaults(func=_cmd_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
