"""C compiled-kernel provider (``cc``): gcc + ctypes, stdlib only.

Numba is the first-choice provider for the compiled backend, but plenty
of environments (including minimal CI images) have a C toolchain and no
numba wheel.  This module gives them the same compiled hot loop: the C
source below is a mechanical, line-for-line translation of
:mod:`emissary.compiled.kernels_py` (same state layout, same scan
orders, same IEEE-754 double comparisons — outcomes are bit-identical
and the differential suite checks it), compiled once per toolchain into
a shared library with ``cc -O3 -shared -fPIC`` and bound through
:mod:`ctypes`.

The build is cached under ``$EMISSARY_CC_CACHE`` (default: a
per-user directory inside the system temp dir) keyed by the SHA-256 of
the source plus the compiler identity, so repeated processes — sweep
workers, test runs — reuse one ``.so``.  Build failures surface as
:class:`CcBuildError` and the provider registry treats them as
"provider unavailable", never as a crash.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
from numpy.typing import NDArray

C_SOURCE = r"""
#include <stdint.h>

#define CTR_FILLS 0
#define CTR_EVICTIONS 1
#define CTR_DEAD_ON_FILL 2
#define CTR_EVICTIONS_HP 3
#define CTR_EVICTIONS_LP 4
#define CTR_HP_PROMOTIONS 5
#define STAT_HP_PROMOTIONS 0
#define STAT_HP_EVICTIONS 1
#define SRRIP_RRPV_MAX 3
#define SRRIP_RRPV_INSERT 2

int64_t emissary_lru_run(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        int64_t *tag_arr, int64_t *ts_arr, int64_t *size_arr,
        int64_t *clock, int64_t ways, uint8_t *hits) {
    int64_t c = clock[0];
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
        } else {
            hits[i] = 0;
            if (size < ways) {
                way = size;
                size_arr[s] = size + 1;
            } else {
                way = 0;
                int64_t best = ts_arr[base];
                for (int64_t w = 1; w < ways; w++) {
                    if (ts_arr[base + w] < best) {
                        best = ts_arr[base + w];
                        way = w;
                    }
                }
            }
            tag_arr[base + way] = tag;
        }
        ts_arr[base + way] = c;
        c += 1;
    }
    clock[0] = c;
    return 0;
}

int64_t emissary_lru_run_tel(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const int64_t *extra, int64_t *tag_arr, int64_t *ts_arr,
        int64_t *size_arr, int64_t *clock, int64_t *line_hits,
        int64_t *counters, int64_t *evbuf, int64_t ways, uint8_t *hits) {
    int64_t c = clock[0];
    int64_t fills = 0, evictions = 0, dead = 0, nev = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            line_hits[base + way] += 1 + extra[i];
            hits[i] = 1;
        } else {
            hits[i] = 0;
            if (size < ways) {
                way = size;
                size_arr[s] = size + 1;
            } else {
                way = 0;
                int64_t best = ts_arr[base];
                for (int64_t w = 1; w < ways; w++) {
                    if (ts_arr[base + w] < best) {
                        best = ts_arr[base + w];
                        way = w;
                    }
                }
                int64_t victim_hits = line_hits[base + way];
                evbuf[nev++] = victim_hits;
                evictions += 1;
                if (victim_hits == 0) dead += 1;
            }
            tag_arr[base + way] = tag;
            line_hits[base + way] = extra[i];
            fills += 1;
        }
        ts_arr[base + way] = c;
        c += 1;
    }
    clock[0] = c;
    counters[CTR_FILLS] += fills;
    counters[CTR_EVICTIONS] += evictions;
    counters[CTR_DEAD_ON_FILL] += dead;
    return nev;
}

int64_t emissary_random_run(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const double *u, int64_t *tag_arr, int64_t *size_arr,
        int64_t ways, uint8_t *hits) {
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
        } else {
            hits[i] = 0;
            if (size < ways) {
                way = size;
                size_arr[s] = size + 1;
            } else {
                way = (int64_t)(u[i] * (double)ways);
            }
            tag_arr[base + way] = tag;
        }
    }
    return 0;
}

int64_t emissary_random_run_tel(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const double *u, const int64_t *extra, int64_t *tag_arr,
        int64_t *size_arr, int64_t *line_hits, int64_t *counters,
        int64_t *evbuf, int64_t ways, uint8_t *hits) {
    int64_t fills = 0, evictions = 0, dead = 0, nev = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            line_hits[base + way] += 1 + extra[i];
            hits[i] = 1;
        } else {
            hits[i] = 0;
            if (size < ways) {
                way = size;
                size_arr[s] = size + 1;
            } else {
                way = (int64_t)(u[i] * (double)ways);
                int64_t victim_hits = line_hits[base + way];
                evbuf[nev++] = victim_hits;
                evictions += 1;
                if (victim_hits == 0) dead += 1;
            }
            tag_arr[base + way] = tag;
            line_hits[base + way] = extra[i];
            fills += 1;
        }
    }
    counters[CTR_FILLS] += fills;
    counters[CTR_EVICTIONS] += evictions;
    counters[CTR_DEAD_ON_FILL] += dead;
    return nev;
}

int64_t emissary_srrip_run(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const uint8_t *rep, int64_t *tag_arr, int64_t *rrpv_arr,
        int64_t *size_arr, int64_t ways, uint8_t *hits) {
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            rrpv_arr[base + way] = 0;
            hits[i] = 1;
        } else {
            hits[i] = 0;
            int64_t insert = rep[i] != 0 ? 0 : SRRIP_RRPV_INSERT;
            if (size < ways) {
                way = size;
                size_arr[s] = size + 1;
            } else {
                int64_t top = rrpv_arr[base];
                for (int64_t w = 1; w < ways; w++) {
                    if (rrpv_arr[base + w] > top) top = rrpv_arr[base + w];
                }
                if (top < SRRIP_RRPV_MAX) {
                    int64_t aging = SRRIP_RRPV_MAX - top;
                    for (int64_t w = 0; w < ways; w++) {
                        rrpv_arr[base + w] += aging;
                    }
                }
                way = 0;
                for (int64_t w = 0; w < ways; w++) {
                    if (rrpv_arr[base + w] == SRRIP_RRPV_MAX) {
                        way = w;
                        break;
                    }
                }
            }
            tag_arr[base + way] = tag;
            rrpv_arr[base + way] = insert;
        }
    }
    return 0;
}

int64_t emissary_srrip_run_tel(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const uint8_t *rep, const int64_t *extra, int64_t *tag_arr,
        int64_t *rrpv_arr, int64_t *size_arr, int64_t *line_hits,
        int64_t *counters, int64_t *evbuf, int64_t ways, uint8_t *hits) {
    int64_t fills = 0, evictions = 0, dead = 0, nev = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            rrpv_arr[base + way] = 0;
            line_hits[base + way] += 1 + extra[i];
            hits[i] = 1;
        } else {
            hits[i] = 0;
            int64_t insert = rep[i] != 0 ? 0 : SRRIP_RRPV_INSERT;
            if (size < ways) {
                way = size;
                size_arr[s] = size + 1;
            } else {
                int64_t top = rrpv_arr[base];
                for (int64_t w = 1; w < ways; w++) {
                    if (rrpv_arr[base + w] > top) top = rrpv_arr[base + w];
                }
                if (top < SRRIP_RRPV_MAX) {
                    int64_t aging = SRRIP_RRPV_MAX - top;
                    for (int64_t w = 0; w < ways; w++) {
                        rrpv_arr[base + w] += aging;
                    }
                }
                way = 0;
                for (int64_t w = 0; w < ways; w++) {
                    if (rrpv_arr[base + w] == SRRIP_RRPV_MAX) {
                        way = w;
                        break;
                    }
                }
                int64_t victim_hits = line_hits[base + way];
                evbuf[nev++] = victim_hits;
                evictions += 1;
                if (victim_hits == 0) dead += 1;
            }
            tag_arr[base + way] = tag;
            rrpv_arr[base + way] = insert;
            line_hits[base + way] = extra[i];
            fills += 1;
        }
    }
    counters[CTR_FILLS] += fills;
    counters[CTR_EVICTIONS] += evictions;
    counters[CTR_DEAD_ON_FILL] += dead;
    return nev;
}

int64_t emissary_emissary_run(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const double *u, const int64_t *cost, int64_t has_cost,
        int64_t *tag_arr, int64_t *ts_arr, int64_t *prio_arr,
        int64_t *size_arr, int64_t *hp_counts, int64_t *clock,
        int64_t *stats, int64_t ways, int64_t hp_threshold,
        int64_t prob_inv, int64_t min_cost, uint8_t *hits) {
    int64_t c = clock[0];
    double p_hit = 1.0 / (double)prob_inv;
    int64_t promotions = 0, hp_evictions = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
        } else {
            hits[i] = 0;
            int64_t hp = hp_counts[s];
            if (size == ways) {
                int64_t want = hp >= hp_threshold ? 1 : 0;
                way = -1;
                int64_t best = 0;
                for (int64_t w = 0; w < ways; w++) {
                    if (prio_arr[base + w] == want
                            && (way < 0 || ts_arr[base + w] < best)) {
                        best = ts_arr[base + w];
                        way = w;
                    }
                }
                if (way < 0) {  /* preferred class empty: overall LRU */
                    way = 0;
                    best = ts_arr[base];
                    for (int64_t w = 1; w < ways; w++) {
                        if (ts_arr[base + w] < best) {
                            best = ts_arr[base + w];
                            way = w;
                        }
                    }
                }
                if (prio_arr[base + way] != 0) {
                    hp -= 1;
                    hp_evictions += 1;
                }
            } else {
                way = size;
                size_arr[s] = size + 1;
            }
            if ((has_cost == 0 || cost[i] >= min_cost) && u[i] < p_hit
                    && hp < hp_threshold) {
                prio_arr[base + way] = 1;
                hp += 1;
                promotions += 1;
            } else {
                prio_arr[base + way] = 0;
            }
            hp_counts[s] = hp;
            tag_arr[base + way] = tag;
        }
        ts_arr[base + way] = c;
        c += 1;
    }
    clock[0] = c;
    stats[STAT_HP_PROMOTIONS] += promotions;
    stats[STAT_HP_EVICTIONS] += hp_evictions;
    return 0;
}

int64_t emissary_emissary_run_tel(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const double *u, const int64_t *cost, int64_t has_cost,
        const int64_t *extra, int64_t *tag_arr, int64_t *ts_arr,
        int64_t *prio_arr, int64_t *size_arr, int64_t *hp_counts,
        int64_t *clock, int64_t *line_hits, int64_t *counters,
        int64_t *evbuf, int64_t *stats, int64_t ways,
        int64_t hp_threshold, int64_t prob_inv, int64_t min_cost,
        uint8_t *hits) {
    int64_t c = clock[0];
    double p_hit = 1.0 / (double)prob_inv;
    int64_t promotions = 0, hp_evictions = 0;
    int64_t fills = 0, evictions = 0, dead = 0, lp_evictions = 0, nev = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            line_hits[base + way] += 1 + extra[i];
            hits[i] = 1;
        } else {
            hits[i] = 0;
            int64_t hp = hp_counts[s];
            if (size == ways) {
                int64_t want = hp >= hp_threshold ? 1 : 0;
                way = -1;
                int64_t best = 0;
                for (int64_t w = 0; w < ways; w++) {
                    if (prio_arr[base + w] == want
                            && (way < 0 || ts_arr[base + w] < best)) {
                        best = ts_arr[base + w];
                        way = w;
                    }
                }
                if (way < 0) {  /* preferred class empty: overall LRU */
                    way = 0;
                    best = ts_arr[base];
                    for (int64_t w = 1; w < ways; w++) {
                        if (ts_arr[base + w] < best) {
                            best = ts_arr[base + w];
                            way = w;
                        }
                    }
                }
                int64_t victim_hits = line_hits[base + way];
                evbuf[nev++] = victim_hits;
                evictions += 1;
                if (victim_hits == 0) dead += 1;
                if (prio_arr[base + way] != 0) {
                    hp -= 1;
                    hp_evictions += 1;
                } else {
                    lp_evictions += 1;
                }
            } else {
                way = size;
                size_arr[s] = size + 1;
            }
            if ((has_cost == 0 || cost[i] >= min_cost) && u[i] < p_hit
                    && hp < hp_threshold) {
                prio_arr[base + way] = 1;
                hp += 1;
                promotions += 1;
            } else {
                prio_arr[base + way] = 0;
            }
            hp_counts[s] = hp;
            tag_arr[base + way] = tag;
            line_hits[base + way] = extra[i];
            fills += 1;
        }
        ts_arr[base + way] = c;
        c += 1;
    }
    clock[0] = c;
    stats[STAT_HP_PROMOTIONS] += promotions;
    stats[STAT_HP_EVICTIONS] += hp_evictions;
    counters[CTR_FILLS] += fills;
    counters[CTR_EVICTIONS] += evictions;
    counters[CTR_DEAD_ON_FILL] += dead;
    counters[CTR_EVICTIONS_HP] += hp_evictions;
    counters[CTR_EVICTIONS_LP] += lp_evictions;
    counters[CTR_HP_PROMOTIONS] += promotions;
    return nev;
}

int64_t emissary_emissary_part_run(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const double *u, const int64_t *cost, int64_t has_cost,
        const int64_t *core, int64_t *tag_arr, int64_t *ts_arr,
        int64_t *prio_arr, int64_t *owner_arr, int64_t *size_arr,
        int64_t *hp_counts, int64_t *hp_by_core, const int64_t *quota,
        int64_t *clock, int64_t *stats, int64_t ways, int64_t num_cores,
        int64_t hp_threshold, int64_t prob_inv, int64_t min_cost,
        uint8_t *hits) {
    int64_t c = clock[0];
    double p_hit = 1.0 / (double)prob_inv;
    int64_t promotions = 0, hp_evictions = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
        } else {
            hits[i] = 0;
            int64_t hp = hp_counts[s];
            if (size == ways) {
                int64_t want = hp >= hp_threshold ? 1 : 0;
                way = -1;
                int64_t best = 0;
                for (int64_t w = 0; w < ways; w++) {
                    if (prio_arr[base + w] == want
                            && (way < 0 || ts_arr[base + w] < best)) {
                        best = ts_arr[base + w];
                        way = w;
                    }
                }
                if (way < 0) {  /* preferred class empty: overall LRU */
                    way = 0;
                    best = ts_arr[base];
                    for (int64_t w = 1; w < ways; w++) {
                        if (ts_arr[base + w] < best) {
                            best = ts_arr[base + w];
                            way = w;
                        }
                    }
                }
                if (prio_arr[base + way] != 0) {
                    hp -= 1;
                    hp_evictions += 1;
                    hp_by_core[s * num_cores + owner_arr[base + way]] -= 1;
                    owner_arr[base + way] = -1;
                }
            } else {
                way = size;
                size_arr[s] = size + 1;
            }
            int64_t cr = core[i];
            if ((has_cost == 0 || cost[i] >= min_cost) && u[i] < p_hit
                    && hp_by_core[s * num_cores + cr] < quota[cr]) {
                prio_arr[base + way] = 1;
                owner_arr[base + way] = cr;
                hp_by_core[s * num_cores + cr] += 1;
                hp += 1;
                promotions += 1;
            } else {
                prio_arr[base + way] = 0;
                owner_arr[base + way] = -1;
            }
            hp_counts[s] = hp;
            tag_arr[base + way] = tag;
        }
        ts_arr[base + way] = c;
        c += 1;
    }
    clock[0] = c;
    stats[STAT_HP_PROMOTIONS] += promotions;
    stats[STAT_HP_EVICTIONS] += hp_evictions;
    return 0;
}

int64_t emissary_emissary_part_run_tel(
        const int64_t *set_idx, const int64_t *tags, int64_t m,
        const double *u, const int64_t *cost, int64_t has_cost,
        const int64_t *core, const int64_t *extra, int64_t *tag_arr,
        int64_t *ts_arr, int64_t *prio_arr, int64_t *owner_arr,
        int64_t *size_arr, int64_t *hp_counts, int64_t *hp_by_core,
        const int64_t *quota, int64_t *clock, int64_t *line_hits,
        int64_t *counters, int64_t *evbuf, int64_t *stats, int64_t ways,
        int64_t num_cores, int64_t hp_threshold, int64_t prob_inv,
        int64_t min_cost, uint8_t *hits) {
    int64_t c = clock[0];
    double p_hit = 1.0 / (double)prob_inv;
    int64_t promotions = 0, hp_evictions = 0;
    int64_t fills = 0, evictions = 0, dead = 0, lp_evictions = 0, nev = 0;
    for (int64_t i = 0; i < m; i++) {
        int64_t s = set_idx[i];
        int64_t base = s * ways;
        int64_t tag = tags[i];
        int64_t size = size_arr[s];
        int64_t way = -1;
        for (int64_t w = 0; w < size; w++) {
            if (tag_arr[base + w] == tag) { way = w; break; }
        }
        if (way >= 0) {
            line_hits[base + way] += 1 + extra[i];
            hits[i] = 1;
        } else {
            hits[i] = 0;
            int64_t hp = hp_counts[s];
            if (size == ways) {
                int64_t want = hp >= hp_threshold ? 1 : 0;
                way = -1;
                int64_t best = 0;
                for (int64_t w = 0; w < ways; w++) {
                    if (prio_arr[base + w] == want
                            && (way < 0 || ts_arr[base + w] < best)) {
                        best = ts_arr[base + w];
                        way = w;
                    }
                }
                if (way < 0) {  /* preferred class empty: overall LRU */
                    way = 0;
                    best = ts_arr[base];
                    for (int64_t w = 1; w < ways; w++) {
                        if (ts_arr[base + w] < best) {
                            best = ts_arr[base + w];
                            way = w;
                        }
                    }
                }
                int64_t victim_hits = line_hits[base + way];
                evbuf[nev++] = victim_hits;
                evictions += 1;
                if (victim_hits == 0) dead += 1;
                if (prio_arr[base + way] != 0) {
                    hp -= 1;
                    hp_evictions += 1;
                    hp_by_core[s * num_cores + owner_arr[base + way]] -= 1;
                    owner_arr[base + way] = -1;
                } else {
                    lp_evictions += 1;
                }
            } else {
                way = size;
                size_arr[s] = size + 1;
            }
            int64_t cr = core[i];
            if ((has_cost == 0 || cost[i] >= min_cost) && u[i] < p_hit
                    && hp_by_core[s * num_cores + cr] < quota[cr]) {
                prio_arr[base + way] = 1;
                owner_arr[base + way] = cr;
                hp_by_core[s * num_cores + cr] += 1;
                hp += 1;
                promotions += 1;
            } else {
                prio_arr[base + way] = 0;
                owner_arr[base + way] = -1;
            }
            hp_counts[s] = hp;
            tag_arr[base + way] = tag;
            line_hits[base + way] = extra[i];
            fills += 1;
        }
        ts_arr[base + way] = c;
        c += 1;
    }
    clock[0] = c;
    stats[STAT_HP_PROMOTIONS] += promotions;
    stats[STAT_HP_EVICTIONS] += hp_evictions;
    counters[CTR_FILLS] += fills;
    counters[CTR_EVICTIONS] += evictions;
    counters[CTR_DEAD_ON_FILL] += dead;
    counters[CTR_EVICTIONS_HP] += hp_evictions;
    counters[CTR_EVICTIONS_LP] += lp_evictions;
    counters[CTR_HP_PROMOTIONS] += promotions;
    return nev;
}
"""


class CcBuildError(RuntimeError):
    """The C toolchain is missing or the kernel library failed to build."""


def find_compiler() -> str | None:
    """Path of a usable C compiler, or None.  ``$CC`` wins, then ``cc``
    and ``gcc``/``clang`` from PATH."""
    env_cc = os.environ.get("CC")
    candidates = [env_cc] if env_cc else []
    candidates += ["cc", "gcc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def _cache_dir() -> Path:
    configured = os.environ.get("EMISSARY_CC_CACHE")
    if configured:
        return Path(configured)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"emissary-cc-{uid}"


def build_library(compiler: str | None = None) -> Path:
    """Compile (or reuse) the kernel shared library; returns its path."""
    compiler = compiler or find_compiler()
    if compiler is None:
        raise CcBuildError(
            "no C compiler found (set $CC, or install gcc/clang/cc)")
    key = hashlib.sha256(
        (C_SOURCE + "\0" + compiler + "\0" + sys.platform).encode()
    ).hexdigest()[:24]
    suffix = ".dll" if sys.platform == "win32" else ".so"
    cache = _cache_dir()
    lib_path = cache / f"emissary_kernels_{key}{suffix}"
    if lib_path.exists():
        return lib_path
    cache.mkdir(parents=True, exist_ok=True)
    src_path = cache / f"emissary_kernels_{key}.c"
    src_path.write_text(C_SOURCE)
    tmp_path = cache / f"emissary_kernels_{key}.{os.getpid()}.tmp{suffix}"
    cmd = [compiler, "-O3", "-fPIC", "-shared",
           str(src_path), "-o", str(tmp_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise CcBuildError(
            f"kernel library build failed ({' '.join(cmd)}):\n{proc.stderr}")
    # Atomic publish so concurrent builders (sweep workers) cannot load
    # a half-written library.
    os.replace(tmp_path, lib_path)
    return lib_path


_I64 = NDArray[np.int64]
_U8 = NDArray[np.uint8]
_F64 = NDArray[np.float64]


def _ptr(arr: NDArray) -> "ctypes.c_int64":  # type: ignore[type-arg]
    # Every kernel parameter is an int64 or a 64-bit pointer; wrapping
    # each argument in c_int64 keeps the ctypes marshalling 8 bytes wide
    # (a bare Python int would be passed as a 32-bit C int).
    return ctypes.c_int64(arr.ctypes.data)


def _i64(value: int) -> "ctypes.c_int64":
    return ctypes.c_int64(value)


class CcKernels:
    """ctypes bindings exposing the same callables as ``kernels_py``."""

    name = "cc"

    def __init__(self, lib_path: Path) -> None:
        self.lib_path = lib_path
        lib = ctypes.CDLL(str(lib_path))
        for symbol in (
                "emissary_lru_run", "emissary_lru_run_tel",
                "emissary_random_run", "emissary_random_run_tel",
                "emissary_srrip_run", "emissary_srrip_run_tel",
                "emissary_emissary_run", "emissary_emissary_run_tel",
                "emissary_emissary_part_run",
                "emissary_emissary_part_run_tel"):
            fn = getattr(lib, symbol)
            fn.restype = ctypes.c_int64
            fn.argtypes = None  # all-int marshalling via raw addresses
        self._lib = lib

    # Each wrapper mirrors the kernels_py signature exactly, so the
    # dispatcher treats every provider identically.

    def lru_run(self, set_idx: _I64, tags: _I64, tag_arr: _I64, ts_arr: _I64,
                size_arr: _I64, clock: _I64, ways: int, hits: _U8) -> int:
        return int(self._lib.emissary_lru_run(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(tag_arr),
            _ptr(ts_arr), _ptr(size_arr), _ptr(clock), _i64(ways),
            _ptr(hits)))

    def lru_run_tel(self, set_idx: _I64, tags: _I64, extra: _I64,
                    tag_arr: _I64, ts_arr: _I64, size_arr: _I64, clock: _I64,
                    line_hits: _I64, counters: _I64, evbuf: _I64, ways: int,
                    hits: _U8) -> int:
        return int(self._lib.emissary_lru_run_tel(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(extra),
            _ptr(tag_arr), _ptr(ts_arr), _ptr(size_arr), _ptr(clock),
            _ptr(line_hits), _ptr(counters), _ptr(evbuf), _i64(ways),
            _ptr(hits)))

    def random_run(self, set_idx: _I64, tags: _I64, u: _F64, tag_arr: _I64,
                   size_arr: _I64, ways: int, hits: _U8) -> int:
        return int(self._lib.emissary_random_run(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(u),
            _ptr(tag_arr), _ptr(size_arr), _i64(ways), _ptr(hits)))

    def random_run_tel(self, set_idx: _I64, tags: _I64, u: _F64, extra: _I64,
                       tag_arr: _I64, size_arr: _I64, line_hits: _I64,
                       counters: _I64, evbuf: _I64, ways: int,
                       hits: _U8) -> int:
        return int(self._lib.emissary_random_run_tel(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(u),
            _ptr(extra), _ptr(tag_arr), _ptr(size_arr), _ptr(line_hits),
            _ptr(counters), _ptr(evbuf), _i64(ways), _ptr(hits)))

    def srrip_run(self, set_idx: _I64, tags: _I64, rep: _U8, tag_arr: _I64,
                  rrpv_arr: _I64, size_arr: _I64, ways: int,
                  hits: _U8) -> int:
        return int(self._lib.emissary_srrip_run(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(rep),
            _ptr(tag_arr), _ptr(rrpv_arr), _ptr(size_arr), _i64(ways),
            _ptr(hits)))

    def srrip_run_tel(self, set_idx: _I64, tags: _I64, rep: _U8, extra: _I64,
                      tag_arr: _I64, rrpv_arr: _I64, size_arr: _I64,
                      line_hits: _I64, counters: _I64, evbuf: _I64, ways: int,
                      hits: _U8) -> int:
        return int(self._lib.emissary_srrip_run_tel(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(rep),
            _ptr(extra), _ptr(tag_arr), _ptr(rrpv_arr), _ptr(size_arr),
            _ptr(line_hits), _ptr(counters), _ptr(evbuf), _i64(ways),
            _ptr(hits)))

    def emissary_run(self, set_idx: _I64, tags: _I64, u: _F64, cost: _I64,
                     has_cost: int, tag_arr: _I64, ts_arr: _I64,
                     prio_arr: _I64, size_arr: _I64, hp_counts: _I64,
                     clock: _I64, stats: _I64, ways: int, hp_threshold: int,
                     prob_inv: int, min_cost: int, hits: _U8) -> int:
        return int(self._lib.emissary_emissary_run(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(u),
            _ptr(cost), _i64(has_cost), _ptr(tag_arr), _ptr(ts_arr),
            _ptr(prio_arr), _ptr(size_arr), _ptr(hp_counts), _ptr(clock),
            _ptr(stats), _i64(ways), _i64(hp_threshold), _i64(prob_inv),
            _i64(min_cost), _ptr(hits)))

    def emissary_run_tel(self, set_idx: _I64, tags: _I64, u: _F64,
                         cost: _I64, has_cost: int, extra: _I64,
                         tag_arr: _I64, ts_arr: _I64, prio_arr: _I64,
                         size_arr: _I64, hp_counts: _I64, clock: _I64,
                         line_hits: _I64, counters: _I64, evbuf: _I64,
                         stats: _I64, ways: int, hp_threshold: int,
                         prob_inv: int, min_cost: int, hits: _U8) -> int:
        return int(self._lib.emissary_emissary_run_tel(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(u),
            _ptr(cost), _i64(has_cost), _ptr(extra), _ptr(tag_arr),
            _ptr(ts_arr), _ptr(prio_arr), _ptr(size_arr), _ptr(hp_counts),
            _ptr(clock), _ptr(line_hits), _ptr(counters), _ptr(evbuf),
            _ptr(stats), _i64(ways), _i64(hp_threshold), _i64(prob_inv),
            _i64(min_cost), _ptr(hits)))

    def emissary_part_run(self, set_idx: _I64, tags: _I64, u: _F64,
                          cost: _I64, has_cost: int, core: _I64,
                          tag_arr: _I64, ts_arr: _I64, prio_arr: _I64,
                          owner_arr: _I64, size_arr: _I64, hp_counts: _I64,
                          hp_by_core: _I64, quota: _I64, clock: _I64,
                          stats: _I64, ways: int, num_cores: int,
                          hp_threshold: int, prob_inv: int, min_cost: int,
                          hits: _U8) -> int:
        return int(self._lib.emissary_emissary_part_run(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(u),
            _ptr(cost), _i64(has_cost), _ptr(core), _ptr(tag_arr),
            _ptr(ts_arr), _ptr(prio_arr), _ptr(owner_arr), _ptr(size_arr),
            _ptr(hp_counts), _ptr(hp_by_core), _ptr(quota), _ptr(clock),
            _ptr(stats), _i64(ways), _i64(num_cores), _i64(hp_threshold),
            _i64(prob_inv), _i64(min_cost), _ptr(hits)))

    def emissary_part_run_tel(self, set_idx: _I64, tags: _I64, u: _F64,
                              cost: _I64, has_cost: int, core: _I64,
                              extra: _I64, tag_arr: _I64, ts_arr: _I64,
                              prio_arr: _I64, owner_arr: _I64,
                              size_arr: _I64, hp_counts: _I64,
                              hp_by_core: _I64, quota: _I64, clock: _I64,
                              line_hits: _I64, counters: _I64, evbuf: _I64,
                              stats: _I64, ways: int, num_cores: int,
                              hp_threshold: int, prob_inv: int,
                              min_cost: int, hits: _U8) -> int:
        return int(self._lib.emissary_emissary_part_run_tel(
            _ptr(set_idx), _ptr(tags), _i64(len(set_idx)), _ptr(u),
            _ptr(cost), _i64(has_cost), _ptr(core), _ptr(extra),
            _ptr(tag_arr), _ptr(ts_arr), _ptr(prio_arr), _ptr(owner_arr),
            _ptr(size_arr), _ptr(hp_counts), _ptr(hp_by_core), _ptr(quota),
            _ptr(clock), _ptr(line_hits), _ptr(counters), _ptr(evbuf),
            _ptr(stats), _i64(ways), _i64(num_cores), _i64(hp_threshold),
            _i64(prob_inv), _i64(min_cost), _ptr(hits)))


def load_kernels() -> CcKernels:
    """Build (or reuse) the shared library and bind its kernels."""
    return CcKernels(build_library())
