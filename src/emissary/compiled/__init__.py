"""Compiled kernel backend: provider registry + batch dispatcher.

The batched Python engine pays three per-access costs the policies
themselves don't need: the stable set-major sort, the NumPy->list
conversion per set chunk, and the Python bytecode of the kernel loops.
The compiled backend removes all three — accesses stay in **trace
order** (sets are independent, so per-set state evolution is identical;
see :mod:`emissary.compiled.kernels_py` for the proof obligations) and
one call into native code processes the whole batch over flat per-set
state arrays.

Three providers implement the same ten kernel entry points:

``numba``
    ``@njit`` over ``kernels_py`` (optional dependency; install extra
    ``emissary[compiled]``).  First use pays JIT compilation.
``cc``
    A C translation compiled on demand with the system C compiler and
    bound via ``ctypes`` — no third-party dependency at all.
``python``
    ``kernels_py`` executed by the interpreter.  Slow (it exists so the
    kernel logic is always testable), so it is *not* auto-selected.

:func:`get_kernels` picks the first available provider in the order
``numba``, ``cc``.  The ``EMISSARY_COMPILED`` environment variable
overrides: ``off`` disables the backend entirely (engines fall back to
the batched Python kernels with a warning), any provider name pins the
auto choice.  Requesting a specific unavailable provider raises
:class:`CompiledUnavailableError` — auto selection with no provider
available also raises it, and the *engine* turns that into a
warn-and-fall-back unless the caller pinned a provider.

Outcome contract: bit-identical hit vectors, policy stats, telemetry
counters, and histograms versus the batched Python kernels and the
naive reference — enforced by the differential test suite and the
runtime sanitizer.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import NDArray

from emissary.compiled import kernels_py
from emissary.compiled.kernels_py import (
    CTR_DEAD_ON_FILL,
    CTR_EVICTIONS,
    CTR_EVICTIONS_HP,
    CTR_EVICTIONS_LP,
    CTR_FILLS,
    CTR_HP_PROMOTIONS,
    NUM_COUNTERS,
    NUM_STATS,
    STAT_HP_EVICTIONS,
    STAT_HP_PROMOTIONS,
)
from emissary.policies.emissary import (
    DEFAULT_HP_BUDGET,
    DEFAULT_HP_THRESHOLD,
    DEFAULT_MIN_L1_MISSES,
    DEFAULT_PROB_INV,
    _check_params,
    core_quotas,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.telemetry import Telemetry

BoolArray = NDArray[np.bool_]
IndexArray = NDArray[np.int64]
UniformArray = NDArray[np.float64]

#: Auto-selection order.  ``python`` is deliberately absent: it is the
#: same interpreter loop the batched engine already beats, so silently
#: "succeeding" with it would defeat the point of asking for compiled.
PROVIDER_ORDER = ("numba", "cc")

#: All loadable provider names (``python`` must be requested explicitly).
PROVIDER_NAMES = ("numba", "cc", "python")

COMPILED_ENV = "EMISSARY_COMPILED"

POLICY_NAMES = ("lru", "random", "srrip", "emissary")


class CompiledUnavailableError(RuntimeError):
    """No compiled kernel provider could be loaded (or it was disabled)."""


class PyKernels:
    """Interpreter provider: ``kernels_py`` called directly (test/debug)."""

    name = "python"

    def __init__(self) -> None:
        for fn_name in kernels_py.KERNEL_NAMES:
            setattr(self, fn_name, getattr(kernels_py, fn_name))


def _load_provider(name: str) -> Any:
    if name == "numba":
        from emissary.compiled import numba_backend
        return numba_backend.load_kernels()
    if name == "cc":
        from emissary.compiled import cc_backend
        return cc_backend.load_kernels()
    if name == "python":
        return PyKernels()
    raise ValueError(
        f"unknown compiled provider {name!r} (expected one of {PROVIDER_NAMES})")


#: Loaded provider objects by name; failures cached as error strings so
#: e.g. a missing C compiler is probed once per process, not per run.
_provider_cache: dict[str, Any] = {}
_failure_cache: dict[str, str] = {}


def reset_provider_cache() -> None:
    """Forget cached providers and failures (tests re-probe after
    monkeypatching the environment)."""
    _provider_cache.clear()
    _failure_cache.clear()


def _env_choice() -> str:
    return os.environ.get(COMPILED_ENV, "").strip().lower()


def available_providers() -> tuple[str, ...]:
    """Provider names auto-selection may try, in preference order,
    honoring ``EMISSARY_COMPILED`` (``off`` -> none, a name -> just it)."""
    env = _env_choice()
    if env == "off":
        return ()
    if env in PROVIDER_NAMES:
        return (env,)
    if env not in ("", "auto"):
        raise ValueError(
            f"{COMPILED_ENV}={env!r} not understood (expected 'off', "
            f"'auto', or one of {PROVIDER_NAMES})")
    return PROVIDER_ORDER


def _try_load(name: str) -> Any | None:
    if name in _provider_cache:
        return _provider_cache[name]
    if name in _failure_cache:
        return None
    try:
        kernels = _load_provider(name)
    except Exception as exc:  # ImportError / CcBuildError / OSError
        _failure_cache[name] = f"{name}: {exc}"
        return None
    _provider_cache[name] = kernels
    return kernels


def get_kernels(provider: str | None = None) -> Any:
    """Load a kernel provider (cached per process).

    ``provider=None`` auto-selects via :func:`available_providers`;
    naming one pins it (and still respects ``EMISSARY_COMPILED=off``,
    the operational kill-switch).  Raises
    :class:`CompiledUnavailableError` with the collected per-provider
    reasons when nothing can be loaded.
    """
    if _env_choice() == "off":
        raise CompiledUnavailableError(
            f"compiled kernels disabled via {COMPILED_ENV}=off")
    if provider is not None:
        if provider not in PROVIDER_NAMES:
            raise ValueError(f"unknown compiled provider {provider!r} "
                             f"(expected one of {PROVIDER_NAMES})")
        kernels = _try_load(provider)
        if kernels is None:
            raise CompiledUnavailableError(_failure_cache[provider])
        return kernels
    tried: list[str] = []
    for name in available_providers():
        kernels = _try_load(name)
        if kernels is not None:
            return kernels
        tried.append(_failure_cache[name])
    raise CompiledUnavailableError(
        "no compiled kernel provider available"
        + (f" ({'; '.join(tried)})" if tried else ""))


class CompiledKernel:
    """Batch dispatcher over one provider's native kernels.

    Mirrors the :class:`~emissary.policies.base.PolicyKernel` surface
    the engines rely on (``needs_rng`` / ``needs_repeat_flags`` /
    ``consumes_cost`` flags, ``attach_telemetry`` /
    ``telemetry_finalize`` / ``extra_stats``), but replaces the per-set
    ``run_set`` with :meth:`run_batch`: one call per engine dispatch,
    accesses in trace order, no set-major sort required.

    State lives in flat preallocated int64 arrays (``num_sets * ways``
    per channel) shared across dispatches, so streamed chunked execution
    carries state exactly like the Python kernels do.

    Telemetry semantics match the instrumented Python kernels name for
    name: counter deltas accumulate in a packed int64 array inside the
    native loop and fold into the registry at
    :meth:`telemetry_finalize`; per-eviction victim hit counts come back
    through a per-dispatch buffer and feed the ``line_hits`` histogram.
    """

    def __init__(self, kernels: Any, policy: str, num_sets: int, ways: int,
                 **params: Any) -> None:
        if policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {policy!r} "
                             f"(expected one of {POLICY_NAMES})")
        self.provider = kernels.name
        self._kernels = kernels
        self.policy = policy
        self.name = policy
        self.num_sets = num_sets
        self.ways = ways
        self.params = dict(params)
        self.needs_rng = policy in ("random", "emissary")
        self.needs_repeat_flags = policy == "srrip"
        self.consumes_cost = policy == "emissary"
        self.consumes_core = False
        self._partitioned = False
        self._tel: "Telemetry" | None = None
        self._dispatches = 0

        lines = num_sets * ways
        self._tag = np.zeros(lines, dtype=np.int64)
        self._size = np.zeros(num_sets, dtype=np.int64)
        if policy in ("lru", "emissary"):
            self._ts = np.zeros(lines, dtype=np.int64)
            # Clock starts at 1 (like the naive references) so a zero
            # timestamp always means "never filled".
            self._clock = np.ones(1, dtype=np.int64)
        if policy == "srrip":
            self._rrpv = np.zeros(lines, dtype=np.int64)
        if policy == "emissary":
            self.hp_threshold = int(
                self.params.get("hp_threshold", DEFAULT_HP_THRESHOLD))
            self.prob_inv = int(self.params.get("prob_inv", DEFAULT_PROB_INV))
            self.min_l1_misses = int(
                self.params.get("min_l1_misses", DEFAULT_MIN_L1_MISSES))
            self.hp_budget = str(
                self.params.get("hp_budget", DEFAULT_HP_BUDGET))
            # Execution context injected by the engine, not a policy
            # parameter (see ``_make_engine_kernel``).
            self.num_cores = int(self.params.pop("num_cores", 1))
            _check_params(ways, self.hp_threshold, self.prob_inv,
                          self.min_l1_misses, self.hp_budget, self.num_cores)
            self._prio = np.zeros(lines, dtype=np.int64)
            self._hp = np.zeros(num_sets, dtype=np.int64)
            self._stats = np.zeros(NUM_STATS, dtype=np.int64)
            self._dummy_cost = np.zeros(0, dtype=np.int64)
            self._partitioned = self.hp_budget == "partitioned"
            if self._partitioned:
                self.consumes_core = True
                self._owner = np.full(lines, -1, dtype=np.int64)
                self._hp_by_core = np.zeros(num_sets * self.num_cores,
                                            dtype=np.int64)
                self._quota = np.asarray(
                    core_quotas(self.hp_threshold, self.num_cores),
                    dtype=np.int64)

    # -- execution --------------------------------------------------------

    def run_batch(self, set_idx: IndexArray, tags: IndexArray,
                  u: UniformArray | None = None,
                  rep: NDArray[np.bool_] | None = None,
                  cost: IndexArray | None = None,
                  extra: IndexArray | None = None,
                  core: IndexArray | None = None) -> BoolArray:
        """Simulate one batch of accesses **in trace order**.

        ``set_idx`` / ``tags`` are aligned per access; ``u`` / ``rep`` /
        ``cost`` / ``extra`` / ``core`` follow the same contract as
        :meth:`~emissary.policies.base.PolicyKernel.run_set`.  Returns
        the per-access hit/miss outcomes.
        """
        m = len(set_idx)
        hits = np.empty(m, dtype=np.bool_)
        if m == 0:
            return hits
        set_idx = np.ascontiguousarray(set_idx, dtype=np.int64)
        tags = np.ascontiguousarray(tags, dtype=np.int64)
        h8 = hits.view(np.uint8)
        k = self._kernels
        ways = self.ways
        policy = self.policy
        self._dispatches += 1
        if self._tel is None:
            if policy == "lru":
                k.lru_run(set_idx, tags, self._tag, self._ts, self._size,
                          self._clock, ways, h8)
            elif policy == "random":
                assert u is not None
                k.random_run(set_idx, tags,
                             np.ascontiguousarray(u, dtype=np.float64),
                             self._tag, self._size, ways, h8)
            elif policy == "srrip":
                assert rep is not None
                k.srrip_run(set_idx, tags,
                            np.ascontiguousarray(rep, dtype=np.uint8),
                            self._tag, self._rrpv, self._size, ways, h8)
            elif self._partitioned:
                assert u is not None
                cost_arr, has_cost = self._cost_args(cost)
                k.emissary_part_run(set_idx, tags,
                                    np.ascontiguousarray(u, dtype=np.float64),
                                    cost_arr, has_cost, self._core_arg(core, m),
                                    self._tag, self._ts, self._prio,
                                    self._owner, self._size, self._hp,
                                    self._hp_by_core, self._quota, self._clock,
                                    self._stats, ways, self.num_cores,
                                    self.hp_threshold, self.prob_inv,
                                    self.min_l1_misses, h8)
            else:
                assert u is not None
                cost_arr, has_cost = self._cost_args(cost)
                k.emissary_run(set_idx, tags,
                               np.ascontiguousarray(u, dtype=np.float64),
                               cost_arr, has_cost, self._tag, self._ts,
                               self._prio, self._size, self._hp, self._clock,
                               self._stats, ways, self.hp_threshold,
                               self.prob_inv, self.min_l1_misses, h8)
            return hits

        tel = self._tel
        assert extra is not None
        extra_arr = np.ascontiguousarray(extra, dtype=np.int64)
        evbuf = np.empty(m, dtype=np.int64)
        if policy == "lru":
            nev = k.lru_run_tel(set_idx, tags, extra_arr, self._tag, self._ts,
                                self._size, self._clock, self._line_hits,
                                self._counters, evbuf, ways, h8)
        elif policy == "random":
            assert u is not None
            nev = k.random_run_tel(set_idx, tags,
                                   np.ascontiguousarray(u, dtype=np.float64),
                                   extra_arr, self._tag, self._size,
                                   self._line_hits, self._counters, evbuf,
                                   ways, h8)
        elif policy == "srrip":
            assert rep is not None
            nev = k.srrip_run_tel(set_idx, tags,
                                  np.ascontiguousarray(rep, dtype=np.uint8),
                                  extra_arr, self._tag, self._rrpv, self._size,
                                  self._line_hits, self._counters, evbuf,
                                  ways, h8)
        elif self._partitioned:
            assert u is not None
            cost_arr, has_cost = self._cost_args(cost)
            nev = k.emissary_part_run_tel(
                set_idx, tags, np.ascontiguousarray(u, dtype=np.float64),
                cost_arr, has_cost, self._core_arg(core, m), extra_arr,
                self._tag, self._ts, self._prio, self._owner, self._size,
                self._hp, self._hp_by_core, self._quota, self._clock,
                self._line_hits, self._counters, evbuf, self._stats, ways,
                self.num_cores, self.hp_threshold, self.prob_inv,
                self.min_l1_misses, h8)
        else:
            assert u is not None
            cost_arr, has_cost = self._cost_args(cost)
            nev = k.emissary_run_tel(set_idx, tags,
                                     np.ascontiguousarray(u, dtype=np.float64),
                                     cost_arr, has_cost, extra_arr, self._tag,
                                     self._ts, self._prio, self._size,
                                     self._hp, self._clock, self._line_hits,
                                     self._counters, evbuf, self._stats, ways,
                                     self.hp_threshold, self.prob_inv,
                                     self.min_l1_misses, h8)
        if nev:
            tel.observe_many("line_hits", evbuf[:nev].tolist())
        return hits

    def _cost_args(self, cost: IndexArray | None) -> tuple[IndexArray, int]:
        """(cost array, has_cost flag); the kernels never index the
        zero-length dummy because ``has_cost == 0`` short-circuits."""
        if cost is None:
            return self._dummy_cost, 0
        return np.ascontiguousarray(cost, dtype=np.int64), 1

    def _core_arg(self, core: IndexArray | None, m: int) -> IndexArray:
        """Partitioned kernels index ``core`` unconditionally; a
        core-less caller (single-core engine) is treated as core 0."""
        if core is None:
            return np.zeros(m, dtype=np.int64)
        return np.ascontiguousarray(core, dtype=np.int64)

    # -- telemetry --------------------------------------------------------

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Enable instrumentation (must precede the first access):
        dispatches switch to the ``*_tel`` kernels, which maintain
        per-line hit counts and the packed counter array."""
        self._tel = telemetry
        self._line_hits = np.zeros(self.num_sets * self.ways, dtype=np.int64)
        self._counters = np.zeros(NUM_COUNTERS, dtype=np.int64)

    def telemetry_finalize(self) -> None:
        """Fold the packed counters and end-of-run histograms into the
        registry — same names, same values as the instrumented Python
        kernels (the telemetry parity tests compare them)."""
        tel = self._tel
        if tel is None:
            return
        ctr = self._counters
        if self._dispatches:
            # The Python kernels create these counters on their first
            # dispatch; zero dispatches must leave them absent here too.
            tel.inc("fills", int(ctr[CTR_FILLS]))
            tel.inc("evictions", int(ctr[CTR_EVICTIONS]))
            tel.inc("dead_on_fill", int(ctr[CTR_DEAD_ON_FILL]))
            if self.policy == "emissary":
                tel.inc("evictions_hp", int(ctr[CTR_EVICTIONS_HP]))
                tel.inc("evictions_lp", int(ctr[CTR_EVICTIONS_LP]))
                tel.inc("hp_promotions", int(ctr[CTR_HP_PROMOTIONS]))
                tel.inc("hp_demotions", int(ctr[CTR_EVICTIONS_HP]))
        resident = (np.arange(self.ways, dtype=np.int64)[None, :]
                    < self._size[:, None])
        tel.observe_many(
            "resident_line_hits",
            self._line_hits.reshape(self.num_sets, self.ways)[resident].tolist())
        if self.policy == "emissary":
            tel.observe_many("hp_set_occupancy", self._hp.tolist())
            tel.inc("hp_lines_final", int(self._hp.sum()))

    def extra_stats(self) -> dict[str, Any]:
        if self.policy != "emissary":
            return {}
        stats = {
            "hp_threshold": self.hp_threshold,
            "prob_inv": self.prob_inv,
            "min_l1_misses": self.min_l1_misses,
            "hp_promotions": int(self._stats[STAT_HP_PROMOTIONS]),
            "hp_evictions": int(self._stats[STAT_HP_EVICTIONS]),
            "hp_lines_final": int(self._hp.sum()),
        }
        if self._partitioned:
            stats["hp_budget"] = self.hp_budget
            stats["hp_lines_final_by_core"] = (
                self._hp_by_core.reshape(self.num_sets, self.num_cores)
                .sum(axis=0).tolist())
        return stats

    # -- introspection (sanitizer / tests) --------------------------------

    def set_size(self, set_index: int) -> int:
        return int(self._size[set_index])

    def resident_tags(self, set_index: int) -> list[int]:
        base = set_index * self.ways
        return self._tag[base:base + self.set_size(set_index)].tolist()


def make_compiled_kernel(policy: str, num_sets: int, ways: int,
                         provider: str | None = None,
                         **params: Any) -> CompiledKernel:
    """Load a provider (auto unless pinned) and build a
    :class:`CompiledKernel` for ``policy`` over a ``num_sets x ways``
    geometry.  Raises :class:`CompiledUnavailableError` when no provider
    can be loaded."""
    return CompiledKernel(get_kernels(provider), policy, num_sets, ways,
                          **params)
