"""Nopython-style policy kernels over flat per-set state arrays.

These functions are the single source of truth for the compiled backend:
the ``numba`` provider jits them unchanged (``@njit`` nopython mode), the
``cc`` provider mirrors them line for line in C (see ``cc_backend.py``
— the translation is kept mechanical on purpose), and the ``python``
provider calls them as-is so the kernel logic is exercised by the test
suite even where no compiler is available.

They are therefore written in the numba-compatible subset of Python:
plain ``range`` loops over preallocated NumPy arrays, int64/float64/uint8
scalars, no dicts, no lists, no closures, no allocation.

Semantics contract — bit-identical to the batched Python kernels in
:mod:`emissary.policies` (proven by the differential suite):

* Accesses arrive in **trace order** (``set_idx`` / ``tags`` aligned
  per access).  Sets are independent, so trace-order processing equals
  the batched engine's set-major processing access for access — and it
  lets the compiled path skip the stable sort entirely.
* Ways fill in physical order ``0 .. ways-1`` and never invalidate, so
  ``size[s]`` fully describes residency (no tag sentinel needed).
* LRU / EMISSARY recency is a per-line int64 timestamp from one global
  monotonically increasing clock (``clock[0]``), exactly like the naive
  reference implementations; timestamps are unique, so the LRU victim
  (minimum timestamp) is total-ordered and matches dict recency order.
* RANDOM's victim is ``int(u_i * ways)`` — physical way positions match
  the batched kernel because cold fills append at index ``size``.
* SRRIP inserts at ``RRPV_MAX - 1`` (0 when the fill is immediately
  re-referenced — the engine's repeat flag), promotes to 0 on hit, ages
  every way by ``RRPV_MAX - max(rrpv)`` when no way is at the maximum,
  and evicts the lowest-index way at the maximum.
* EMISSARY's two-class victim search prefers the LRU line among
  low-priority ways (high-priority once the set is HP-saturated); an
  empty preferred class falls back to the overall LRU way.  Promotion
  on fill requires measured cost ``>= min_l1_misses`` (every fill
  qualifies when no cost signal exists), ``u_i < 1.0 / prob_inv``, and
  a free HP slot.

The instrumented (``*_tel``) twins additionally maintain per-line
hits-since-fill (``line_hits``), fold counter deltas into a packed
int64 ``counters`` array, and write each eviction victim's hit count
into ``evbuf`` (returning how many were written) — the dispatcher
folds those into the :class:`~emissary.telemetry.Telemetry` registry
outside the hot loop.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

I64 = NDArray[np.int64]
U8 = NDArray[np.uint8]
F64 = NDArray[np.float64]

#: ``counters`` slot layout for the instrumented kernels.
CTR_FILLS = 0
CTR_EVICTIONS = 1
CTR_DEAD_ON_FILL = 2
CTR_EVICTIONS_HP = 3
CTR_EVICTIONS_LP = 4
CTR_HP_PROMOTIONS = 5
NUM_COUNTERS = 6

#: ``stats`` slot layout for the uninstrumented EMISSARY kernel (these
#: two feed ``extra_stats`` and are maintained even without telemetry).
STAT_HP_PROMOTIONS = 0
STAT_HP_EVICTIONS = 1
NUM_STATS = 2

SRRIP_RRPV_MAX = 3
SRRIP_RRPV_INSERT = 2


# -- LRU ------------------------------------------------------------------

def lru_run(set_idx: I64, tags: I64, tag_arr: I64, ts_arr: I64,
            size_arr: I64, clock: I64, ways: int, hits: U8) -> int:
    c = clock[0]
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            hits[i] = 1
        else:
            hits[i] = 0
            if size < ways:
                way = size
                size_arr[s] = size + 1
            else:
                way = 0
                best = ts_arr[base]
                for w in range(1, ways):
                    if ts_arr[base + w] < best:
                        best = ts_arr[base + w]
                        way = w
            tag_arr[base + way] = tag
        ts_arr[base + way] = c
        c += 1
    clock[0] = c
    return 0


def lru_run_tel(set_idx: I64, tags: I64, extra: I64, tag_arr: I64,
                ts_arr: I64, size_arr: I64, clock: I64, line_hits: I64,
                counters: I64, evbuf: I64, ways: int, hits: U8) -> int:
    c = clock[0]
    fills = 0
    evictions = 0
    dead = 0
    nev = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            line_hits[base + way] += 1 + extra[i]
            hits[i] = 1
        else:
            hits[i] = 0
            if size < ways:
                way = size
                size_arr[s] = size + 1
            else:
                way = 0
                best = ts_arr[base]
                for w in range(1, ways):
                    if ts_arr[base + w] < best:
                        best = ts_arr[base + w]
                        way = w
                victim_hits = line_hits[base + way]
                evbuf[nev] = victim_hits
                nev += 1
                evictions += 1
                if victim_hits == 0:
                    dead += 1
            tag_arr[base + way] = tag
            line_hits[base + way] = extra[i]
            fills += 1
        ts_arr[base + way] = c
        c += 1
    clock[0] = c
    counters[CTR_FILLS] += fills
    counters[CTR_EVICTIONS] += evictions
    counters[CTR_DEAD_ON_FILL] += dead
    return nev


# -- RANDOM ---------------------------------------------------------------

def random_run(set_idx: I64, tags: I64, u: F64, tag_arr: I64,
               size_arr: I64, ways: int, hits: U8) -> int:
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            hits[i] = 1
        else:
            hits[i] = 0
            if size < ways:
                way = size
                size_arr[s] = size + 1
            else:
                way = int(u[i] * ways)
            tag_arr[base + way] = tag
    return 0


def random_run_tel(set_idx: I64, tags: I64, u: F64, extra: I64,
                   tag_arr: I64, size_arr: I64, line_hits: I64,
                   counters: I64, evbuf: I64, ways: int, hits: U8) -> int:
    fills = 0
    evictions = 0
    dead = 0
    nev = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            line_hits[base + way] += 1 + extra[i]
            hits[i] = 1
        else:
            hits[i] = 0
            if size < ways:
                way = size
                size_arr[s] = size + 1
            else:
                way = int(u[i] * ways)
                victim_hits = line_hits[base + way]
                evbuf[nev] = victim_hits
                nev += 1
                evictions += 1
                if victim_hits == 0:
                    dead += 1
            tag_arr[base + way] = tag
            line_hits[base + way] = extra[i]
            fills += 1
    counters[CTR_FILLS] += fills
    counters[CTR_EVICTIONS] += evictions
    counters[CTR_DEAD_ON_FILL] += dead
    return nev


# -- SRRIP ----------------------------------------------------------------

def srrip_run(set_idx: I64, tags: I64, rep: U8, tag_arr: I64, rrpv_arr: I64,
              size_arr: I64, ways: int, hits: U8) -> int:
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            rrpv_arr[base + way] = 0
            hits[i] = 1
        else:
            hits[i] = 0
            insert = 0 if rep[i] != 0 else SRRIP_RRPV_INSERT
            if size < ways:
                way = size
                size_arr[s] = size + 1
            else:
                top = rrpv_arr[base]
                for w in range(1, ways):
                    if rrpv_arr[base + w] > top:
                        top = rrpv_arr[base + w]
                if top < SRRIP_RRPV_MAX:
                    aging = SRRIP_RRPV_MAX - top
                    for w in range(ways):
                        rrpv_arr[base + w] += aging
                way = 0
                for w in range(ways):
                    if rrpv_arr[base + w] == SRRIP_RRPV_MAX:
                        way = w
                        break
            tag_arr[base + way] = tag
            rrpv_arr[base + way] = insert
    return 0


def srrip_run_tel(set_idx: I64, tags: I64, rep: U8, extra: I64, tag_arr: I64,
                  rrpv_arr: I64, size_arr: I64, line_hits: I64, counters: I64,
                  evbuf: I64, ways: int, hits: U8) -> int:
    fills = 0
    evictions = 0
    dead = 0
    nev = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            rrpv_arr[base + way] = 0
            line_hits[base + way] += 1 + extra[i]
            hits[i] = 1
        else:
            hits[i] = 0
            insert = 0 if rep[i] != 0 else SRRIP_RRPV_INSERT
            if size < ways:
                way = size
                size_arr[s] = size + 1
            else:
                top = rrpv_arr[base]
                for w in range(1, ways):
                    if rrpv_arr[base + w] > top:
                        top = rrpv_arr[base + w]
                if top < SRRIP_RRPV_MAX:
                    aging = SRRIP_RRPV_MAX - top
                    for w in range(ways):
                        rrpv_arr[base + w] += aging
                way = 0
                for w in range(ways):
                    if rrpv_arr[base + w] == SRRIP_RRPV_MAX:
                        way = w
                        break
                victim_hits = line_hits[base + way]
                evbuf[nev] = victim_hits
                nev += 1
                evictions += 1
                if victim_hits == 0:
                    dead += 1
            tag_arr[base + way] = tag
            rrpv_arr[base + way] = insert
            line_hits[base + way] = extra[i]
            fills += 1
    counters[CTR_FILLS] += fills
    counters[CTR_EVICTIONS] += evictions
    counters[CTR_DEAD_ON_FILL] += dead
    return nev


# -- EMISSARY -------------------------------------------------------------

def emissary_run(set_idx: I64, tags: I64, u: F64, cost: I64, has_cost: int,
                 tag_arr: I64, ts_arr: I64, prio_arr: I64, size_arr: I64,
                 hp_counts: I64, clock: I64, stats: I64, ways: int,
                 hp_threshold: int, prob_inv: int, min_cost: int,
                 hits: U8) -> int:
    c = clock[0]
    p_hit = 1.0 / prob_inv
    promotions = 0
    hp_evictions = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            hits[i] = 1
        else:
            hits[i] = 0
            hp = hp_counts[s]
            if size == ways:
                want = 1 if hp >= hp_threshold else 0
                way = -1
                best = np.int64(0)
                for w in range(ways):
                    if prio_arr[base + w] == want and \
                            (way < 0 or ts_arr[base + w] < best):
                        best = ts_arr[base + w]
                        way = w
                if way < 0:  # preferred class empty: overall LRU
                    way = 0
                    best = ts_arr[base]
                    for w in range(1, ways):
                        if ts_arr[base + w] < best:
                            best = ts_arr[base + w]
                            way = w
                if prio_arr[base + way] != 0:
                    hp -= 1
                    hp_evictions += 1
            else:
                way = size
                size_arr[s] = size + 1
            if (has_cost == 0 or cost[i] >= min_cost) and u[i] < p_hit \
                    and hp < hp_threshold:
                prio_arr[base + way] = 1
                hp += 1
                promotions += 1
            else:
                prio_arr[base + way] = 0
            hp_counts[s] = hp
            tag_arr[base + way] = tag
        ts_arr[base + way] = c
        c += 1
    clock[0] = c
    stats[STAT_HP_PROMOTIONS] += promotions
    stats[STAT_HP_EVICTIONS] += hp_evictions
    return 0


def emissary_run_tel(set_idx: I64, tags: I64, u: F64, cost: I64,
                     has_cost: int, extra: I64, tag_arr: I64, ts_arr: I64,
                     prio_arr: I64, size_arr: I64, hp_counts: I64, clock: I64,
                     line_hits: I64, counters: I64, evbuf: I64, stats: I64,
                     ways: int, hp_threshold: int, prob_inv: int,
                     min_cost: int, hits: U8) -> int:
    c = clock[0]
    p_hit = 1.0 / prob_inv
    promotions = 0
    hp_evictions = 0
    fills = 0
    evictions = 0
    dead = 0
    lp_evictions = 0
    nev = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            line_hits[base + way] += 1 + extra[i]
            hits[i] = 1
        else:
            hits[i] = 0
            hp = hp_counts[s]
            if size == ways:
                want = 1 if hp >= hp_threshold else 0
                way = -1
                best = np.int64(0)
                for w in range(ways):
                    if prio_arr[base + w] == want and \
                            (way < 0 or ts_arr[base + w] < best):
                        best = ts_arr[base + w]
                        way = w
                if way < 0:  # preferred class empty: overall LRU
                    way = 0
                    best = ts_arr[base]
                    for w in range(1, ways):
                        if ts_arr[base + w] < best:
                            best = ts_arr[base + w]
                            way = w
                victim_hits = line_hits[base + way]
                evbuf[nev] = victim_hits
                nev += 1
                evictions += 1
                if victim_hits == 0:
                    dead += 1
                if prio_arr[base + way] != 0:
                    hp -= 1
                    hp_evictions += 1
                else:
                    lp_evictions += 1
            else:
                way = size
                size_arr[s] = size + 1
            if (has_cost == 0 or cost[i] >= min_cost) and u[i] < p_hit \
                    and hp < hp_threshold:
                prio_arr[base + way] = 1
                hp += 1
                promotions += 1
            else:
                prio_arr[base + way] = 0
            hp_counts[s] = hp
            tag_arr[base + way] = tag
            line_hits[base + way] = extra[i]
            fills += 1
        ts_arr[base + way] = c
        c += 1
    clock[0] = c
    stats[STAT_HP_PROMOTIONS] += promotions
    stats[STAT_HP_EVICTIONS] += hp_evictions
    counters[CTR_FILLS] += fills
    counters[CTR_EVICTIONS] += evictions
    counters[CTR_DEAD_ON_FILL] += dead
    counters[CTR_EVICTIONS_HP] += hp_evictions
    counters[CTR_EVICTIONS_LP] += lp_evictions
    counters[CTR_HP_PROMOTIONS] += promotions
    return nev


def emissary_part_run(set_idx: I64, tags: I64, u: F64, cost: I64,
                      has_cost: int, core: I64, tag_arr: I64, ts_arr: I64,
                      prio_arr: I64, owner_arr: I64, size_arr: I64,
                      hp_counts: I64, hp_by_core: I64, quota: I64,
                      clock: I64, stats: I64, ways: int, num_cores: int,
                      hp_threshold: int, prob_inv: int, min_cost: int,
                      hits: U8) -> int:
    """Partitioned-budget twin of ``emissary_run``: HP candidacy is
    gated by the issuing core's per-set sub-budget (``hp_by_core``, a
    flat num_sets x num_cores array, against ``quota``).  Quotas sum to
    ``hp_threshold`` and every sub-count is bounded by its quota, so the
    per-set HP total never exceeds the shared bound and the two-class
    victim walk is unchanged.  ``owner_arr`` tracks the owning core per
    (set, way); -1 marks low-priority lines."""
    c = clock[0]
    p_hit = 1.0 / prob_inv
    promotions = 0
    hp_evictions = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            hits[i] = 1
        else:
            hits[i] = 0
            hp = hp_counts[s]
            if size == ways:
                want = 1 if hp >= hp_threshold else 0
                way = -1
                best = np.int64(0)
                for w in range(ways):
                    if prio_arr[base + w] == want and \
                            (way < 0 or ts_arr[base + w] < best):
                        best = ts_arr[base + w]
                        way = w
                if way < 0:  # preferred class empty: overall LRU
                    way = 0
                    best = ts_arr[base]
                    for w in range(1, ways):
                        if ts_arr[base + w] < best:
                            best = ts_arr[base + w]
                            way = w
                if prio_arr[base + way] != 0:
                    hp -= 1
                    hp_evictions += 1
                    hp_by_core[s * num_cores + owner_arr[base + way]] -= 1
                    owner_arr[base + way] = -1
            else:
                way = size
                size_arr[s] = size + 1
            cr = core[i]
            if (has_cost == 0 or cost[i] >= min_cost) and u[i] < p_hit \
                    and hp_by_core[s * num_cores + cr] < quota[cr]:
                prio_arr[base + way] = 1
                owner_arr[base + way] = cr
                hp_by_core[s * num_cores + cr] += 1
                hp += 1
                promotions += 1
            else:
                prio_arr[base + way] = 0
                owner_arr[base + way] = -1
            hp_counts[s] = hp
            tag_arr[base + way] = tag
        ts_arr[base + way] = c
        c += 1
    clock[0] = c
    stats[STAT_HP_PROMOTIONS] += promotions
    stats[STAT_HP_EVICTIONS] += hp_evictions
    return 0


def emissary_part_run_tel(set_idx: I64, tags: I64, u: F64, cost: I64,
                          has_cost: int, core: I64, extra: I64, tag_arr: I64,
                          ts_arr: I64, prio_arr: I64, owner_arr: I64,
                          size_arr: I64, hp_counts: I64, hp_by_core: I64,
                          quota: I64, clock: I64, line_hits: I64,
                          counters: I64, evbuf: I64, stats: I64, ways: int,
                          num_cores: int, hp_threshold: int, prob_inv: int,
                          min_cost: int, hits: U8) -> int:
    c = clock[0]
    p_hit = 1.0 / prob_inv
    promotions = 0
    hp_evictions = 0
    fills = 0
    evictions = 0
    dead = 0
    lp_evictions = 0
    nev = 0
    for i in range(set_idx.shape[0]):
        s = set_idx[i]
        base = s * ways
        tag = tags[i]
        size = size_arr[s]
        way = -1
        for w in range(size):
            if tag_arr[base + w] == tag:
                way = w
                break
        if way >= 0:
            line_hits[base + way] += 1 + extra[i]
            hits[i] = 1
        else:
            hits[i] = 0
            hp = hp_counts[s]
            if size == ways:
                want = 1 if hp >= hp_threshold else 0
                way = -1
                best = np.int64(0)
                for w in range(ways):
                    if prio_arr[base + w] == want and \
                            (way < 0 or ts_arr[base + w] < best):
                        best = ts_arr[base + w]
                        way = w
                if way < 0:  # preferred class empty: overall LRU
                    way = 0
                    best = ts_arr[base]
                    for w in range(1, ways):
                        if ts_arr[base + w] < best:
                            best = ts_arr[base + w]
                            way = w
                victim_hits = line_hits[base + way]
                evbuf[nev] = victim_hits
                nev += 1
                evictions += 1
                if victim_hits == 0:
                    dead += 1
                if prio_arr[base + way] != 0:
                    hp -= 1
                    hp_evictions += 1
                    hp_by_core[s * num_cores + owner_arr[base + way]] -= 1
                    owner_arr[base + way] = -1
                else:
                    lp_evictions += 1
            else:
                way = size
                size_arr[s] = size + 1
            cr = core[i]
            if (has_cost == 0 or cost[i] >= min_cost) and u[i] < p_hit \
                    and hp_by_core[s * num_cores + cr] < quota[cr]:
                prio_arr[base + way] = 1
                owner_arr[base + way] = cr
                hp_by_core[s * num_cores + cr] += 1
                hp += 1
                promotions += 1
            else:
                prio_arr[base + way] = 0
                owner_arr[base + way] = -1
            hp_counts[s] = hp
            tag_arr[base + way] = tag
            line_hits[base + way] = extra[i]
            fills += 1
        ts_arr[base + way] = c
        c += 1
    clock[0] = c
    stats[STAT_HP_PROMOTIONS] += promotions
    stats[STAT_HP_EVICTIONS] += hp_evictions
    counters[CTR_FILLS] += fills
    counters[CTR_EVICTIONS] += evictions
    counters[CTR_DEAD_ON_FILL] += dead
    counters[CTR_EVICTIONS_HP] += hp_evictions
    counters[CTR_EVICTIONS_LP] += lp_evictions
    counters[CTR_HP_PROMOTIONS] += promotions
    return nev


KERNEL_NAMES = (
    "lru_run", "lru_run_tel",
    "random_run", "random_run_tel",
    "srrip_run", "srrip_run_tel",
    "emissary_run", "emissary_run_tel",
    "emissary_part_run", "emissary_part_run_tel",
)
