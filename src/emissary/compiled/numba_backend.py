"""Numba compiled-kernel provider: ``@njit`` over ``kernels_py``.

Numba is an optional dependency (install extra ``emissary[compiled]``).
This module is the only place it is imported, and the import is guarded:
:data:`HAVE_NUMBA` tells the provider registry whether this provider can
be offered, and :func:`load_kernels` raises :class:`ImportError` when it
cannot.

The kernels themselves live in :mod:`emissary.compiled.kernels_py`,
written in the nopython subset — this module just jits them.  First call
per signature pays JIT compilation (``cache=True`` persists the machine
code in numba's on-disk cache, so subsequent processes start warm);
benchmarks must therefore time a warm-up run first (``bench.py``'s
backend mode does).
"""

from __future__ import annotations

from typing import Any

from emissary.compiled import kernels_py

try:
    from numba import njit
    HAVE_NUMBA = True
except ImportError:  # optional dependency; registry falls back to `cc`
    njit = None
    HAVE_NUMBA = False


class NumbaKernels:
    """Jitted twins of the ``kernels_py`` callables, bound lazily."""

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise ImportError(
                "numba is not installed; `pip install emissary[compiled]`")
        assert njit is not None
        for fn_name in kernels_py.KERNEL_NAMES:
            fn = getattr(kernels_py, fn_name)
            setattr(self, fn_name, njit(cache=True, fastmath=False)(fn))

    def __getattr__(self, item: str) -> Any:  # pragma: no cover - mypy aid
        raise AttributeError(item)


def load_kernels() -> NumbaKernels:
    """Jit and bind the kernels; raises ImportError without numba."""
    return NumbaKernels()
