"""Typed public API: :class:`PolicySpec` and :class:`SimRequest`.

Historically every entry point took ``policy: str, **policy_params`` —
stringly-typed kwargs that cannot be validated up front, cannot describe
a multi-level (L1I -> L2) request, and leak policy parameters into every
call signature.  This module replaces that form with two frozen
dataclasses:

:class:`PolicySpec`
    A validated (name, params) pair.  The name must be registered and
    every parameter is checked against the policy's declared schema at
    construction time, so a typo'd parameter fails immediately instead
    of being silently swallowed by a ``**params`` sink.

:class:`SimRequest`
    One fully-described simulation: trace spec, policy spec, cache
    geometry (single-level :class:`~emissary.engine.CacheConfig` or
    two-level :class:`~emissary.hierarchy.HierarchyConfig`), and seed.
    Its :meth:`~SimRequest.to_dict` encoding is the canonical results
    cache key.

The old form still works everywhere but emits
:class:`EmissaryDeprecationWarning`; CI escalates that warning to an
error so internal callers stay fully migrated.  Every public dataclass
round-trips through ``to_dict`` / ``from_dict``.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from emissary.policies import PARAM_SCHEMAS, REGISTRY
from emissary.traces import FILE_KIND, FrozenParams, TraceSpec

#: Engine/kernel backends a :class:`SimRequest` may select.  All three
#: produce bit-identical outcomes (the differential suite enforces it);
#: they differ only in speed.
BACKENDS = ("batched", "compiled", "reference")


class EmissaryDeprecationWarning(DeprecationWarning):
    """Raised-to-error in CI: a caller is still on the legacy kwargs API."""


@dataclass(frozen=True)
class PolicySpec:
    """Validated replacement-policy selection: registered name + typed params."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in REGISTRY:
            raise ValueError(f"unknown policy {self.name!r}; known: {sorted(REGISTRY)}")
        schema = PARAM_SCHEMAS[self.name]
        for key, value in self.params.items():
            if key not in schema:
                raise ValueError(
                    f"policy {self.name!r} does not accept parameter {key!r}; "
                    f"allowed: {sorted(schema) or 'none'}")
            expected = schema[key]
            if isinstance(value, bool) or not isinstance(value, expected):
                raise TypeError(
                    f"policy {self.name!r} parameter {key!r} must be "
                    f"{expected.__name__}, got {type(value).__name__}")
        # Freeze into a canonical immutable mapping: the spec is hashable
        # and later mutation of the caller's dict cannot change an
        # already-validated spec (or its results-cache key) in place.
        object.__setattr__(self, "params", FrozenParams(self.params))

    def to_dict(self) -> dict[str, Any]:
        params = self.params.thaw() if isinstance(self.params, FrozenParams) \
            else dict(self.params)
        return {"name": self.name, "params": params}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PolicySpec":
        return cls(name=d["name"], params=dict(d.get("params", {})))


def coerce_policy_spec(policy: Any, params: Mapping[str, Any] | None = None,
                       caller: str = "simulate") -> PolicySpec:
    """Accept a :class:`PolicySpec` or the deprecated ``str, **params`` form.

    The string form is shimmed (with :class:`EmissaryDeprecationWarning`)
    rather than rejected so downstream callers can migrate incrementally;
    mixing a spec with extra kwargs is always an error because the spec
    already carries its parameters.
    """
    if isinstance(policy, PolicySpec):
        if params:
            raise TypeError(
                f"{caller}: pass policy parameters inside PolicySpec.params, "
                f"not as extra keyword arguments ({sorted(params)})")
        return policy
    if isinstance(policy, str):
        warnings.warn(
            f"{caller}(policy=<str>, **policy_params) is deprecated; pass "
            f"PolicySpec({policy!r}, {dict(params or {})!r}) instead",
            EmissaryDeprecationWarning, stacklevel=3)
        return PolicySpec(policy, dict(params or {}))
    raise TypeError(f"{caller}: policy must be a PolicySpec or str, "
                    f"got {type(policy).__name__}")


@dataclass(frozen=True)
class SimRequest:
    """One fully-described simulation (trace x policy x geometry x seed).

    ``telemetry`` opts the run into the instrumentation layer
    (:mod:`emissary.telemetry`): the result then carries counters,
    histograms, and engine phase spans.  It never changes outcomes, and
    it participates in :meth:`to_dict` (the results-cache key) only when
    enabled, so every pre-existing cache entry keeps its key.

    ``backend`` selects the execution engine (:data:`BACKENDS`):
    ``"batched"`` is the vectorized NumPy engine, ``"compiled"`` the
    same engine with native per-set kernels (numba or the bundled C
    fallback), ``"reference"`` the per-access Python oracle.  Because
    all three are bit-identical, ``backend`` is deliberately *excluded*
    from :meth:`to_dict`: the encoding is a results-cache content key,
    and the same request run on any backend must hit the same cache
    entry (and keep every pre-existing key byte-identical).
    """

    trace: TraceSpec
    policy: PolicySpec
    config: Any = None  # CacheConfig (single-level) or HierarchyConfig (L1I -> L2)
    seed: int = 0
    telemetry: bool = False
    backend: str = "batched"

    def __post_init__(self) -> None:
        from emissary.engine import CacheConfig
        from emissary.hierarchy import HierarchyConfig

        if not isinstance(self.trace, TraceSpec):
            raise TypeError(f"trace must be a TraceSpec, got {type(self.trace).__name__}")
        if not isinstance(self.policy, PolicySpec):
            raise TypeError(
                f"policy must be a PolicySpec, got {type(self.policy).__name__} "
                f"(the str form is only shimmed in engine entry points)")
        if self.config is None:
            object.__setattr__(self, "config", CacheConfig())
        elif not isinstance(self.config, (CacheConfig, HierarchyConfig)):
            raise TypeError(f"config must be a CacheConfig or HierarchyConfig, "
                            f"got {type(self.config).__name__}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an int, got {type(self.seed).__name__}")
        if not isinstance(self.telemetry, bool):
            raise TypeError(
                f"telemetry must be a bool, got {type(self.telemetry).__name__}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {list(BACKENDS)}")

    @property
    def is_hierarchy(self) -> bool:
        from emissary.hierarchy import HierarchyConfig

        return isinstance(self.config, HierarchyConfig)

    def to_dict(self) -> dict[str, Any]:
        """Canonical encoding — also the results-cache content key.

        ``telemetry`` appears only when enabled: instrumented results
        carry extra payload, so they cache under their own key, while
        every default (telemetry-off) key is byte-identical to the
        pre-telemetry encoding.  ``backend`` never appears: backends are
        bit-identical, so the key is backend-invariant by design (a
        sweep run on the compiled backend warms the cache for the
        batched one and vice versa)."""
        d = {
            "trace": self.trace.to_dict(),
            "policy": self.policy.to_dict(),
            "config": self.config.to_dict(),
            "seed": self.seed,
        }
        if self.telemetry:
            d["telemetry"] = True
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SimRequest":
        from emissary.engine import CacheConfig
        from emissary.hierarchy import HierarchyConfig

        cfg = d["config"]
        config = (HierarchyConfig.from_dict(cfg) if "l1" in cfg
                  else CacheConfig.from_dict(cfg))
        return cls(trace=TraceSpec.from_dict(d["trace"]),
                   policy=PolicySpec.from_dict(d["policy"]),
                   config=config, seed=int(d.get("seed", 0)),
                   telemetry=bool(d.get("telemetry", False)),
                   backend=str(d.get("backend", "batched")))


def _array_chunks(addresses: Any, chunk_bytes: int):
    """Split an in-memory address array into chunk-budget-sized views."""
    import numpy as np

    arr = np.ascontiguousarray(addresses, dtype=np.uint64)
    step = max(1, chunk_bytes // arr.itemsize)
    for start in range(0, len(arr), step):
        yield arr[start:start + step]


def simulate(target: Any, policy: Any = None, config: Any = None, seed: int = 0,
             engine: str | None = None, telemetry: bool = False,
             stream: bool = False, chunk_bytes: int | None = None,
             **policy_params: Any):
    """Unified entry point.

    ``simulate(SimRequest(...))`` generates the trace from its spec and
    dispatches on the config type (single-level vs hierarchy).  The
    legacy array form ``simulate(addresses, policy, ...)`` still works;
    with a string policy it emits :class:`EmissaryDeprecationWarning`.

    ``engine`` selects the backend (:data:`BACKENDS`): ``"batched"``
    (vectorized NumPy), ``"compiled"`` (native per-set kernels — see
    :mod:`emissary.compiled`), or ``"reference"`` (per-access oracle).
    When ``None`` it defaults to the request's ``backend`` field (or
    ``"batched"`` for the array form); an explicit value overrides the
    request.  All backends produce bit-identical outcomes.

    ``stream=True`` feeds the trace through the engine in fixed-size
    chunks (``chunk_bytes``, default :data:`emissary.trace_io.DEFAULT_CHUNK_BYTES`)
    instead of one array.  For a request whose trace is file-backed
    (``kind="file"``) the file is read incrementally, and synthetic
    traces are *generated* chunk-by-chunk
    (:meth:`~emissary.traces.TraceSpec.generate_chunks`), so peak memory
    is bounded by the chunk budget rather than the trace size either
    way.  Outcomes are bit-identical to the one-shot path.  Streaming
    requires a batched-engine backend (``"batched"`` or ``"compiled"``).

    ``telemetry=True`` (or a request with ``telemetry=True``) enables
    the instrumentation layer: the returned result's ``telemetry``
    attribute holds the counters, histograms, and phase spans.  Outcomes
    are bit-identical either way.
    """
    from emissary.engine import BatchedEngine, ReferenceEngine
    from emissary.hierarchy import (BatchedHierarchyEngine, HierarchyConfig,
                                    HierarchyReferenceEngine)
    from emissary.telemetry import Telemetry

    if chunk_bytes is not None and not stream:
        raise TypeError("chunk_bytes only applies to stream=True")

    chunks: Any = None
    if isinstance(target, SimRequest):
        if policy is not None or config is not None or policy_params:
            raise TypeError("simulate(SimRequest) takes no policy/config/params "
                            "arguments — they live inside the request")
        spec, config, seed = target.policy, target.config, target.seed
        telemetry = telemetry or target.telemetry
        if engine is None:
            engine = target.backend
        if stream:
            from emissary import trace_io

            chunks = target.trace.generate_chunks(
                chunk_bytes=chunk_bytes or trace_io.DEFAULT_CHUNK_BYTES)
            addresses = None
        else:
            addresses = target.trace.generate()
    else:
        addresses = target
        spec = coerce_policy_spec(policy, policy_params, caller="simulate")
    if engine is None:
        engine = "batched"
    if stream and engine == "reference":
        raise ValueError("stream=True requires a batched-engine backend "
                         "('batched' or 'compiled'; the reference engines "
                         "have no streaming path)")

    hierarchy = isinstance(config, HierarchyConfig)
    if engine in ("batched", "compiled"):
        backend = "compiled" if engine == "compiled" else "python"
        if hierarchy:
            eng: Any = BatchedHierarchyEngine(
                config, telemetry=Telemetry() if telemetry else None,
                kernel_backend=backend)
        else:
            eng = BatchedEngine(config,
                                telemetry=Telemetry() if telemetry else None,
                                kernel_backend=backend)
    elif engine == "reference":
        cls = HierarchyReferenceEngine if hierarchy else ReferenceEngine
        eng = cls(config, telemetry=Telemetry() if telemetry else None)
    else:
        raise ValueError(f"unknown engine {engine!r}; known: {list(BACKENDS)}")
    if stream:
        if chunks is None:
            from emissary import trace_io

            chunks = _array_chunks(
                addresses, chunk_bytes or trace_io.DEFAULT_CHUNK_BYTES)
        return eng.simulate_stream(chunks, spec, seed=seed)
    return eng.run(addresses, spec, seed=seed)
