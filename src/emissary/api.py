"""Typed public API: :class:`PolicySpec` and :class:`SimRequest`.

Historically every entry point took ``policy: str, **policy_params`` —
stringly-typed kwargs that cannot be validated up front, cannot describe
a multi-level (L1I -> L2) request, and leak policy parameters into every
call signature.  This module replaces that form with two frozen
dataclasses:

:class:`PolicySpec`
    A validated (name, params) pair.  The name must be registered and
    every parameter is checked against the policy's declared schema at
    construction time, so a typo'd parameter fails immediately instead
    of being silently swallowed by a ``**params`` sink.

:class:`SimRequest`
    One fully-described simulation: trace spec, policy spec, cache
    geometry (single-level :class:`~emissary.engine.CacheConfig` or
    two-level :class:`~emissary.hierarchy.HierarchyConfig`), and seed.
    Its :meth:`~SimRequest.to_dict` encoding is both the canonical
    results cache key and the version-stamped wire payload the serving
    layer (:mod:`emissary.serve`) accepts over HTTP.

The legacy ``policy: str, **policy_params`` form was deprecated in PR 2
(with CI escalating :class:`EmissaryDeprecationWarning` to an error) and
has since been **removed**: every entry point now requires a
:class:`PolicySpec`, and passing a string raises ``TypeError`` with the
migration spelled out.  Every public dataclass round-trips through
``to_dict`` / ``from_dict``; decoding follows the strict wire
discipline of :mod:`emissary.wire` (schema versioning, unknown-key
rejection, v0 migration).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from emissary.policies import PARAM_SCHEMAS, REGISTRY
from emissary.traces import (FILE_KIND, FrozenParams, InterleaveSpec,
                             TraceSpec, trace_spec_from_dict)
from emissary.wire import (WIRE_SCHEMA_KEY, WIRE_SCHEMA_VERSION,
                           check_known_keys, check_wire_version)

#: Engine/kernel backends a :class:`SimRequest` may select.  All three
#: produce bit-identical outcomes (the differential suite enforces it);
#: they differ only in speed.
BACKENDS = ("batched", "compiled", "reference")


@dataclass(frozen=True)
class PolicySpec:
    """Validated replacement-policy selection: registered name + typed params."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in REGISTRY:
            raise ValueError(f"unknown policy {self.name!r}; known: {sorted(REGISTRY)}")
        schema = PARAM_SCHEMAS[self.name]
        for key, value in self.params.items():
            if key not in schema:
                raise ValueError(
                    f"policy {self.name!r} does not accept parameter {key!r}; "
                    f"allowed: {sorted(schema) or 'none'}")
            expected = schema[key]
            if isinstance(value, bool) or not isinstance(value, expected):
                raise TypeError(
                    f"policy {self.name!r} parameter {key!r} must be "
                    f"{expected.__name__}, got {type(value).__name__}")
        # Freeze into a canonical immutable mapping: the spec is hashable
        # and later mutation of the caller's dict cannot change an
        # already-validated spec (or its results-cache key) in place.
        object.__setattr__(self, "params", FrozenParams(self.params))

    def to_dict(self) -> dict[str, Any]:
        params = self.params.thaw() if isinstance(self.params, FrozenParams) \
            else dict(self.params)
        return {"name": self.name, "params": params}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PolicySpec":
        check_known_keys(d, ("name", "params"), "PolicySpec")
        return cls(name=d["name"], params=dict(d.get("params", {})))


def require_policy_spec(policy: Any, caller: str = "simulate") -> PolicySpec:
    """Validate that ``policy`` is a :class:`PolicySpec`.

    The PR 2 ``str, **policy_params`` shim is gone; a string now fails
    with the migration spelled out so old call sites get a one-line fix
    instead of a bare ``AttributeError`` deep in a kernel.
    """
    if isinstance(policy, PolicySpec):
        return policy
    if isinstance(policy, str):
        raise TypeError(
            f"{caller}: the legacy string-policy form was removed; pass "
            f"PolicySpec({policy!r}, {{...params}}) instead")
    raise TypeError(f"{caller}: policy must be a PolicySpec, "
                    f"got {type(policy).__name__}")


@dataclass(frozen=True)
class SimRequest:
    """One fully-described simulation (trace x policy x geometry x seed).

    ``telemetry`` opts the run into the instrumentation layer
    (:mod:`emissary.telemetry`): the result then carries counters,
    histograms, and engine phase spans.  It never changes outcomes, and
    it participates in :meth:`to_dict` (the results-cache key) only when
    enabled, so every pre-existing cache entry keeps its key.

    ``backend`` selects the execution engine (:data:`BACKENDS`):
    ``"batched"`` is the vectorized NumPy engine, ``"compiled"`` the
    same engine with native per-set kernels (numba or the bundled C
    fallback), ``"reference"`` the per-access Python oracle.  Because
    all three are bit-identical, ``backend`` is deliberately *excluded*
    from :meth:`to_dict`: the encoding is a results-cache content key,
    and the same request run on any backend must hit the same cache
    entry (and keep every pre-existing key byte-identical).
    """

    trace: TraceSpec | InterleaveSpec
    policy: PolicySpec
    config: Any = None  # CacheConfig (single-level) or HierarchyConfig (L1I -> L2)
    seed: int = 0
    telemetry: bool = False
    backend: str = "batched"

    def __post_init__(self) -> None:
        from emissary.engine import CacheConfig
        from emissary.hierarchy import HierarchyConfig

        if not isinstance(self.trace, (TraceSpec, InterleaveSpec)):
            raise TypeError(f"trace must be a TraceSpec or InterleaveSpec, "
                            f"got {type(self.trace).__name__}")
        if isinstance(self.trace, InterleaveSpec) and not isinstance(
                self.config, HierarchyConfig):
            raise TypeError(
                "multi-core traces (InterleaveSpec) describe N L1I "
                "front-ends sharing one L2, so the config must be a "
                f"HierarchyConfig, got {type(self.config).__name__}")
        if not isinstance(self.policy, PolicySpec):
            raise TypeError(
                f"policy must be a PolicySpec, got {type(self.policy).__name__} "
                f"(the str form is only shimmed in engine entry points)")
        if self.config is None:
            object.__setattr__(self, "config", CacheConfig())
        elif not isinstance(self.config, (CacheConfig, HierarchyConfig)):
            raise TypeError(f"config must be a CacheConfig or HierarchyConfig, "
                            f"got {type(self.config).__name__}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an int, got {type(self.seed).__name__}")
        if not isinstance(self.telemetry, bool):
            raise TypeError(
                f"telemetry must be a bool, got {type(self.telemetry).__name__}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {list(BACKENDS)}")

    @property
    def is_hierarchy(self) -> bool:
        from emissary.hierarchy import HierarchyConfig

        return isinstance(self.config, HierarchyConfig)

    @property
    def is_multicore(self) -> bool:
        """True when the trace interleaves multiple cores (the request
        then runs the N-core shared-L2 engines)."""
        return isinstance(self.trace, InterleaveSpec)

    def to_dict(self) -> dict[str, Any]:
        """Version-stamped canonical encoding — the wire payload *and*
        the results-cache content key.

        ``schema_version`` (:data:`emissary.wire.WIRE_SCHEMA_VERSION`)
        stamps the layout for cross-process decoding; the results cache
        strips it before hashing, so every pre-versioning cache key is
        still byte-identical.  ``telemetry`` appears only when enabled:
        instrumented results carry extra payload, so they cache under
        their own key, while every default (telemetry-off) key matches
        the pre-telemetry encoding.  ``backend`` never appears: backends
        are bit-identical, so the key is backend-invariant by design (a
        sweep run on the compiled backend warms the cache for the
        batched one and vice versa)."""
        d = {
            WIRE_SCHEMA_KEY: WIRE_SCHEMA_VERSION,
            "trace": self.trace.to_dict(),
            "policy": self.policy.to_dict(),
            "config": self.config.to_dict(),
            "seed": self.seed,
        }
        if self.telemetry:
            d["telemetry"] = True
        return d

    #: Keys a wire/cache ``SimRequest`` dict may carry.  ``backend`` is
    #: accepted on decode (a client may pin the execution engine) even
    #: though :meth:`to_dict` never emits it — see the cache-key note.
    _WIRE_KEYS = frozenset({WIRE_SCHEMA_KEY, "trace", "policy", "config",
                            "seed", "telemetry", "backend"})

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SimRequest":
        """Strictly decode a v0/v1 wire dict (see :mod:`emissary.wire`):
        unknown keys are rejected, a missing ``schema_version`` means
        the pre-versioned v0 layout, and a newer version than this
        process understands refuses to half-parse."""
        from emissary.engine import CacheConfig
        from emissary.hierarchy import HierarchyConfig

        check_wire_version(d, "SimRequest")
        check_known_keys(d, cls._WIRE_KEYS, "SimRequest")
        cfg = d["config"]
        config = (HierarchyConfig.from_dict(cfg) if "l1" in cfg
                  else CacheConfig.from_dict(cfg))
        return cls(trace=trace_spec_from_dict(d["trace"]),
                   policy=PolicySpec.from_dict(d["policy"]),
                   config=config, seed=int(d.get("seed", 0)),
                   telemetry=bool(d.get("telemetry", False)),
                   backend=str(d.get("backend", "batched")))


def _array_chunks(addresses: Any, chunk_bytes: int):
    """Split an in-memory address array into chunk-budget-sized views."""
    import numpy as np

    arr = np.ascontiguousarray(addresses, dtype=np.uint64)
    step = max(1, chunk_bytes // arr.itemsize)
    for start in range(0, len(arr), step):
        yield arr[start:start + step]


def _progress_chunks(chunks: Any, progress: Any, total: int):
    """Wrap a chunk iterable so ``progress(done, total)`` fires at every
    chunk boundary, *after* the engine has consumed the chunk (the
    callback runs when the engine asks for the next one, so reported
    work is always completed work).  Chunks are either address arrays or
    multi-core ``(addresses, core_ids)`` pairs; ``done`` counts accesses
    either way."""
    done = 0
    for chunk in chunks:
        yield chunk
        done += len(chunk[0]) if isinstance(chunk, tuple) else len(chunk)
        progress(done, total)


def simulate(target: Any, policy: PolicySpec | None = None, config: Any = None,
             seed: int = 0, engine: str | None = None, telemetry: bool = False,
             stream: bool = False, chunk_bytes: int | None = None,
             progress: Any = None):
    """Unified typed entry point.

    ``simulate(SimRequest(...))`` generates the trace from its spec and
    dispatches on the config type (single-level vs hierarchy) — this is
    the form the serving layer (:mod:`emissary.serve`) executes verbatim
    for every accepted wire request.  The array form
    ``simulate(addresses, PolicySpec(...), ...)`` runs a policy over an
    in-memory trace; the PR 2 string-policy shim has been removed.

    ``engine`` selects the backend (:data:`BACKENDS`): ``"batched"``
    (vectorized NumPy), ``"compiled"`` (native per-set kernels — see
    :mod:`emissary.compiled`), or ``"reference"`` (per-access oracle).
    When ``None`` it defaults to the request's ``backend`` field (or
    ``"batched"`` for the array form); an explicit value overrides the
    request.  All backends produce bit-identical outcomes.

    ``stream=True`` feeds the trace through the engine in fixed-size
    chunks (``chunk_bytes``, default :data:`emissary.trace_io.DEFAULT_CHUNK_BYTES`)
    instead of one array.  For a request whose trace is file-backed
    (``kind="file"``) the file is read incrementally, and synthetic
    traces are *generated* chunk-by-chunk
    (:meth:`~emissary.traces.TraceSpec.generate_chunks`), so peak memory
    is bounded by the chunk budget rather than the trace size either
    way.  Outcomes are bit-identical to the one-shot path.  Streaming
    requires a batched-engine backend (``"batched"`` or ``"compiled"``).

    ``telemetry=True`` (or a request with ``telemetry=True``) enables
    the instrumentation layer: the returned result's ``telemetry``
    attribute holds the counters, histograms, and phase spans.  Outcomes
    are bit-identical either way.

    ``progress`` (streaming only) is called as ``progress(done, total)``
    at every chunk boundary with the number of accesses already fed
    through the engine.  The serving layer's worker uses this to publish
    progress ticks; the callback must never raise.
    """
    from emissary.engine import BatchedEngine, ReferenceEngine
    from emissary.hierarchy import (BatchedHierarchyEngine, HierarchyConfig,
                                    HierarchyReferenceEngine)
    from emissary.telemetry import Telemetry

    if chunk_bytes is not None and not stream:
        raise TypeError("chunk_bytes only applies to stream=True")
    if progress is not None and not stream:
        raise TypeError("progress only applies to stream=True")

    chunks: Any = None
    total = 0
    multicore = False
    num_cores = 1
    core_ids = None
    if isinstance(target, SimRequest):
        if policy is not None or config is not None:
            raise TypeError("simulate(SimRequest) takes no policy/config "
                            "arguments — they live inside the request")
        spec, config, seed = target.policy, target.config, target.seed
        telemetry = telemetry or target.telemetry
        if engine is None:
            engine = target.backend
        multicore = target.is_multicore
        if multicore:
            num_cores = target.trace.num_cores
        if stream:
            from emissary import trace_io

            chunks = target.trace.generate_chunks(
                chunk_bytes=chunk_bytes or trace_io.DEFAULT_CHUNK_BYTES)
            total = target.trace.n
            addresses = None
        elif multicore:
            addresses, core_ids = target.trace.generate()
        else:
            addresses = target.trace.generate()
    else:
        addresses = target
        spec = require_policy_spec(policy, caller="simulate")
    if engine is None:
        engine = "batched"
    if stream and engine == "reference":
        raise ValueError("stream=True requires a batched-engine backend "
                         "('batched' or 'compiled'; the reference engines "
                         "have no streaming path)")

    hierarchy = isinstance(config, HierarchyConfig)
    if engine in ("batched", "compiled"):
        backend = "compiled" if engine == "compiled" else "python"
        if hierarchy:
            eng: Any = BatchedHierarchyEngine(
                config, telemetry=Telemetry() if telemetry else None,
                kernel_backend=backend)
        else:
            eng = BatchedEngine(config,
                                telemetry=Telemetry() if telemetry else None,
                                kernel_backend=backend)
    elif engine == "reference":
        cls = HierarchyReferenceEngine if hierarchy else ReferenceEngine
        eng = cls(config, telemetry=Telemetry() if telemetry else None)
    else:
        raise ValueError(f"unknown engine {engine!r}; known: {list(BACKENDS)}")
    if stream:
        if chunks is None:
            from emissary import trace_io

            total = len(addresses)
            chunks = _array_chunks(
                addresses, chunk_bytes or trace_io.DEFAULT_CHUNK_BYTES)
        if progress is not None:
            chunks = _progress_chunks(chunks, progress, total)
        if multicore:
            return eng.simulate_stream_multicore(chunks, spec,
                                                 num_cores=num_cores,
                                                 seed=seed)
        return eng.simulate_stream(chunks, spec, seed=seed)
    if multicore:
        return eng.run_multicore(addresses, core_ids, spec,
                                 num_cores=num_cores, seed=seed)
    return eng.run(addresses, spec, seed=seed)
