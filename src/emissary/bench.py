"""Throughput benchmark harness.

Runs every policy over a large synthetic trace on both engines, checks
that hit/miss outcomes are bit-identical, and writes a ``BENCH_*.json``
recording accesses/sec, speedup, and per-policy MPKI / hit-rate so the
performance trajectory is tracked from PR 1 onward.

Usage::

    python -m emissary.bench                 # 1M accesses, all policies
    python -m emissary.bench --n 100000 --policies lru,emissary
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
from typing import Any, Dict, List, Optional

import numpy as np

from emissary import __version__
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine
from emissary.policies import POLICY_NAMES
from emissary.traces import TraceSpec


def _best_of(engine, addresses: np.ndarray, policy: str, seed: int, repeats: int):
    """Fastest of ``repeats`` runs (timing noise floor); outcomes are seeded
    so every repeat is bit-identical and any run's hits are representative."""
    best = None
    for _ in range(max(1, repeats)):
        result = engine.run(addresses, policy, seed=seed)
        if best is None or result.elapsed_s < best.elapsed_s:
            best = result
    return best


def bench_policy(addresses: np.ndarray, policy: str, config: CacheConfig,
                 seed: int, skip_reference: bool = False,
                 repeats: int = 3) -> Dict[str, Any]:
    batched = _best_of(BatchedEngine(config), addresses, policy, seed, repeats)
    row: Dict[str, Any] = {
        "policy": policy,
        "batched": batched.to_dict(),
        "hit_rate": batched.hit_rate,
        "mpki": batched.mpki,
    }
    if not skip_reference:
        reference = _best_of(ReferenceEngine(config), addresses, policy, seed, repeats)
        identical = bool(np.array_equal(batched.hits, reference.hits))
        row["reference"] = reference.to_dict()
        row["outcomes_identical"] = identical
        row["speedup"] = reference.elapsed_s / batched.elapsed_s
    return row


def run_bench(n: int = 1_000_000, policies: Optional[List[str]] = None,
              trace_kind: str = "loop", seed: int = 42,
              config: Optional[CacheConfig] = None,
              skip_reference: bool = False, repeats: int = 3) -> Dict[str, Any]:
    config = config or CacheConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.num_sets * config.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()

    rows = [bench_policy(addresses, p, config, seed, skip_reference, repeats)
            for p in policies]
    report: Dict[str, Any] = {
        "benchmark": "engine_throughput",
        "emissary_version": __version__,
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "trace": spec.to_dict(),
        "cache": config.to_dict(),
        "policies": rows,
    }
    if not skip_reference:
        report["all_outcomes_identical"] = all(r["outcomes_identical"] for r in rows)
        report["min_speedup"] = min(r["speedup"] for r in rows)
        report["max_speedup"] = max(r["speedup"] for r in rows)
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)


def _summarize(report: Dict[str, Any]) -> str:
    lines = [f"trace={report['trace']['kind']} n={report['trace']['n']} "
             f"cache={report['cache']}"]
    header = f"{'policy':<10} {'hit%':>7} {'MPKI':>8} {'batched Macc/s':>15}"
    if "min_speedup" in report:
        header += f" {'naive Macc/s':>13} {'speedup':>8} {'identical':>9}"
    lines += [header, "-" * len(header)]
    for row in report["policies"]:
        line = (f"{row['policy']:<10} {100 * row['hit_rate']:>6.2f}% {row['mpki']:>8.2f} "
                f"{row['batched']['accesses_per_s'] / 1e6:>15.2f}")
        if "speedup" in row:
            line += (f" {row['reference']['accesses_per_s'] / 1e6:>13.2f} "
                     f"{row['speedup']:>7.1f}x {str(row['outcomes_identical']):>9}")
        lines.append(line)
    if "min_speedup" in report:
        lines.append(f"\nmin speedup {report['min_speedup']:.1f}x, "
                     f"all outcomes identical: {report['all_outcomes_identical']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="emissary.bench", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--n", type=int, default=1_000_000, help="trace length")
    parser.add_argument("--policies", default=",".join(POLICY_NAMES))
    parser.add_argument("--trace", default="loop", help="trace kind to benchmark on")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--num-sets", type=int, default=1024)
    parser.add_argument("--ways", type=int, default=8)
    parser.add_argument("--skip-reference", action="store_true",
                        help="benchmark only the batched engine (no oracle cross-check)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per engine (fastest run is reported)")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    report = run_bench(
        n=args.n,
        policies=[p for p in args.policies.split(",") if p],
        trace_kind=args.trace,
        seed=args.seed,
        config=CacheConfig(num_sets=args.num_sets, ways=args.ways),
        skip_reference=args.skip_reference,
        repeats=args.repeats,
    )
    print(_summarize(report))
    write_report(report, args.out)
    print(f"report written to {args.out}")
    if not args.skip_reference and not report["all_outcomes_identical"]:
        print("ERROR: batched and reference engines disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
