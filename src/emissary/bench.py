"""Throughput benchmark harness.

Runs every policy over a large synthetic trace on both engines, checks
that hit/miss outcomes are bit-identical, and writes a ``BENCH_*.json``
recording accesses/sec, speedup, and per-policy MPKI / hit-rate so the
performance trajectory is tracked from PR 1 onward.  With
``--hierarchy`` the same cross-check runs on the two-level L1I -> L2
engines (``BatchedHierarchyEngine`` vs the per-access
``HierarchyReferenceEngine``), comparing L1 hit vectors and L2 outcomes,
and writes ``BENCH_hierarchy.json``.

With ``--stream`` the same trace is written to disk (ChampSim gzip and
``.npy``), streamed back through ``simulate_stream`` at several chunk
budgets, checked bit-identical against the in-memory one-shot run, and
the streamed throughput is written to ``BENCH_stream.json``.

Usage::

    python -m emissary.bench                 # 1M accesses, all policies
    python -m emissary.bench --n 100000 --policies lru,emissary
    python -m emissary.bench --hierarchy     # two-level engine benchmark
    python -m emissary.bench --stream        # chunked streaming benchmark
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import platform
import sys
import tempfile
from collections.abc import Sequence
from pathlib import Path
from typing import Any

import numpy as np

from emissary import __version__
from emissary.api import PolicySpec
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine
from emissary.hierarchy import (BatchedHierarchyEngine, HierarchyConfig,
                                HierarchyReferenceEngine)
from emissary.policies import POLICY_NAMES
from emissary.telemetry import Telemetry
from emissary.traces import AddressArray, InterleaveSpec, TraceSpec

#: In the hierarchy bench, EMISSARY gates HP candidacy on measured L1I
#: miss counts (a line must have cost >= 2 demand misses to qualify).
#: Single-level runs have no measured signal, so they get no override.
EMISSARY_HIERARCHY_PARAMS = {"min_l1_misses": 2}


def _best_of(engine, addresses: AddressArray, spec: PolicySpec, seed: int, repeats: int):
    """Fastest of ``repeats`` runs (timing noise floor); outcomes are seeded
    so every repeat is bit-identical and any run's hits are representative."""
    best = None
    for _ in range(max(1, repeats)):
        result = engine.run(addresses, spec, seed=seed)
        if best is None or result.elapsed_s < best.elapsed_s:
            best = result
    return best


def bench_policy(addresses: AddressArray, spec: PolicySpec, config: CacheConfig,
                 seed: int, skip_reference: bool = False,
                 repeats: int = 3) -> dict[str, Any]:
    batched = _best_of(BatchedEngine(config), addresses, spec, seed, repeats)
    row: dict[str, Any] = {
        "policy": spec.name,
        "batched": batched.to_dict(),
        "hit_rate": batched.hit_rate,
        "mpki": batched.mpki,
    }
    if not skip_reference:
        reference = _best_of(ReferenceEngine(config), addresses, spec, seed, repeats)
        identical = bool(np.array_equal(batched.hits, reference.hits))
        row["reference"] = reference.to_dict()
        row["outcomes_identical"] = identical
        row["speedup"] = reference.elapsed_s / batched.elapsed_s
    return row


def bench_hierarchy_policy(addresses: AddressArray, spec: PolicySpec,
                           config: HierarchyConfig, seed: int,
                           skip_reference: bool = False,
                           repeats: int = 3) -> dict[str, Any]:
    batched = _best_of(BatchedHierarchyEngine(config), addresses, spec, seed, repeats)
    row: dict[str, Any] = {
        "policy": spec.name,
        "batched": batched.to_dict(),
        "l1_hit_rate": batched.l1_hit_rate,
        "l2_local_hit_rate": batched.l2_local_hit_rate,
        "l2_mpki": batched.l2_mpki,
    }
    if not skip_reference:
        reference = _best_of(HierarchyReferenceEngine(config), addresses, spec,
                             seed, repeats)
        identical = bool(np.array_equal(batched.l1.hits, reference.l1.hits)
                         and np.array_equal(batched.l2.hits, reference.l2.hits))
        row["reference"] = reference.to_dict()
        row["outcomes_identical"] = identical
        row["speedup"] = reference.elapsed_s / batched.elapsed_s
    return row


def bench_multicore_policy(addresses: AddressArray, core_ids: Any,
                           num_cores: int, spec: PolicySpec,
                           config: HierarchyConfig, seed: int,
                           skip_reference: bool = False,
                           repeats: int = 3) -> dict[str, Any]:
    """One N-core shared-L2 bench row: batched throughput, and (unless
    skipped) bit-identity plus speedup against the per-access multi-core
    oracle — hit vectors at both levels *and* the per-core fairness
    breakdown must match."""
    engine = BatchedHierarchyEngine(config)
    batched = None
    for _ in range(max(1, repeats)):
        result = engine.run_multicore(addresses, core_ids, spec,
                                      num_cores=num_cores, seed=seed)
        if batched is None or result.elapsed_s < batched.elapsed_s:
            batched = result
    row: dict[str, Any] = {
        "policy": spec.name,
        "params": dict(spec.params),
        "num_cores": num_cores,
        "batched": batched.to_dict(),
        "l1_hit_rate": batched.l1_hit_rate,
        "l2_local_hit_rate": batched.l2_local_hit_rate,
        "l2_mpki": batched.l2_mpki,
        "per_core": batched.per_core,
    }
    if not skip_reference:
        reference = HierarchyReferenceEngine(config).run_multicore(
            addresses, core_ids, spec, num_cores=num_cores, seed=seed)
        identical = bool(np.array_equal(batched.l1.hits, reference.l1.hits)
                         and np.array_equal(batched.l2.hits, reference.l2.hits)
                         and batched.per_core == reference.per_core)
        row["reference"] = reference.to_dict()
        row["outcomes_identical"] = identical
        row["speedup"] = reference.elapsed_s / batched.elapsed_s
    return row


def _bench_specs(policies: list[str], hierarchy: bool = False) -> list[PolicySpec]:
    extra = EMISSARY_HIERARCHY_PARAMS if hierarchy else {}
    return [PolicySpec(p, dict(extra) if p == "emissary" else {}) for p in policies]


def _finalize(report: dict[str, Any], rows: list[dict[str, Any]],
              skip_reference: bool) -> dict[str, Any]:
    report["policies"] = rows
    if not skip_reference:
        report["all_outcomes_identical"] = all(r["outcomes_identical"] for r in rows)
        report["min_speedup"] = min(r["speedup"] for r in rows)
        report["max_speedup"] = max(r["speedup"] for r in rows)
    return report


def _report_header(benchmark: str, spec: TraceSpec) -> dict[str, Any]:
    return {
        "benchmark": benchmark,
        "emissary_version": __version__,
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "trace": spec.to_dict(),
    }


def run_bench(n: int = 1_000_000, policies: list[str] | None = None,
              trace_kind: str = "loop", seed: int = 42,
              config: CacheConfig | None = None,
              skip_reference: bool = False, repeats: int = 3) -> dict[str, Any]:
    config = config or CacheConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.num_sets * config.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()

    rows = [bench_policy(addresses, p, config, seed, skip_reference, repeats)
            for p in _bench_specs(policies)]
    report = _report_header("engine_throughput", spec)
    report["cache"] = config.to_dict()
    return _finalize(report, rows, skip_reference)


def run_hierarchy_bench(n: int = 1_000_000, policies: list[str] | None = None,
                        trace_kind: str = "loop", seed: int = 42,
                        config: HierarchyConfig | None = None,
                        skip_reference: bool = False,
                        repeats: int = 3) -> dict[str, Any]:
    config = config or HierarchyConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.l2.num_sets * config.l2.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()

    rows = [bench_hierarchy_policy(addresses, p, config, seed, skip_reference, repeats)
            for p in _bench_specs(policies, hierarchy=True)]
    report = _report_header("hierarchy_throughput", spec)
    report["hierarchy"] = config.to_dict()
    report = _finalize(report, rows, skip_reference)

    # Multi-core arm: two instruction streams interleaved 2:1 into the
    # shared L2, benched with LRU and partitioned-budget EMISSARY and
    # (unless skipped) proven bit-identical to the per-access N-core
    # oracle — including the per-core fairness breakdown.
    mix = InterleaveSpec(
        cores=(TraceSpec(trace_kind, n // 2, seed,
                         {"footprint_lines": footprint}
                         if trace_kind in ("loop", "shift") else {}),
               TraceSpec("call", n // 4, seed + 1)),
        weights=(2, 1))
    mc_addresses, mc_cores = mix.generate()
    mc_specs = [PolicySpec("lru"),
                PolicySpec("emissary", {**EMISSARY_HIERARCHY_PARAMS,
                                        "hp_budget": "partitioned"})]
    mc_rows = [bench_multicore_policy(mc_addresses, mc_cores, mix.num_cores,
                                      p, config, seed, skip_reference, repeats)
               for p in mc_specs]
    multicore: dict[str, Any] = {"trace": mix.to_dict(), "policies": mc_rows}
    if not skip_reference:
        multicore["all_outcomes_identical"] = all(
            r["outcomes_identical"] for r in mc_rows)
        report["all_outcomes_identical"] = (
            report["all_outcomes_identical"]
            and multicore["all_outcomes_identical"])
    report["multicore"] = multicore
    return report


def run_backend_bench(n: int = 1_000_000, policies: list[str] | None = None,
                      trace_kind: str = "loop", seed: int = 42,
                      config: CacheConfig | None = None,
                      l1_config: CacheConfig | None = None,
                      skip_reference: bool = False,
                      repeats: int = 3) -> dict[str, Any]:
    """Benchmark the compiled kernel backend against python-batched (and
    the per-access reference oracle) on every policy, plus one two-level
    hierarchy point where EMISSARY's ``cost`` channel is live.

    Timings are *warm*: each compiled engine runs a small slice first so
    provider setup (numba JIT or the C build/load) is paid before the
    clock starts, and ``_best_of`` keeps the fastest of ``repeats`` runs.
    Every row records ``outcomes_identical`` (hit vectors and policy
    stats across backends) and the report carries the aggregate
    ``all_outcomes_identical`` — a speedup that changes outcomes is a
    bug, not a result.  The compiled provider is resolved up front and
    the bench fails loudly when none is available (a silent fallback to
    the python kernels would benchmark python against itself).
    """
    from emissary.compiled import get_kernels

    provider = get_kernels().name  # raises CompiledUnavailableError: fail loudly
    config = config or CacheConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.num_sets * config.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()
    warm = addresses[:min(len(addresses), 65_536)]

    rows: list[dict[str, Any]] = []
    for policy_spec in _bench_specs(policies):
        python = _best_of(BatchedEngine(config), addresses, policy_spec, seed,
                          repeats)
        compiled_engine = BatchedEngine(config, kernel_backend="compiled")
        compiled_engine.run(warm, policy_spec, seed=seed)  # JIT/build warm-up
        compiled = _best_of(compiled_engine, addresses, policy_spec, seed,
                            repeats)
        identical = bool(np.array_equal(python.hits, compiled.hits)
                         and python.policy_stats == compiled.policy_stats)
        row: dict[str, Any] = {
            "policy": policy_spec.name,
            "hierarchy": False,
            "hit_rate": python.hit_rate,
            "mpki": python.mpki,
            "python": python.to_dict(),
            "compiled": compiled.to_dict(),
            "speedup_vs_python": python.elapsed_s / compiled.elapsed_s,
        }
        if not skip_reference:
            reference = _best_of(ReferenceEngine(config), addresses,
                                 policy_spec, seed, repeats)
            identical = identical and bool(
                np.array_equal(reference.hits, compiled.hits))
            row["reference"] = reference.to_dict()
            row["speedup_vs_reference"] = \
                reference.elapsed_s / compiled.elapsed_s
        row["outcomes_identical"] = identical
        rows.append(row)

    # The paper's setting: EMISSARY behind an L1I filter, with HP
    # candidacy gated on measured L1I miss counts (cost channel live).
    hier = HierarchyConfig(l1=l1_config or CacheConfig(num_sets=64, ways=8),
                           l2=config)
    hier_spec = PolicySpec("emissary", dict(EMISSARY_HIERARCHY_PARAMS))
    python_h = _best_of(BatchedHierarchyEngine(hier), addresses, hier_spec,
                        seed, repeats)
    compiled_h_engine = BatchedHierarchyEngine(hier, kernel_backend="compiled")
    compiled_h_engine.run(warm, hier_spec, seed=seed)
    compiled_h = _best_of(compiled_h_engine, addresses, hier_spec, seed,
                          repeats)
    identical = bool(np.array_equal(python_h.l1.hits, compiled_h.l1.hits)
                     and np.array_equal(python_h.l2.hits, compiled_h.l2.hits)
                     and python_h.l2.policy_stats == compiled_h.l2.policy_stats)
    hier_row: dict[str, Any] = {
        "policy": "emissary",
        "hierarchy": True,
        "hit_rate": python_h.l2_local_hit_rate,
        "mpki": python_h.l2_mpki,
        "python": python_h.to_dict(),
        "compiled": compiled_h.to_dict(),
        "speedup_vs_python": python_h.elapsed_s / compiled_h.elapsed_s,
    }
    if not skip_reference:
        reference_h = _best_of(HierarchyReferenceEngine(hier), addresses,
                               hier_spec, seed, repeats)
        identical = identical and bool(
            np.array_equal(reference_h.l1.hits, compiled_h.l1.hits)
            and np.array_equal(reference_h.l2.hits, compiled_h.l2.hits))
        hier_row["reference"] = reference_h.to_dict()
        hier_row["speedup_vs_reference"] = \
            reference_h.elapsed_s / compiled_h.elapsed_s
    hier_row["outcomes_identical"] = identical
    rows.append(hier_row)

    report = _report_header("backend_throughput", spec)
    report["cache"] = config.to_dict()
    report["hierarchy"] = hier.to_dict()
    report["compiled_provider"] = provider
    report["policies"] = rows
    report["all_outcomes_identical"] = all(r["outcomes_identical"] for r in rows)
    report["min_speedup_vs_python"] = min(r["speedup_vs_python"] for r in rows)
    report["max_speedup_vs_python"] = max(r["speedup_vs_python"] for r in rows)
    return report


def _summarize_backend(report: dict[str, Any]) -> str:
    lines = [f"trace={report['trace']['kind']} n={report['trace']['n']} "
             f"cache={report['cache']} "
             f"compiled provider={report['compiled_provider']}"]
    has_ref = any("reference" in row for row in report["policies"])
    header = (f"{'policy':<20} {'hit%':>7} {'python Macc/s':>14} "
              f"{'compiled Macc/s':>16} {'speedup':>8}")
    if has_ref:
        header += f" {'naive Macc/s':>13} {'vs naive':>9}"
    header += f" {'identical':>9}"
    lines += [header, "-" * len(header)]
    for row in report["policies"]:
        name = row["policy"] + (" (L1I->L2)" if row["hierarchy"] else "")
        line = (f"{name:<20} {100 * row['hit_rate']:>6.2f}% "
                f"{row['python']['accesses_per_s'] / 1e6:>14.2f} "
                f"{row['compiled']['accesses_per_s'] / 1e6:>16.2f} "
                f"{row['speedup_vs_python']:>7.1f}x")
        if has_ref:
            line += (f" {row['reference']['accesses_per_s'] / 1e6:>13.2f} "
                     f"{row['speedup_vs_reference']:>8.1f}x")
        line += f" {str(row['outcomes_identical']):>9}"
        lines.append(line)
    lines.append(f"\ncompiled speedup vs python-batched: "
                 f"{report['min_speedup_vs_python']:.1f}x - "
                 f"{report['max_speedup_vs_python']:.1f}x, "
                 f"all outcomes identical: {report['all_outcomes_identical']}")
    return "\n".join(lines)


#: Chunk budgets exercised by the streaming benchmark: small enough that
#: a 1M-access trace crosses many chunk boundaries, up to the reader
#: default (8 MiB).
STREAM_CHUNK_BYTES = (256 << 10, 1 << 20, 8 << 20)
STREAM_FORMATS = ("champsim.gz", "npy")


def run_stream_bench(n: int = 1_000_000, policies: list[str] | None = None,
                     trace_kind: str = "loop", seed: int = 42,
                     config: CacheConfig | None = None,
                     chunk_sizes: Sequence[int] = STREAM_CHUNK_BYTES,
                     formats: Sequence[str] = STREAM_FORMATS,
                     repeats: int = 3) -> dict[str, Any]:
    """Benchmark chunked streaming against the in-memory one-shot path.

    The synthetic trace is materialized once, written to disk in each
    ``formats`` entry, then for every policy x format x chunk budget the
    file is re-opened and fed through
    :meth:`~emissary.engine.BatchedEngine.simulate_stream`.  Each
    streamed run's hit vector and policy stats must be bit-identical to
    the one-shot run — the report carries ``outcomes_identical`` per
    combination and CI fails on any mismatch.  Streamed timings include
    file decode, so ``relative_throughput`` is the honest cost of
    bounding memory by the chunk budget.
    """
    from emissary import trace_io

    config = config or CacheConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.num_sets * config.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()

    rows: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="emissary_bench_") as td:
        files = {}
        for fmt in formats:
            path = Path(td) / f"trace.{fmt}"
            trace_io.write_trace(path, [addresses], format=fmt)
            files[fmt] = path

        for policy_spec in _bench_specs(policies):
            baseline = _best_of(BatchedEngine(config), addresses, policy_spec,
                                seed, repeats)
            row: dict[str, Any] = {
                "policy": policy_spec.name,
                "in_memory": baseline.to_dict(),
                "hit_rate": baseline.hit_rate,
                "mpki": baseline.mpki,
                "streams": [],
            }
            for fmt, path in files.items():
                for chunk_bytes in chunk_sizes:
                    best = None
                    for _ in range(max(1, repeats)):
                        source = trace_io.open_trace(path, chunk_bytes=chunk_bytes)
                        result = BatchedEngine(config).simulate_stream(
                            source, policy_spec, seed=seed)
                        if best is None or result.elapsed_s < best.elapsed_s:
                            best = result
                    identical = bool(
                        np.array_equal(best.hits, baseline.hits)
                        and best.policy_stats == baseline.policy_stats)
                    row["streams"].append({
                        "format": fmt,
                        "chunk_bytes": chunk_bytes,
                        "elapsed_s": best.elapsed_s,
                        "accesses_per_s": best.accesses_per_s,
                        "relative_throughput":
                            best.accesses_per_s / baseline.accesses_per_s,
                        "outcomes_identical": identical,
                    })
            row["outcomes_identical"] = all(s["outcomes_identical"]
                                            for s in row["streams"])
            rows.append(row)

    report = _report_header("stream_throughput", spec)
    report["cache"] = config.to_dict()
    report["chunk_bytes"] = list(chunk_sizes)
    report["formats"] = list(formats)
    report["policies"] = rows
    report["all_outcomes_identical"] = all(r["outcomes_identical"] for r in rows)
    return report


def _summarize_stream(report: dict[str, Any]) -> str:
    lines = [f"trace={report['trace']['kind']} n={report['trace']['n']} "
             f"cache={report['cache']} formats={','.join(report['formats'])}"]
    header = (f"{'policy':<10} {'format':<12} {'chunk':>8} {'Macc/s':>8} "
              f"{'vs memory':>10} {'identical':>9}")
    lines += [header, "-" * len(header)]
    for row in report["policies"]:
        mem = row["in_memory"]["accesses_per_s"]
        lines.append(f"{row['policy']:<10} {'(in memory)':<12} {'-':>8} "
                     f"{mem / 1e6:>8.2f} {'1.00x':>10} {'-':>9}")
        for s in row["streams"]:
            chunk = f"{s['chunk_bytes'] >> 10}K"
            lines.append(f"{'':<10} {s['format']:<12} {chunk:>8} "
                         f"{s['accesses_per_s'] / 1e6:>8.2f} "
                         f"{s['relative_throughput']:>9.2f}x "
                         f"{str(s['outcomes_identical']):>9}")
    lines.append(f"\nall streamed outcomes identical: "
                 f"{report['all_outcomes_identical']}")
    return "\n".join(lines)


def _serve_obs_arm_rps(obs: bool, clients: int, requests_per_client: int,
                       distinct: int,
                       seed: int) -> tuple[float, dict[str, int]]:
    """One serve-path arm: in-process server + loadgen, fresh cache dir.

    Each arm gets its own temporary results cache, and a short
    *unmeasured* pass populates it first: the measured pass is pure
    steady-state request handling (cache hits + the obs plane), because
    a handful of cold-miss simulations racing inside a sub-second
    window would otherwise dominate the wall time and drown the
    obs-on/off signal in scheduling noise.  Returns the measured pass's
    throughput and the arm's final ``serve.latency_us`` histogram
    (stringified keys, the ``to_dict`` form) so the report can derive
    latency percentiles.
    """
    from emissary.serve.loadgen import run_loadgen
    from emissary.serve.server import start_server
    from emissary.serve.service import SimService

    async def _run() -> tuple[float, dict[str, int]]:
        with tempfile.TemporaryDirectory(prefix="emissary-obsbench-") as tmp:
            service = SimService(cache_dir=tmp, max_workers=2, obs=obs,
                                 queue_watermark=max(64, clients))
            server = await start_server(service, "127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                await run_loadgen(  # populate the cache; not measured
                    "127.0.0.1", port, clients=distinct,
                    requests_per_client=1, distinct=distinct, seed=seed)
                payload = await run_loadgen(
                    "127.0.0.1", port, clients=clients,
                    requests_per_client=requests_per_client,
                    distinct=distinct, seed=seed)
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            hist = service.telemetry.histograms.get("serve.latency_us", {})
            return float(payload["req_per_s"]), {str(value): count
                                                 for value, count
                                                 in sorted(hist.items())}

    return asyncio.run(_run())


def run_serve_obs_overhead_bench(clients: int = 64,
                                 requests_per_client: int = 16,
                                 distinct: int = 8, seed: int = 0,
                                 repeats: int = 3) -> dict[str, Any]:
    """Measure what the observability plane costs the serve path.

    Same interleaved-arm discipline as the kernel guard: ``off`` /
    ``off_control`` are two identical ``obs=False`` servers (their gap
    is the noise floor), ``on`` is ``obs=True`` — per-request trace
    contexts, server-side phase spans, the log ring, and the request
    epilogue all active.  Each arm boots a fresh in-process server and
    drives the standard loadgen mix against it; best-of throughput per
    arm is compared.  ``obs_overhead`` is the on-vs-best-off throughput
    delta — the number the README quotes and BENCH_telemetry.json
    records.
    """
    arms = ("off", "off_control", "on")
    rps: dict[str, list[float]] = {arm: [] for arm in arms}
    latency_hist: dict[str, int] = {}
    _serve_obs_arm_rps(False, clients, requests_per_client, distinct, seed)  # warmup
    for repeat in range(max(1, repeats)):
        for offset in range(len(arms)):
            arm = arms[(repeat + offset) % len(arms)]
            arm_rps, hist = _serve_obs_arm_rps(
                arm == "on", clients, requests_per_client, distinct, seed)
            rps[arm].append(arm_rps)
            if arm == "on" and arm_rps >= max(rps["on"]):
                latency_hist = hist
    off = max(rps["off"])
    control = max(rps["off_control"])
    on = max(rps["on"])
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "distinct_configs": distinct,
        "repeats": max(1, repeats),
        "off_req_per_s": round(off, 2),
        "off_control_req_per_s": round(control, 2),
        "on_req_per_s": round(on, 2),
        "off_overhead": control / off - 1.0,
        # off vs on, each best-of-``repeats`` — deliberately NOT
        # max(off, control) vs on, which would pit the best of six
        # disabled runs against the best of three enabled ones and bias
        # the overhead estimate upward by the noise floor.
        "obs_overhead": off / on - 1.0,
        "latency_us_hist": latency_hist,
    }


def run_telemetry_overhead_bench(n: int = 200_000,
                                 policies: list[str] | None = None,
                                 trace_kind: str = "loop", seed: int = 42,
                                 config: CacheConfig | None = None,
                                 repeats: int = 5) -> dict[str, Any]:
    """Guard the telemetry-off default path against overhead creep.

    Telemetry-off is *structurally* free: disabled engines hold
    ``telemetry=None`` and kernels only swap in their instrumented loop
    when attached (the telemetry tests assert the fast ``run_set`` is
    untouched).  This bench backs that design claim with a measurement
    CI can gate on.  Three interleaved arms per policy:

    ``off`` / ``off_control``
        Two identical telemetry-disabled runs.  Their best-of ratio is
        the honest measurement-noise floor for this machine; the guard
        ``off_overhead = min(off) / min(off_control) - 1`` must stay
        under the CI threshold (default 5%).  Any change that leaks
        per-access work onto the disabled path also widens the on/off
        gap tracked below, and fails the structural test outright.

    ``on``
        The instrumented run, reported as ``on_cost`` (slowdown vs the
        best disabled arm) — allowed to be expensive, tracked so the
        cost of *enabling* telemetry stays visible in BENCH history.

    Arms are interleaved and their order rotates every repeat, and each
    policy gets one discarded warmup run first, so cold-start cost and
    cache/thermal drift land evenly across arms instead of biasing
    whichever arm happens to run first or last.
    """
    config = config or CacheConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.num_sets * config.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()

    arms = ("off", "off_control", "on")
    rows: list[dict[str, Any]] = []
    for policy_spec in _bench_specs(policies):
        BatchedEngine(config).run(addresses, policy_spec, seed=seed)  # warmup
        times: dict[str, list[float]] = {arm: [] for arm in arms}
        for repeat in range(max(1, repeats)):
            for offset in range(len(arms)):
                arm = arms[(repeat + offset) % len(arms)]
                telemetry = Telemetry() if arm == "on" else None
                result = BatchedEngine(config, telemetry=telemetry).run(
                    addresses, policy_spec, seed=seed)
                times[arm].append(result.elapsed_s)
        off = min(times["off"])
        control = min(times["off_control"])
        on = min(times["on"])
        rows.append({
            "policy": policy_spec.name,
            "off_s": off,
            "off_control_s": control,
            "on_s": on,
            "off_overhead": off / control - 1.0,
            "on_cost": on / min(off, control) - 1.0,
        })

    report = _report_header("telemetry_overhead", spec)
    report["cache"] = config.to_dict()
    report["repeats"] = max(1, repeats)
    report["policies"] = rows
    report["max_off_overhead"] = max(r["off_overhead"] for r in rows)
    return report


def run_sanitizer_overhead_bench(n: int = 200_000,
                                 policies: list[str] | None = None,
                                 trace_kind: str = "loop", seed: int = 42,
                                 config: CacheConfig | None = None,
                                 repeats: int = 5) -> dict[str, Any]:
    """Guard the sanitizer-off default path against overhead creep.

    Mirrors :func:`run_telemetry_overhead_bench`: detached sanitizers are
    structurally free (engines hold ``sanitizer=None`` and only wrap the
    kernel dispatch loop when one is attached), so the guard is the
    best-of ratio between two identical sanitizer-off arms, which must
    stay under the CI threshold.  The ``on`` arm attaches a
    :class:`~emissary.analysis.sanitizer.Sanitizer`, is allowed to be
    expensive, and is tracked as ``on_cost``; its outcomes must stay
    bit-identical to the unsanitized run (``outcomes_identical``).
    """
    from emissary.analysis.sanitizer import Sanitizer

    config = config or CacheConfig()
    policies = policies or list(POLICY_NAMES)
    footprint = int(config.num_sets * config.ways * 1.5)
    spec = TraceSpec(trace_kind, n, seed, {"footprint_lines": footprint}
                     if trace_kind in ("loop", "shift") else {})
    addresses = spec.generate()

    arms = ("off", "off_control", "on")
    rows: list[dict[str, Any]] = []
    for policy_spec in _bench_specs(policies):
        baseline = BatchedEngine(config).run(addresses, policy_spec, seed=seed)
        times: dict[str, list[float]] = {arm: [] for arm in arms}
        identical = True
        checks = 0
        for repeat in range(max(1, repeats)):
            for offset in range(len(arms)):
                arm = arms[(repeat + offset) % len(arms)]
                sanitizer = Sanitizer() if arm == "on" else None
                result = BatchedEngine(config, sanitizer=sanitizer).run(
                    addresses, policy_spec, seed=seed)
                times[arm].append(result.elapsed_s)
                if sanitizer is not None:
                    checks = sanitizer.checks
                    identical = identical and bool(
                        np.array_equal(result.hits, baseline.hits))
        off = min(times["off"])
        control = min(times["off_control"])
        on = min(times["on"])
        rows.append({
            "policy": policy_spec.name,
            "off_s": off,
            "off_control_s": control,
            "on_s": on,
            "off_overhead": off / control - 1.0,
            "on_cost": on / min(off, control) - 1.0,
            "checks": checks,
            "outcomes_identical": identical,
        })

    report = _report_header("sanitizer_overhead", spec)
    report["cache"] = config.to_dict()
    report["repeats"] = max(1, repeats)
    report["policies"] = rows
    report["max_off_overhead"] = max(r["off_overhead"] for r in rows)
    report["all_outcomes_identical"] = all(r["outcomes_identical"] for r in rows)
    return report


def _summarize_overhead_rows(report: dict[str, Any], off_label: str) -> str:
    lines = [f"trace={report['trace']['kind']} n={report['trace']['n']} "
             f"cache={report['cache']} repeats={report['repeats']}"]
    header = (f"{'policy':<10} {'off ms':>8} {'control ms':>11} {'on ms':>8} "
              f"{'off overhead':>13} {'on cost':>9}")
    lines += [header, "-" * len(header)]
    for row in report["policies"]:
        lines.append(f"{row['policy']:<10} {1e3 * row['off_s']:>8.2f} "
                     f"{1e3 * row['off_control_s']:>11.2f} {1e3 * row['on_s']:>8.2f} "
                     f"{100 * row['off_overhead']:>+12.2f}% "
                     f"{100 * row['on_cost']:>+8.1f}%")
    lines.append(f"\nmax {off_label}-off overhead: "
                 f"{100 * report['max_off_overhead']:+.2f}%")
    return "\n".join(lines)


def _summarize_sanitizer_overhead(report: dict[str, Any]) -> str:
    out = _summarize_overhead_rows(report, "sanitizer")
    return (out + f"\nall sanitized outcomes identical: "
                  f"{report['all_outcomes_identical']}")


def _summarize_telemetry_overhead(report: dict[str, Any]) -> str:
    out = _summarize_overhead_rows(report, "telemetry")
    serve = report.get("serve")
    if serve:
        out += (f"\nserve path: off {serve['off_req_per_s']:.0f} req/s, "
                f"on {serve['on_req_per_s']:.0f} req/s, "
                f"obs overhead {100 * serve['obs_overhead']:+.2f}%")
    return out


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)


def _summarize(report: dict[str, Any]) -> str:
    hierarchy = report["benchmark"] == "hierarchy_throughput"
    geometry = report["hierarchy"] if hierarchy else report["cache"]
    lines = [f"trace={report['trace']['kind']} n={report['trace']['n']} "
             f"{'hierarchy' if hierarchy else 'cache'}={geometry}"]
    if hierarchy:
        header = (f"{'policy':<10} {'L1hit%':>7} {'L2hit%':>7} {'L2MPKI':>8} "
                  f"{'batched Macc/s':>15}")
    else:
        header = f"{'policy':<10} {'hit%':>7} {'MPKI':>8} {'batched Macc/s':>15}"
    if "min_speedup" in report:
        header += f" {'naive Macc/s':>13} {'speedup':>8} {'identical':>9}"
    lines += [header, "-" * len(header)]
    for row in report["policies"]:
        if hierarchy:
            line = (f"{row['policy']:<10} {100 * row['l1_hit_rate']:>6.2f}% "
                    f"{100 * row['l2_local_hit_rate']:>6.2f}% {row['l2_mpki']:>8.2f} "
                    f"{row['batched']['accesses_per_s'] / 1e6:>15.2f}")
        else:
            line = (f"{row['policy']:<10} {100 * row['hit_rate']:>6.2f}% "
                    f"{row['mpki']:>8.2f} "
                    f"{row['batched']['accesses_per_s'] / 1e6:>15.2f}")
        if "speedup" in row:
            line += (f" {row['reference']['accesses_per_s'] / 1e6:>13.2f} "
                     f"{row['speedup']:>7.1f}x {str(row['outcomes_identical']):>9}")
        lines.append(line)
    if "min_speedup" in report:
        lines.append(f"\nmin speedup {report['min_speedup']:.1f}x, "
                     f"all outcomes identical: {report['all_outcomes_identical']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="emissary.bench", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--n", type=int, default=1_000_000, help="trace length")
    parser.add_argument("--policies", default=",".join(POLICY_NAMES))
    parser.add_argument("--trace", default="loop", help="trace kind to benchmark on")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--num-sets", type=int, default=1024)
    parser.add_argument("--ways", type=int, default=8)
    parser.add_argument("--hierarchy", action="store_true",
                        help="benchmark the two-level L1I -> L2 engines")
    parser.add_argument("--l1-sets", type=int, default=64)
    parser.add_argument("--l1-ways", type=int, default=8)
    parser.add_argument("--skip-reference", action="store_true",
                        help="benchmark only the batched engine (no oracle cross-check)")
    parser.add_argument("--stream", action="store_true",
                        help="benchmark chunked trace streaming (file formats x "
                             "chunk budgets) against the in-memory path")
    parser.add_argument("--backend", action="store_true",
                        help="benchmark the compiled kernel backend against "
                             "python-batched (and the reference oracle) on "
                             "every policy plus a hierarchy point")
    parser.add_argument("--chunk-bytes",
                        default=",".join(str(c) for c in STREAM_CHUNK_BYTES),
                        help="comma-separated chunk budgets (bytes) for --stream")
    parser.add_argument("--telemetry-overhead", action="store_true",
                        help="run the telemetry-off overhead guard instead of "
                             "the throughput benchmark (includes the serve-path "
                             "obs-overhead arm unless --skip-serve)")
    parser.add_argument("--skip-serve", action="store_true",
                        help="with --telemetry-overhead: skip the serve-path "
                             "obs on/off arm")
    parser.add_argument("--sanitizer-overhead", action="store_true",
                        help="run the sanitizer-off overhead guard instead of "
                             "the throughput benchmark")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail (exit 1) if the telemetry-/sanitizer-off "
                             "overhead exceeds this fraction (default 0.05 = 5%%)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per engine (fastest run is reported)")
    parser.add_argument("--out", default=None,
                        help="report path (default BENCH_engine.json, or "
                             "BENCH_hierarchy.json with --hierarchy)")
    args = parser.parse_args(argv)

    policies = [p for p in args.policies.split(",") if p]
    l2 = CacheConfig(num_sets=args.num_sets, ways=args.ways)
    if args.telemetry_overhead:
        report = run_telemetry_overhead_bench(
            n=args.n, policies=policies, trace_kind=args.trace, seed=args.seed,
            config=l2, repeats=args.repeats)
        if not args.skip_serve:
            report["serve"] = run_serve_obs_overhead_bench(
                seed=args.seed, repeats=min(3, max(1, args.repeats)))
        out = args.out or "BENCH_telemetry.json"
        print(_summarize_telemetry_overhead(report))
        write_report(report, out)
        print(f"report written to {out}")
        if report["max_off_overhead"] > args.max_overhead:
            print(f"ERROR: telemetry-off overhead "
                  f"{100 * report['max_off_overhead']:.2f}% exceeds "
                  f"{100 * args.max_overhead:.2f}% budget", file=sys.stderr)
            return 1
        return 0
    if args.sanitizer_overhead:
        report = run_sanitizer_overhead_bench(
            n=args.n, policies=policies, trace_kind=args.trace, seed=args.seed,
            config=l2, repeats=args.repeats)
        out = args.out or "BENCH_sanitizer.json"
        print(_summarize_sanitizer_overhead(report))
        write_report(report, out)
        print(f"report written to {out}")
        if not report["all_outcomes_identical"]:
            print("ERROR: sanitized outcomes differ from the unsanitized run",
                  file=sys.stderr)
            return 1
        if report["max_off_overhead"] > args.max_overhead:
            print(f"ERROR: sanitizer-off overhead "
                  f"{100 * report['max_off_overhead']:.2f}% exceeds "
                  f"{100 * args.max_overhead:.2f}% budget", file=sys.stderr)
            return 1
        return 0
    if args.backend:
        report = run_backend_bench(
            n=args.n, policies=policies, trace_kind=args.trace, seed=args.seed,
            config=l2,
            l1_config=CacheConfig(num_sets=args.l1_sets, ways=args.l1_ways),
            skip_reference=args.skip_reference, repeats=args.repeats)
        out = args.out or "BENCH_backend.json"
        print(_summarize_backend(report))
        write_report(report, out)
        print(f"report written to {out}")
        if not report["all_outcomes_identical"]:
            print("ERROR: compiled backend outcomes differ from python",
                  file=sys.stderr)
            return 1
        return 0
    if args.stream:
        report = run_stream_bench(
            n=args.n, policies=policies, trace_kind=args.trace, seed=args.seed,
            config=l2,
            chunk_sizes=[int(c) for c in args.chunk_bytes.split(",") if c],
            repeats=args.repeats)
        out = args.out or "BENCH_stream.json"
        print(_summarize_stream(report))
        write_report(report, out)
        print(f"report written to {out}")
        if not report["all_outcomes_identical"]:
            print("ERROR: streamed outcomes differ from the in-memory run",
                  file=sys.stderr)
            return 1
        return 0
    if args.hierarchy:
        report = run_hierarchy_bench(
            n=args.n, policies=policies, trace_kind=args.trace, seed=args.seed,
            config=HierarchyConfig(l1=CacheConfig(num_sets=args.l1_sets,
                                                  ways=args.l1_ways), l2=l2),
            skip_reference=args.skip_reference, repeats=args.repeats)
        out = args.out or "BENCH_hierarchy.json"
    else:
        report = run_bench(
            n=args.n, policies=policies, trace_kind=args.trace, seed=args.seed,
            config=l2, skip_reference=args.skip_reference, repeats=args.repeats)
        out = args.out or "BENCH_engine.json"
    print(_summarize(report))
    write_report(report, out)
    print(f"report written to {out}")
    if not args.skip_reference and not report["all_outcomes_identical"]:
        print("ERROR: batched and reference engines disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
