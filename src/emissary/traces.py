"""Synthetic instruction-stream trace generators.

Each generator returns a NumPy ``uint64`` array of byte addresses that
mimics a class of L2 instruction-access behaviour, so the simulator is
exercisable without external trace files.  Generators are deterministic
for a given :class:`TraceSpec` (kind, size, params, seed), which is also
what the sweep runner uses as the content key for its results cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

import numpy as np

LINE_BYTES = 64
INSTR_BYTES = 4


def _rng(seed: int) -> np.random.Generator:
    """Single Generator per trace, seeded once (never reseeded per call)."""
    return np.random.default_rng(seed)


def looping_code(
    n: int,
    footprint_lines: int = 4096,
    branch_noise: float = 0.02,
    base: int = 0x400000,
    seed: int = 0,
) -> np.ndarray:
    """A hot loop sweeping a fixed code footprint.

    The PC walks sequentially through ``footprint_lines`` cache lines and
    wraps, with a small probability per access of branching to a random
    line inside the footprint (taken branches / indirect calls).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if footprint_lines <= 0:
        raise ValueError("footprint_lines must be positive")
    rng = _rng(seed)
    instrs_per_line = LINE_BYTES // INSTR_BYTES
    seq = np.arange(n, dtype=np.uint64) % np.uint64(footprint_lines * instrs_per_line)
    noise = rng.random(n) < branch_noise
    jumps = rng.integers(0, footprint_lines * instrs_per_line, size=int(noise.sum()))
    seq[noise] = jumps.astype(np.uint64)
    return np.uint64(base) + seq * np.uint64(INSTR_BYTES)


def working_set_shift(
    n: int,
    phases: int = 4,
    footprint_lines: int = 4096,
    branch_noise: float = 0.02,
    base: int = 0x400000,
    seed: int = 0,
) -> np.ndarray:
    """Phased execution: the footprint relocates every ``n // phases`` accesses.

    Models a program moving between program regions (init, steady state,
    teardown), which defeats policies that over-protect stale lines.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if phases <= 0:
        raise ValueError("phases must be positive")
    rng = _rng(seed)
    chunks = []
    per_phase = max(1, n // phases)
    produced = 0
    phase = 0
    while produced < n:
        take = min(per_phase, n - produced)
        phase_base = base + phase * footprint_lines * LINE_BYTES * 2
        chunks.append(
            looping_code(
                take,
                footprint_lines=footprint_lines,
                branch_noise=branch_noise,
                base=phase_base,
                seed=int(rng.integers(0, 2**31)),
            )
        )
        produced += take
        phase += 1
    return np.concatenate(chunks)[:n]


def call_heavy(
    n: int,
    caller_lines: int = 1024,
    num_callees: int = 64,
    callee_lines: int = 32,
    call_period: int = 24,
    base: int = 0x400000,
    seed: int = 0,
) -> np.ndarray:
    """Caller code interleaved with bursts into many small callees.

    A main region executes sequentially; every ``call_period`` instructions
    it calls a randomly chosen callee (a short sequential run in a distant
    region) and returns.  This produces the call-dense interleavings that
    EMISSARY targets: many discontinuities, each touching a few lines.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = _rng(seed)
    instrs_per_line = LINE_BYTES // INSTR_BYTES
    callee_base = base + caller_lines * LINE_BYTES * 4
    callee_span = callee_lines * instrs_per_line

    segments = []
    produced = 0
    caller_pc = 0
    caller_span = caller_lines * instrs_per_line
    while produced < n:
        run = min(call_period, n - produced)
        seg = (np.arange(caller_pc, caller_pc + run, dtype=np.uint64) % np.uint64(caller_span))
        segments.append(np.uint64(base) + seg * np.uint64(INSTR_BYTES))
        caller_pc = (caller_pc + run) % caller_span
        produced += run
        if produced >= n:
            break
        callee = int(rng.integers(0, num_callees))
        burst = min(int(rng.integers(4, callee_span + 1)), n - produced)
        cb = callee_base + callee * callee_lines * LINE_BYTES
        seg = np.arange(burst, dtype=np.uint64)
        segments.append(np.uint64(cb) + seg * np.uint64(INSTR_BYTES))
        produced += burst
    return np.concatenate(segments)[:n]


GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "loop": looping_code,
    "shift": working_set_shift,
    "call": call_heavy,
}


@dataclass(frozen=True)
class TraceSpec:
    """Declarative, immutable description of a synthetic trace."""

    kind: str
    n: int
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in GENERATORS:
            raise ValueError(f"unknown trace kind {self.kind!r}; known: {sorted(GENERATORS)}")

    def generate(self) -> np.ndarray:
        return GENERATORS[self.kind](self.n, seed=self.seed, **self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "n": self.n, "seed": self.seed, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceSpec":
        return cls(kind=d["kind"], n=int(d["n"]), seed=int(d.get("seed", 0)),
                   params=dict(d.get("params", {})))
