"""Synthetic instruction-stream trace generators and trace specs.

Each generator returns a NumPy ``uint64`` array of byte addresses that
mimics a class of L2 instruction-access behaviour, so the simulator is
exercisable without external trace files.  Generators are deterministic
for a given :class:`TraceSpec` (kind, size, params, seed), which is also
what the sweep runner uses as the content key for its results cache.

Beyond the synthetic kinds, a spec with ``kind="file"`` describes a
trace stored on disk (ChampSim-style binary, gzip variant, or
``.npy``/``.npz`` — see :mod:`emissary.trace_io`).  Its content identity
is the file's SHA-256, carried in ``params["sha256"]``; the location on
disk travels in the advisory ``params["_path"]`` field, which the
results cache excludes from the content key, so moving or renaming a
trace file never invalidates cached results.

:class:`TraceSpec` is genuinely immutable: ``params`` is canonicalized
into a :class:`FrozenParams` mapping at construction, so a spec is
hashable and its results-cache key cannot be changed in place after the
spec has been handed out.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from emissary.wire import check_known_keys
from numpy.typing import NDArray

#: Byte-granular instruction fetch addresses — the currency every
#: generator produces and every engine consumes.
AddressArray = NDArray[np.uint64]

LINE_BYTES = 64
INSTR_BYTES = 4

#: Spec kind for file-backed traces (read via :mod:`emissary.trace_io`).
FILE_KIND = "file"


def _rng(seed: int) -> np.random.Generator:
    """Single Generator per trace, seeded once (never reseeded per call)."""
    return np.random.default_rng(seed)


def looping_code(
    n: int,
    footprint_lines: int = 4096,
    branch_noise: float = 0.02,
    base: int = 0x400000,
    seed: int = 0,
) -> AddressArray:
    """A hot loop sweeping a fixed code footprint.

    The PC walks sequentially through ``footprint_lines`` cache lines and
    wraps, with a small probability per access of branching to a random
    line inside the footprint (taken branches / indirect calls).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if footprint_lines <= 0:
        raise ValueError("footprint_lines must be positive")
    rng = _rng(seed)
    instrs_per_line = LINE_BYTES // INSTR_BYTES
    seq = np.arange(n, dtype=np.uint64) % np.uint64(footprint_lines * instrs_per_line)
    noise = rng.random(n) < branch_noise
    jumps = rng.integers(0, footprint_lines * instrs_per_line, size=int(noise.sum()))
    seq[noise] = jumps.astype(np.uint64)
    return np.uint64(base) + seq * np.uint64(INSTR_BYTES)


def working_set_shift(
    n: int,
    phases: int = 4,
    footprint_lines: int = 4096,
    branch_noise: float = 0.02,
    base: int = 0x400000,
    seed: int = 0,
) -> AddressArray:
    """Phased execution: the footprint relocates every ``n // phases`` accesses.

    Models a program moving between program regions (init, steady state,
    teardown), which defeats policies that over-protect stale lines.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if phases <= 0:
        raise ValueError("phases must be positive")
    rng = _rng(seed)
    chunks = []
    per_phase = max(1, n // phases)
    produced = 0
    phase = 0
    while produced < n:
        take = min(per_phase, n - produced)
        phase_base = base + phase * footprint_lines * LINE_BYTES * 2
        chunks.append(
            looping_code(
                take,
                footprint_lines=footprint_lines,
                branch_noise=branch_noise,
                base=phase_base,
                seed=int(rng.integers(0, 2**31)),
            )
        )
        produced += take
        phase += 1
    return np.concatenate(chunks)[:n]


def call_heavy(
    n: int,
    caller_lines: int = 1024,
    num_callees: int = 64,
    callee_lines: int = 32,
    call_period: int = 24,
    base: int = 0x400000,
    seed: int = 0,
) -> AddressArray:
    """Caller code interleaved with bursts into many small callees.

    A main region executes sequentially; every ``call_period`` instructions
    it calls a randomly chosen callee (a short sequential run in a distant
    region) and returns.  This produces the call-dense interleavings that
    EMISSARY targets: many discontinuities, each touching a few lines.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if caller_lines <= 0:
        raise ValueError("caller_lines must be positive")
    if num_callees <= 0:
        raise ValueError("num_callees must be positive")
    if callee_lines <= 0:
        raise ValueError("callee_lines must be positive")
    if call_period <= 0:
        raise ValueError("call_period must be positive")
    rng = _rng(seed)
    instrs_per_line = LINE_BYTES // INSTR_BYTES
    callee_base = base + caller_lines * LINE_BYTES * 4
    callee_span = callee_lines * instrs_per_line

    segments = []
    produced = 0
    caller_pc = 0
    caller_span = caller_lines * instrs_per_line
    while produced < n:
        run = min(call_period, n - produced)
        seg = (np.arange(caller_pc, caller_pc + run, dtype=np.uint64) % np.uint64(caller_span))
        segments.append(np.uint64(base) + seg * np.uint64(INSTR_BYTES))
        caller_pc = (caller_pc + run) % caller_span
        produced += run
        if produced >= n:
            break
        callee = int(rng.integers(0, num_callees))
        burst = min(int(rng.integers(4, callee_span + 1)), n - produced)
        cb = callee_base + callee * callee_lines * LINE_BYTES
        seg = np.arange(burst, dtype=np.uint64)
        segments.append(np.uint64(cb) + seg * np.uint64(INSTR_BYTES))
        produced += burst
    return np.concatenate(segments)[:n]


GENERATORS: dict[str, Callable[..., AddressArray]] = {
    "loop": looping_code,
    "shift": working_set_shift,
    "call": call_heavy,
}

#: Default chunk budget for chunked generation (mirrors
#: :data:`emissary.trace_io.DEFAULT_CHUNK_BYTES` without importing it —
#: trace_io imports this module).
DEFAULT_CHUNK_BYTES = 1 << 22

_ADDR_ITEMSIZE = np.dtype(np.uint64).itemsize


def _chunk_step(chunk_bytes: int) -> int:
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    return max(1, chunk_bytes // _ADDR_ITEMSIZE)


def _emit_chunks(segments: Iterator[AddressArray],
                 step: int) -> Iterator[AddressArray]:
    """Regroup a stream of small arrays into exactly ``step``-element
    chunks (last one shorter); concatenation order is preserved."""
    buf: list[AddressArray] = []
    size = 0
    for seg in segments:
        if len(seg) == 0:
            continue
        buf.append(seg)
        size += len(seg)
        while size >= step:
            arr = buf[0] if len(buf) == 1 else np.concatenate(buf)
            yield arr[:step]
            rest = arr[step:]
            buf = [rest] if len(rest) else []
            size = len(rest)
    if size:
        yield buf[0] if len(buf) == 1 else np.concatenate(buf)


def looping_code_chunks(
    n: int,
    footprint_lines: int = 4096,
    branch_noise: float = 0.02,
    base: int = 0x400000,
    seed: int = 0,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[AddressArray]:
    """Chunked :func:`looping_code`: bit-identical concatenation, peak
    memory bounded by ``chunk_bytes`` instead of the trace size.

    :func:`looping_code` consumes its RNG in two phases — all ``n``
    noise uniforms first, then one bounded integer per noise hit.  Both
    NumPy draws are positional (``random(a)`` then ``random(b)`` equals
    ``random(a + b)``, and likewise for bounded ``integers``), so two
    generators reproduce the stream chunk by chunk: one replays the
    noise uniforms in place, the other is pre-advanced past all of them
    and then serves each chunk's jump targets.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if footprint_lines <= 0:
        raise ValueError("footprint_lines must be positive")
    step = _chunk_step(chunk_bytes)
    instrs_per_line = LINE_BYTES // INSTR_BYTES
    span = footprint_lines * instrs_per_line
    rng_jump = _rng(seed)
    for start in range(0, n, step):
        rng_jump.random(min(step, n - start))  # discard: advance past noise
    rng_noise = _rng(seed)
    for start in range(0, n, step):
        k = min(step, n - start)
        seq = np.arange(start, start + k, dtype=np.uint64) % np.uint64(span)
        noise = rng_noise.random(k) < branch_noise
        jumps = rng_jump.integers(0, span, size=int(noise.sum()))
        seq[noise] = jumps.astype(np.uint64)
        yield np.uint64(base) + seq * np.uint64(INSTR_BYTES)


def working_set_shift_chunks(
    n: int,
    phases: int = 4,
    footprint_lines: int = 4096,
    branch_noise: float = 0.02,
    base: int = 0x400000,
    seed: int = 0,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[AddressArray]:
    """Chunked :func:`working_set_shift`: per-phase seeds are drawn in
    the same order as the one-shot generator, each phase streams through
    :func:`looping_code_chunks`, and phase boundaries are regrouped so
    every emitted chunk except the last fills the whole budget."""
    if n <= 0:
        raise ValueError("n must be positive")
    if phases <= 0:
        raise ValueError("phases must be positive")
    step = _chunk_step(chunk_bytes)  # validate before the first yield
    rng = _rng(seed)
    per_phase = max(1, n // phases)

    def segments() -> Iterator[AddressArray]:
        produced = 0
        phase = 0
        while produced < n:
            take = min(per_phase, n - produced)
            phase_base = base + phase * footprint_lines * LINE_BYTES * 2
            phase_seed = int(rng.integers(0, 2**31))
            yield from looping_code_chunks(
                take, footprint_lines=footprint_lines,
                branch_noise=branch_noise, base=phase_base, seed=phase_seed,
                chunk_bytes=chunk_bytes)
            produced += take
            phase += 1

    yield from _emit_chunks(segments(), step)


def call_heavy_chunks(
    n: int,
    caller_lines: int = 1024,
    num_callees: int = 64,
    callee_lines: int = 32,
    call_period: int = 24,
    base: int = 0x400000,
    seed: int = 0,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[AddressArray]:
    """Chunked :func:`call_heavy`: the caller/callee segment loop runs
    unchanged (identical RNG consumption order), segments are regrouped
    into budget-sized chunks instead of one concatenation."""
    if n <= 0:
        raise ValueError("n must be positive")
    if caller_lines <= 0:
        raise ValueError("caller_lines must be positive")
    if num_callees <= 0:
        raise ValueError("num_callees must be positive")
    if callee_lines <= 0:
        raise ValueError("callee_lines must be positive")
    if call_period <= 0:
        raise ValueError("call_period must be positive")
    step = _chunk_step(chunk_bytes)

    def segments() -> Iterator[AddressArray]:
        rng = _rng(seed)
        instrs_per_line = LINE_BYTES // INSTR_BYTES
        callee_base = base + caller_lines * LINE_BYTES * 4
        callee_span = callee_lines * instrs_per_line
        produced = 0
        caller_pc = 0
        caller_span = caller_lines * instrs_per_line
        while produced < n:
            run = min(call_period, n - produced)
            seg = (np.arange(caller_pc, caller_pc + run, dtype=np.uint64)
                   % np.uint64(caller_span))
            yield np.uint64(base) + seg * np.uint64(INSTR_BYTES)
            caller_pc = (caller_pc + run) % caller_span
            produced += run
            if produced >= n:
                break
            callee = int(rng.integers(0, num_callees))
            burst = min(int(rng.integers(4, callee_span + 1)), n - produced)
            cb = callee_base + callee * callee_lines * LINE_BYTES
            seg = np.arange(burst, dtype=np.uint64)
            yield np.uint64(cb) + seg * np.uint64(INSTR_BYTES)
            produced += burst

    yield from _emit_chunks(segments(), step)


CHUNK_GENERATORS: dict[str, Callable[..., Iterator[AddressArray]]] = {
    "loop": looping_code_chunks,
    "shift": working_set_shift_chunks,
    "call": call_heavy_chunks,
}


def _freeze_value(value: Any) -> Any:
    """Recursively convert ``value`` into an immutable, hashable form."""
    if isinstance(value, FrozenParams):
        return value
    if isinstance(value, Mapping):
        return FrozenParams(value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, (str, bytes, int, float, bool, type(None))):
        return value
    raise TypeError(f"trace/policy parameter values must be JSON-like scalars, "
                    f"mappings, or sequences; got {type(value).__name__}")


def _thaw_value(value: Any) -> Any:
    if isinstance(value, FrozenParams):
        return value.thaw()
    if isinstance(value, tuple):
        return [_thaw_value(v) for v in value]
    return value


class FrozenParams(Mapping):
    """Canonical immutable parameter mapping (sorted keys, frozen values).

    Used by :class:`TraceSpec` and :class:`emissary.api.PolicySpec` so
    the "frozen" dataclasses actually are: the mapping is hashable (the
    spec can key dicts/sets) and cannot be edited in place, which would
    silently change the spec's results-cache key after construction.
    Compares equal to any mapping with the same items, so existing
    ``spec.params == {...}`` call sites keep working.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, mapping: Mapping[str, Any] = ()) -> None:
        data = {}
        for key, value in dict(mapping).items():
            if not isinstance(key, str):
                raise TypeError(f"parameter names must be strings, got "
                                f"{type(key).__name__}")
            data[key] = _freeze_value(value)
        self._data = {key: data[key] for key in sorted(data)}
        self._hash = hash(tuple(self._data.items()))

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FrozenParams({dict(self._data)!r})"

    def thaw(self) -> dict[str, Any]:
        """Plain (mutable, JSON-ready) dict copy with values recursively thawed."""
        return {key: _thaw_value(value) for key, value in self._data.items()}


@dataclass(frozen=True)
class TraceSpec:
    """Declarative, immutable, hashable description of a trace.

    Synthetic kinds (``loop`` / ``shift`` / ``call``) generate on demand;
    ``kind="file"`` loads a trace file via :mod:`emissary.trace_io` —
    build those with :func:`emissary.trace_io.file_spec`, which fills in
    the content identity (``sha256``, ``format``, record count) and the
    advisory ``_path``.
    """

    kind: str
    n: int
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        known = sorted(GENERATORS) + [FILE_KIND]
        if self.kind not in known:
            raise ValueError(f"unknown trace kind {self.kind!r}; known: {known}")
        object.__setattr__(self, "params", FrozenParams(self.params))
        if self.kind == FILE_KIND:
            sha = self.params.get("sha256")
            if not isinstance(sha, str) or len(sha) != 64:
                raise ValueError(
                    "file trace specs need params['sha256'] (the 64-hex-digit "
                    "content hash); build them with emissary.trace_io.file_spec()")

    def generate(self) -> AddressArray:
        if self.kind == FILE_KIND:
            from emissary import trace_io

            return trace_io.load_spec_addresses(self)
        return GENERATORS[self.kind](self.n, seed=self.seed, **self.params)

    def generate_chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES
                        ) -> Iterator[AddressArray]:
        """Stream the trace as address chunks of at most ``chunk_bytes``.

        Concatenating the chunks is bit-identical to :meth:`generate`,
        but peak memory is bounded by the chunk budget rather than the
        trace size — synthetic sweeps at large ``n`` no longer need the
        whole array resident.  File-backed specs read incrementally via
        :mod:`emissary.trace_io`.
        """
        if self.kind == FILE_KIND:
            from emissary import trace_io

            return trace_io.spec_source(self, chunk_bytes=chunk_bytes)
        return CHUNK_GENERATORS[self.kind](self.n, seed=self.seed,
                                           chunk_bytes=chunk_bytes,
                                           **self.params)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "n": self.n, "seed": self.seed,
                "params": self.params.thaw()}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceSpec":
        check_known_keys(d, ("kind", "n", "seed", "params"), "TraceSpec")
        return cls(kind=d["kind"], n=int(d["n"]), seed=int(d.get("seed", 0)),
                   params=dict(d.get("params", {})))


#: Per-access core ids accompanying an interleaved multi-core trace.
CoreIdArray = NDArray[np.int64]

#: Hard cap on front-ends per :class:`InterleaveSpec`.  Keeps the
#: (core, line) key packing (`line << core_bits | core`) comfortably
#: inside 64 bits and matches any real shared-L2 fan-in.
MAX_CORES = 64


class _CoreFeed:
    """Buffered puller over one core's chunk iterator: ``take(k)``
    returns exactly the core's next ``k`` addresses (fewer at end of
    stream), regardless of where the underlying generator cut chunks."""

    def __init__(self, chunks: Iterator[AddressArray]) -> None:
        self._chunks = iter(chunks)
        self._buf: list[AddressArray] = []
        self._have = 0
        self._done = False

    def take(self, k: int) -> AddressArray:
        while self._have < k and not self._done:
            chunk = next(self._chunks, None)
            if chunk is None:
                self._done = True
            elif len(chunk):
                self._buf.append(chunk)
                self._have += len(chunk)
        k = min(k, self._have)
        parts: list[AddressArray] = []
        need = k
        while need:
            head = self._buf[0]
            if len(head) <= need:
                parts.append(self._buf.pop(0))
                need -= len(head)
            else:
                parts.append(head[:need])
                self._buf[0] = head[need:]
                need = 0
        self._have -= k
        if not parts:
            return np.empty(0, dtype=np.uint64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


@dataclass(frozen=True)
class InterleaveSpec:
    """Deterministic weighted round-robin interleaving of per-core traces.

    Describes N L1I front-ends feeding one shared L2: core ``i`` runs its
    own :class:`TraceSpec` and contributes ``weights[i]`` consecutive
    accesses per round (plain round-robin when weights are omitted).  A
    core that exhausts its trace drops out of later rounds; the
    interleaved stream always contains every access of every core, so
    ``n == sum(core.n)``.

    Like :class:`TraceSpec` it is frozen, hashable, and wire-encodable —
    ``to_dict`` / ``from_dict`` round-trips, and the encoding doubles as
    the results-cache content key for multi-core requests.
    """

    cores: tuple[TraceSpec, ...]
    weights: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        cores = tuple(self.cores)
        if not cores:
            raise ValueError("InterleaveSpec needs at least one core trace")
        if len(cores) > MAX_CORES:
            raise ValueError(f"at most {MAX_CORES} cores supported, "
                             f"got {len(cores)}")
        for spec in cores:
            if not isinstance(spec, TraceSpec):
                raise TypeError(f"cores must be TraceSpec instances, "
                                f"got {type(spec).__name__}")
        weights = tuple(self.weights) or (1,) * len(cores)
        if len(weights) != len(cores):
            raise ValueError(f"got {len(weights)} weights for "
                             f"{len(cores)} cores")
        for w in weights:
            if isinstance(w, bool) or not isinstance(w, int) or w <= 0:
                raise ValueError(f"weights must be positive ints, got {w!r}")
        object.__setattr__(self, "cores", cores)
        object.__setattr__(self, "weights", weights)

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def n(self) -> int:
        return sum(spec.n for spec in self.cores)

    def _keys(self, counts: list[int]) -> CoreIdArray:
        """Interleave sort keys: position ``p`` of core ``i`` belongs to
        round ``p // weights[i]``; ``key = round * C + i`` makes a stable
        argsort produce (round, core, within-burst) order — exactly the
        weighted round-robin schedule."""
        num_cores = self.num_cores
        return np.concatenate([
            np.arange(count, dtype=np.int64) // self.weights[i]
            * num_cores + i
            for i, count in enumerate(counts)])

    def generate(self) -> tuple[AddressArray, CoreIdArray]:
        """(interleaved byte addresses, aligned per-access core ids)."""
        parts = [spec.generate() for spec in self.cores]
        counts = [len(part) for part in parts]
        order = np.argsort(self._keys(counts), kind="stable")
        addresses = np.concatenate(parts)[order]
        core_ids = np.concatenate([
            np.full(count, i, dtype=np.int64)
            for i, count in enumerate(counts)])[order]
        return addresses, core_ids

    def generate_chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES
                        ) -> Iterator[tuple[AddressArray, CoreIdArray]]:
        """Stream the interleave as ``(addresses, core_ids)`` chunk pairs.

        Blocks cover a whole number of rounds, so each block's local
        stable argsort reproduces the global schedule restricted to that
        block: concatenating the chunks is bit-identical to
        :meth:`generate`.  Peak memory is one block (~``chunk_bytes``)
        plus each core's own chunk buffer — bounded by the budget times
        ``num_cores + 1``, never by the trace size.
        """
        step = _chunk_step(chunk_bytes)
        rounds = max(1, step // sum(self.weights))
        feeds = [_CoreFeed(spec.generate_chunks(chunk_bytes))
                 for spec in self.cores]
        while True:
            parts = [feed.take(rounds * self.weights[i])
                     for i, feed in enumerate(feeds)]
            counts = [len(part) for part in parts]
            if not any(counts):
                return
            order = np.argsort(self._keys(counts), kind="stable")
            addresses = np.concatenate(parts)[order]
            core_ids = np.concatenate([
                np.full(count, i, dtype=np.int64)
                for i, count in enumerate(counts)])[order]
            yield addresses, core_ids

    def to_dict(self) -> dict[str, Any]:
        return {"cores": [spec.to_dict() for spec in self.cores],
                "weights": list(self.weights)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "InterleaveSpec":
        check_known_keys(d, ("cores", "weights"), "InterleaveSpec")
        return cls(cores=tuple(TraceSpec.from_dict(c) for c in d["cores"]),
                   weights=tuple(int(w) for w in d.get("weights", ())))


def trace_spec_from_dict(d: Mapping[str, Any]) -> "TraceSpec | InterleaveSpec":
    """Decode a trace wire dict, dispatching on shape: a ``cores`` key
    means a multi-core :class:`InterleaveSpec`, else a :class:`TraceSpec`."""
    if "cores" in d:
        return InterleaveSpec.from_dict(d)
    return TraceSpec.from_dict(d)
