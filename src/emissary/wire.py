"""Versioned wire contract shared by the HTTP surface and the results cache.

Every payload that crosses a process boundary — a ``SimRequest`` posted
to the serving layer (:mod:`emissary.serve`), a ``SimResult`` /
``HierarchyResult`` coming back, and the config/result dicts stored in
``.results_cache/`` — is the ``to_dict()`` encoding of a typed
dataclass.  This module pins that encoding to an explicit schema
version and gives ``from_dict`` implementations one strict decoding
discipline:

* ``schema_version`` is emitted by every top-level ``to_dict()``
  (:data:`WIRE_SCHEMA_VERSION`).  The results cache *strips* it before
  hashing (:func:`emissary.results_cache.config_key`), so every cache
  key minted before versioning is byte-identical today.
* ``from_dict`` rejects unknown keys (:func:`check_known_keys`) — a
  typo'd or injected field fails loudly instead of being silently
  dropped, which matters once payloads arrive from the network.
* Version-0 dicts (minted before ``schema_version`` existed, e.g. old
  cache entries or pinned test fixtures) are still accepted:
  :func:`check_wire_version` treats a missing field as version 0, whose
  layout is version 1 minus the version field.  Payloads declaring a
  *newer* version than this process understands are refused rather than
  half-parsed.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

#: Version of the ``to_dict`` wire payloads (``SimRequest``,
#: ``SimResult``, ``HierarchyResult``).  Version 0 is the retroactive
#: name for the pre-versioned layout: identical fields, no
#: ``schema_version`` key.
WIRE_SCHEMA_VERSION = 1

#: The field name carrying the version.  It is versioning metadata, not
#: content: the results cache strips it before hashing so legacy cache
#: keys stay stable (see :func:`emissary.results_cache.strip_advisory`).
WIRE_SCHEMA_KEY = "schema_version"


def check_wire_version(d: Mapping[str, Any], kind: str,
                       max_version: int = WIRE_SCHEMA_VERSION) -> int:
    """Validate and return ``d``'s declared schema version.

    Missing means version 0 (the pre-versioned layout, accepted as the
    migration path); anything newer than ``max_version`` (the top-level
    :data:`WIRE_SCHEMA_VERSION` by default — payload families with their
    own version stream, e.g. :mod:`emissary.telemetry`, pass their own
    ceiling) is refused — a half-understood payload must not be silently
    decoded.
    """
    version = d.get(WIRE_SCHEMA_KEY, 0)
    if isinstance(version, bool) or not isinstance(version, int):
        raise ValueError(f"{kind}: {WIRE_SCHEMA_KEY} must be an int, "
                         f"got {type(version).__name__}")
    if version < 0:
        raise ValueError(f"{kind}: {WIRE_SCHEMA_KEY} must be >= 0, got {version}")
    if version > max_version:
        raise ValueError(
            f"{kind}: {WIRE_SCHEMA_KEY} {version} is newer than this process "
            f"supports ({max_version}); upgrade before decoding")
    return version


def check_known_keys(d: Mapping[str, Any], allowed: Iterable[str],
                     kind: str) -> None:
    """Reject keys outside ``allowed`` (``_``-prefixed advisory keys are
    always allowed — they carry location hints, never content)."""
    unknown = sorted(k for k in d
                     if k not in allowed and not k.startswith("_"))
    if unknown:
        raise ValueError(f"{kind}: unknown wire keys {unknown}; "
                         f"allowed: {sorted(allowed)}")


def migrate_wire_dict(d: Mapping[str, Any], kind: str) -> dict[str, Any]:
    """Normalize a validated v0/v1 payload to the current version.

    Version 0 differs from version 1 only by the absence of the version
    field, so migration is stamping it in; future versions slot their
    field rewrites here.  Returns a copy — the caller's mapping (which
    may be a cached entry shared elsewhere) is never mutated.
    """
    check_wire_version(d, kind)
    out = dict(d)
    out[WIRE_SCHEMA_KEY] = WIRE_SCHEMA_VERSION
    return out
