"""Two-level L1I -> L2 instruction-cache hierarchy engines.

EMISSARY is an *L2* instruction cache policy: its miss-awareness signal
is which lines cost L1I demand misses, so the paper's setting is an L2
sitting behind an L1I filter.  This module provides that setting:

:class:`BatchedHierarchyEngine` (the hot path)
    Stage 1 simulates the L1I over the full trace with the batched
    set-major engine (MRU run collapsing removes the ~90% of fetches
    that re-touch the current line — those can never reach L2).  Only
    the L1I *miss stream* proceeds to stage 2, together with each miss
    line's running L1I miss count — the paper's priority signal,
    measured rather than assumed.  Stage 2 runs the policy under test
    over the miss stream on a second batched engine; cost-aware policies
    (EMISSARY) receive the measured counts through the kernel ``cost``
    channel and gate HP candidacy on them (``min_l1_misses``).

:class:`HierarchyReferenceEngine` (the oracle)
    One straightforward Python iteration per trace access, interleaving
    the L1I lookup, the per-line miss counter, and the L2 access exactly
    as a real fetch would.  The equivalence suite asserts bit-identical
    L1 hit vectors, L2 hit vectors, and per-level stats against the
    batched path.

Randomness: only the L2 policy may consume uniforms (the L1I policy is
required to be deterministic — LRU or SRRIP), drawn positionally over
the miss stream.  NumPy's ``Generator.random(m)`` and ``m`` successive
scalar ``Generator.random()`` calls yield the same sequence, so the
per-access oracle draws lazily and still matches the batched engine's
pre-generated array bit for bit.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from emissary.api import PolicySpec, require_policy_spec
from emissary.wire import (WIRE_SCHEMA_KEY, WIRE_SCHEMA_VERSION,
                           check_known_keys, check_wire_version)
from emissary.engine import BatchedEngine, CacheConfig, IndexArray, SimResult
from emissary.policies import make_naive, policy_needs_rng
from emissary.telemetry import Telemetry, span_factory
from emissary.traces import MAX_CORES, AddressArray, CoreIdArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.analysis.sanitizer import Sanitizer

#: Default L1I: 64 sets x 8 ways x 64 B lines = 32 KiB, the common size.
DEFAULT_L1 = CacheConfig(num_sets=64, ways=8)

#: Default byte budget for coalescing L1I miss chunks before forwarding
#: them to the L2 stream (1 MiB of uint64 lines ~= 128k misses).  Small
#: ingest chunks on low-miss-rate traces otherwise produce many tiny L2
#: dispatches; coalescing is outcome-invariant because the running
#: per-line miss counts carry across batch boundaries in a counter table.
DEFAULT_L2_CHUNK_BYTES = 1 << 20


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the two-level hierarchy (L1I filter + L2 under test)."""

    l1: CacheConfig = DEFAULT_L1
    l2: CacheConfig = CacheConfig()
    l1_policy: str = "lru"

    def __post_init__(self) -> None:
        if not isinstance(self.l1, CacheConfig) or not isinstance(self.l2, CacheConfig):
            raise TypeError("l1 and l2 must be CacheConfig instances")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError(
                f"L1 and L2 line sizes must match for the miss stream to be "
                f"line-addressed consistently (got {self.l1.line_size} vs "
                f"{self.l2.line_size})")
        if policy_needs_rng(self.l1_policy):  # also rejects unknown names
            raise ValueError(
                f"l1_policy {self.l1_policy!r} consumes RNG; the L1I filter must "
                f"be deterministic so the uniform stream belongs to L2 alone")

    def to_dict(self) -> dict[str, Any]:
        return {"l1": self.l1.to_dict(), "l2": self.l2.to_dict(),
                "l1_policy": self.l1_policy}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "HierarchyConfig":
        check_known_keys(d, ("l1", "l2", "l1_policy"), "HierarchyConfig")
        return cls(l1=CacheConfig.from_dict(d["l1"]), l2=CacheConfig.from_dict(d["l2"]),
                   l1_policy=d.get("l1_policy", "lru"))


@dataclass
class HierarchyResult:
    """Outcome of one two-level simulation.

    ``l1`` covers the full trace; ``l2`` covers only the L1I miss stream
    (``l2.n == l1.miss_count``), so ``l2.hit_rate`` is the *local* L2 hit
    rate and :attr:`l2_mpki` renormalizes L2 misses to the full trace.
    """

    policy: str
    n: int
    l1: SimResult
    l2: SimResult
    elapsed_s: float
    #: Merged instrumentation payload (``l1.`` / ``l2.`` prefixed names
    #: plus hierarchy-stage spans) when the run was instrumented.
    telemetry: dict[str, Any] | None = None

    @property
    def l1_hit_rate(self) -> float:
        return self.l1.hit_rate

    @property
    def l2_local_hit_rate(self) -> float:
        return self.l2.hit_rate

    @property
    def l1_mpki(self) -> float:
        return self.l1.mpki

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-access of the *original* trace."""
        return 1000.0 * self.l2.miss_count / self.n if self.n else 0.0

    @property
    def accesses_per_s(self) -> float | None:
        """Throughput, or None when no time elapsed (see
        :attr:`emissary.engine.SimResult.accesses_per_s`)."""
        return self.n / self.elapsed_s if self.elapsed_s > 0 else None

    #: Wire keys of the :meth:`to_dict` payload (see :mod:`emissary.wire`).
    _WIRE_KEYS = frozenset({WIRE_SCHEMA_KEY, "policy", "n", "l1", "l2",
                            "l1_hit_rate", "l2_local_hit_rate", "l1_mpki",
                            "l2_mpki", "elapsed_s", "accesses_per_s",
                            "telemetry"})

    def to_dict(self) -> dict[str, Any]:
        d = {
            WIRE_SCHEMA_KEY: WIRE_SCHEMA_VERSION,
            "policy": self.policy,
            "n": self.n,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "l1_hit_rate": self.l1_hit_rate,
            "l2_local_hit_rate": self.l2_local_hit_rate,
            "l1_mpki": self.l1_mpki,
            "l2_mpki": self.l2_mpki,
            "elapsed_s": self.elapsed_s,
            "accesses_per_s": self.accesses_per_s,
        }
        if self.telemetry is not None:
            d["telemetry"] = self.telemetry
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "HierarchyResult":
        """Strict wire decode (see :mod:`emissary.wire`): v0 accepted,
        unknown keys and newer versions rejected."""
        check_wire_version(d, "HierarchyResult")
        check_known_keys(d, cls._WIRE_KEYS, "HierarchyResult")
        return cls(policy=d["policy"], n=int(d["n"]),
                   l1=SimResult.from_dict(d["l1"]), l2=SimResult.from_dict(d["l2"]),
                   elapsed_s=float(d["elapsed_s"]), telemetry=d.get("telemetry"))


@dataclass
class MultiCoreHierarchyResult(HierarchyResult):
    """Multi-core variant of :class:`HierarchyResult`.

    ``l1`` aggregates all N private L1I front-ends; ``l2`` is the single
    shared L2.  :attr:`per_core` breaks both levels down by core — the
    raw material for the fairness analysis (per-core MPKI deltas against
    solo runs), so every engine computes it identically.
    """

    num_cores: int = 1
    #: One row per core: ``core``, ``n``, ``l1_misses``, ``l2_misses``,
    #: ``l2_hits``, ``l1_mpki``, ``l2_mpki`` (MPKI per that core's own
    #: accesses, not the combined trace).
    per_core: list[dict[str, Any]] = field(default_factory=list)

    _WIRE_KEYS = HierarchyResult._WIRE_KEYS | {"num_cores", "per_core"}

    def to_dict(self) -> dict[str, Any]:
        d = super().to_dict()
        d["num_cores"] = self.num_cores
        d["per_core"] = self.per_core
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "MultiCoreHierarchyResult":
        check_wire_version(d, "MultiCoreHierarchyResult")
        check_known_keys(d, cls._WIRE_KEYS, "MultiCoreHierarchyResult")
        return cls(policy=d["policy"], n=int(d["n"]),
                   l1=SimResult.from_dict(d["l1"]), l2=SimResult.from_dict(d["l2"]),
                   elapsed_s=float(d["elapsed_s"]), telemetry=d.get("telemetry"),
                   num_cores=int(d["num_cores"]),
                   per_core=[dict(row) for row in d["per_core"]])


def _check_core_ids(core_ids: CoreIdArray, n: int,
                    num_cores: int | None) -> tuple[IndexArray, int]:
    """Validate the per-access core-id channel; resolve ``num_cores``
    (``None`` means infer from the ids)."""
    core = np.ascontiguousarray(core_ids, dtype=np.int64)
    if len(core) != n:
        raise ValueError(f"core_ids length {len(core)} != trace length {n}")
    observed_max = int(core.max()) if n else 0
    if n and int(core.min()) < 0:
        raise ValueError("core_ids must be non-negative")
    if num_cores is None:
        num_cores = observed_max + 1 if n else 1
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    if num_cores > MAX_CORES:
        raise ValueError(f"num_cores {num_cores} exceeds MAX_CORES ({MAX_CORES})")
    if n and observed_max >= num_cores:
        raise ValueError(f"core_ids contain {observed_max} but num_cores is "
                         f"{num_cores}")
    return core, num_cores


def _core_virtual_layout(l1: CacheConfig,
                         num_cores: int) -> tuple[int, int, CacheConfig]:
    """Core-virtualized combined L1I: one engine simulates all N private
    L1Is by widening the set index with the core id.

    A virtual line ``(line << core_bits) | core`` maps core ``c``'s
    accesses onto a disjoint bank of ``l1.num_sets`` sets (the padded
    core field keeps the set math a pure mask), with the original tag
    preserved — so each bank behaves exactly like that core's private
    L1I while the single engine preserves global trace order for the
    shared-L2 miss stream.  Returns ``(core_bits, core_pad, virtual_config)``.
    """
    core_bits = (num_cores - 1).bit_length()
    core_pad = 1 << core_bits
    virtual = CacheConfig(num_sets=l1.num_sets * core_pad, ways=l1.ways,
                          line_size=l1.line_size)
    return core_bits, core_pad, virtual


def _per_core_stats(num_cores: int, n_by_core: IndexArray,
                    l1_miss_by_core: IndexArray,
                    l2_miss_by_core: IndexArray) -> list[dict[str, Any]]:
    """Assemble the per-core breakdown rows (shared by every engine so
    the payloads are comparable bit for bit)."""
    rows = []
    for c in range(num_cores):
        n_c = int(n_by_core[c])
        l1m = int(l1_miss_by_core[c])
        l2m = int(l2_miss_by_core[c])
        rows.append({
            "core": c,
            "n": n_c,
            "l1_misses": l1m,
            "l2_misses": l2m,
            "l2_hits": l1m - l2m,
            "l1_mpki": 1000.0 * l1m / n_c if n_c else 0.0,
            "l2_mpki": 1000.0 * l2m / n_c if n_c else 0.0,
        })
    return rows


def _record_per_core(tel: Telemetry | None,
                     per_core: list[dict[str, Any]]) -> None:
    """Mirror the per-core breakdown into telemetry counters
    (``core{c}.n`` / ``core{c}.l1_misses`` / ``core{c}.l2_misses``)."""
    if tel is None:
        return
    for row in per_core:
        c = row["core"]
        tel.inc(f"core{c}.n", row["n"])
        tel.inc(f"core{c}.l1_misses", row["l1_misses"])
        tel.inc(f"core{c}.l2_misses", row["l2_misses"])


class MissCountTable:
    """Compacted running miss counters for the streamed hierarchy.

    Replaces the previous unbounded ``dict[int, int]``: the keys (miss
    lines, or core-virtualized ``(core, line)`` keys in multi-core runs)
    live in one sorted ``uint64`` array with an ``int64`` count array
    alongside — 16 bytes per unique key instead of ~100 for a dict slot,
    and the whole table stays cache-friendly for the vectorized prior
    lookups.  :meth:`advance` is outcome-identical to the dict walk: for
    a batch of keys in stream order it returns each position's inclusive
    running count, then folds the new totals in.
    """

    def __init__(self) -> None:
        self._keys: AddressArray = np.zeros(0, dtype=np.uint64)
        self._counts: IndexArray = np.zeros(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def nbytes(self) -> int:
        """Resident footprint of the table arrays."""
        return self._keys.nbytes + self._counts.nbytes

    @property
    def keys(self) -> AddressArray:
        """Sorted unique keys seen so far (read-only view for callers)."""
        return self._keys

    @property
    def counts(self) -> IndexArray:
        """Total count per key, aligned with :attr:`keys`."""
        return self._counts

    def advance(self, keys: AddressArray) -> IndexArray:
        """Inclusive running count per position of ``keys`` (in stream
        order, continuing across calls), folding the batch into the
        table."""
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int64)
        uniq, inverse = np.unique(keys, return_inverse=True)
        prior = np.zeros(len(uniq), dtype=np.int64)
        if len(self._keys):
            pos = np.searchsorted(self._keys, uniq)
            pos_c = np.minimum(pos, len(self._keys) - 1)
            known = self._keys[pos_c] == uniq
            prior[known] = self._counts[pos_c[known]]
        cost = prior[inverse] + running_miss_counts(keys)
        totals = prior + np.bincount(inverse, minlength=len(uniq))
        merged = np.union1d(self._keys, uniq)
        counts = np.zeros(len(merged), dtype=np.int64)
        if len(self._keys):
            counts[np.searchsorted(merged, self._keys)] = self._counts
        counts[np.searchsorted(merged, uniq)] = totals
        self._keys = merged
        self._counts = counts
        return cost


def running_miss_counts(lines: AddressArray) -> IndexArray:
    """For each position, how many times its value has occurred so far
    (inclusive).  Vectorized: stable-sort groups equal lines, the rank
    within each group is the running count."""
    m = len(lines)
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_lines[1:], sorted_lines[:-1], out=new_group[1:])
    positions = np.arange(m, dtype=np.int64)
    starts = np.maximum.accumulate(np.where(new_group, positions, 0))
    counts = np.empty(m, dtype=np.int64)
    counts[order] = positions - starts + 1
    return counts


class BatchedHierarchyEngine:
    """L1I filter stage + L2 policy stage, both on the batched engine."""

    def __init__(self, config: HierarchyConfig | None = None,
                 collapse_runs: bool = True,
                 telemetry: Telemetry | None = None,
                 sanitizer: "Sanitizer" | None = None,
                 kernel_backend: str = "python",
                 compiled_provider: str | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.collapse_runs = collapse_runs
        #: Optional :class:`~emissary.telemetry.Telemetry`; each stage
        #: records into its own child registry, merged here with ``l1.``
        #: / ``l2.`` prefixes.
        self.telemetry = telemetry
        #: Optional :class:`~emissary.analysis.sanitizer.Sanitizer`,
        #: shared by both stage engines (one instance checks both levels).
        self.sanitizer = sanitizer
        #: Kernel backend for *both* stage engines ("python" or
        #: "compiled"); outcomes are bit-identical either way.  Validated
        #: by the stage :class:`~emissary.engine.BatchedEngine`\ s.
        self.kernel_backend = kernel_backend
        self.compiled_provider = compiled_provider

    def _stage_engine(self, config: CacheConfig,
                      telemetry: Telemetry | None,
                      num_cores: int = 1) -> BatchedEngine:
        return BatchedEngine(config, collapse_runs=self.collapse_runs,
                             telemetry=telemetry, sanitizer=self.sanitizer,
                             kernel_backend=self.kernel_backend,
                             compiled_provider=self.compiled_provider,
                             num_cores=num_cores)

    def run(self, addresses: AddressArray, policy: PolicySpec, seed: int = 0,
            keep_hits: bool = True) -> HierarchyResult:
        spec = require_policy_spec(policy, caller="BatchedHierarchyEngine.run")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1_tel = Telemetry() if tel is not None else None
        l2_tel = Telemetry() if tel is not None else None
        n = len(addresses)
        start = time.perf_counter()
        addrs = np.ascontiguousarray(addresses, dtype=np.uint64)

        l1 = self._stage_engine(config.l1, l1_tel)
        with span("l1_stage"):
            l1_result = l1.run(addrs, PolicySpec(config.l1_policy), seed=seed,
                               keep_hits=True)

        with span("miss_extract"):
            miss_addrs = addrs[~l1_result.hits]
            miss_lines = miss_addrs >> np.uint64(config.l1.offset_bits)
            l1_miss_counts = running_miss_counts(miss_lines)

        l2 = self._stage_engine(config.l2, l2_tel)
        with span("l2_stage"):
            l2_result = l2.run(miss_addrs, spec, seed=seed, keep_hits=keep_hits,
                               cost=l1_miss_counts)
        l2_result.policy_stats.setdefault(
            "unique_l1_miss_lines", int(len(np.unique(miss_lines))))

        if not keep_hits:
            l1_result.hits = None
        elapsed = time.perf_counter() - start
        telemetry_payload = None
        if tel is not None:
            tel.merge_prefixed(l1_tel, "l1.")
            tel.merge_prefixed(l2_tel, "l2.")
            # The merged payload is the single canonical blob; drop the
            # per-stage copies so the serialized result stays compact.
            l1_result.telemetry = None
            l2_result.telemetry = None
            telemetry_payload = tel.to_dict()
        return HierarchyResult(policy=spec.name, n=n, l1=l1_result, l2=l2_result,
                               elapsed_s=elapsed, telemetry=telemetry_payload)

    def run_multicore(self, addresses: AddressArray, core_ids: CoreIdArray,
                      policy: PolicySpec, num_cores: int | None = None,
                      seed: int = 0,
                      keep_hits: bool = True) -> MultiCoreHierarchyResult:
        """Run N private L1I front-ends feeding one shared L2.

        ``core_ids`` gives, per access, which core issued it (the
        interleaved trace order *is* the arrival order at the shared
        L2).  The private L1Is are simulated core-virtualized in one
        batched engine (see :func:`_core_virtual_layout`); the combined
        miss stream — still in global order — then drives the shared L2
        with per-``(core, line)`` measured L1I miss counts on the cost
        channel and the issuing core on the core channel, so a
        partitioned-budget EMISSARY L2 can enforce per-core HP quotas.
        """
        spec = require_policy_spec(
            policy, caller="BatchedHierarchyEngine.run_multicore")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1_tel = Telemetry() if tel is not None else None
        l2_tel = Telemetry() if tel is not None else None
        n = len(addresses)
        start = time.perf_counter()
        addrs = np.ascontiguousarray(addresses, dtype=np.uint64)
        core, num_cores = _check_core_ids(core_ids, n, num_cores)
        core_bits, core_pad, v_l1 = _core_virtual_layout(config.l1, num_cores)
        offset_bits = config.l1.offset_bits

        lines = addrs >> np.uint64(offset_bits)
        if n and core_bits and (
                int(lines.max()) >> (64 - offset_bits - core_bits)):
            raise ValueError(
                f"address lines need more than {64 - offset_bits - core_bits} "
                f"bits; no headroom for {core_bits} core bits")
        vlines = (lines << np.uint64(core_bits)) | core.astype(np.uint64)

        l1 = self._stage_engine(v_l1, l1_tel)
        with span("l1_stage"):
            l1_result = l1.run(vlines << np.uint64(offset_bits),
                               PolicySpec(config.l1_policy), seed=seed,
                               keep_hits=True)

        with span("miss_extract"):
            miss_vlines = vlines[~l1_result.hits]
            miss_cores = (miss_vlines
                          & np.uint64(core_pad - 1)).astype(np.int64)
            miss_addrs = (miss_vlines >> np.uint64(core_bits)) \
                << np.uint64(offset_bits)
            # Per-(core, line) running counts: the virtual line *is* the
            # (core, line) key, so each private L1I's miss count for a
            # line advances independently.
            l1_miss_counts = running_miss_counts(miss_vlines)

        l2 = self._stage_engine(config.l2, l2_tel, num_cores=num_cores)
        with span("l2_stage"):
            l2_result = l2.run(miss_addrs, spec, seed=seed, keep_hits=True,
                               cost=l1_miss_counts, core=miss_cores)
        l2_result.policy_stats.setdefault(
            "unique_l1_miss_lines", int(len(np.unique(miss_vlines))))

        n_by_core = np.bincount(core, minlength=num_cores)
        l1_miss_by_core = np.bincount(miss_cores, minlength=num_cores)
        l2_miss_by_core = np.bincount(miss_cores[~l2_result.hits],
                                      minlength=num_cores)
        per_core = _per_core_stats(num_cores, n_by_core, l1_miss_by_core,
                                   l2_miss_by_core)

        if not keep_hits:
            l1_result.hits = None
            l2_result.hits = None
        elapsed = time.perf_counter() - start
        telemetry_payload = None
        if tel is not None:
            tel.merge_prefixed(l1_tel, "l1.")
            tel.merge_prefixed(l2_tel, "l2.")
            _record_per_core(tel, per_core)
            l1_result.telemetry = None
            l2_result.telemetry = None
            telemetry_payload = tel.to_dict()
        return MultiCoreHierarchyResult(
            policy=spec.name, n=n, l1=l1_result, l2=l2_result,
            elapsed_s=elapsed, telemetry=telemetry_payload,
            num_cores=num_cores, per_core=per_core)

    def simulate_stream(self, chunks: Iterable[AddressArray],
                        policy: PolicySpec, seed: int = 0,
                        keep_hits: bool = True,
                        chunk_bytes: int | None = DEFAULT_L2_CHUNK_BYTES
                        ) -> HierarchyResult:
        """Run the two-level hierarchy over a chunked trace in bounded memory.

        ``chunks`` is any iterable of ``uint64`` address arrays in trace
        order (e.g. a :class:`~emissary.trace_io.TraceSource`).  Both
        stages run as incremental :class:`~emissary.engine.EngineStream`\\ s:
        each resolved L1I chunk's miss lines flow into the L2 stream
        together with their running L1I miss counts, which carry across
        chunk boundaries in a per-line counter table.

        Because the L1I filters out most accesses, per-chunk miss arrays
        can be tiny; forwarding each one separately makes the L2 stage
        pay fixed dispatch overhead per sliver.  Miss lines are therefore
        buffered and forwarded only once ``chunk_bytes`` of them have
        accumulated (or at end of trace).  Pass ``chunk_bytes=None`` to
        forward every chunk's misses immediately.  Either way, L1/L2 hit
        vectors and per-level stats are bit-identical to :meth:`run` on
        the concatenated trace: the cost computation depends only on the
        order of the miss stream, not on where it is cut.
        """
        spec = require_policy_spec(
            policy, caller="BatchedHierarchyEngine.simulate_stream")
        if chunk_bytes is not None and chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive or None, "
                             f"got {chunk_bytes}")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1_tel = Telemetry() if tel is not None else None
        l2_tel = Telemetry() if tel is not None else None
        start = time.perf_counter()

        l1_engine = self._stage_engine(config.l1, l1_tel)
        l2_engine = self._stage_engine(config.l2, l2_tel)
        l1_stream = l1_engine.stream(PolicySpec(config.l1_policy), seed=seed,
                                     keep_hits=keep_hits)
        l2_stream = l2_engine.stream(spec, seed=seed, keep_hits=keep_hits)

        offset_bits = np.uint64(config.l1.offset_bits)
        miss_counts = MissCountTable()
        pending: list[AddressArray] = []
        pending_bytes = 0

        def advance(miss_lines: AddressArray) -> None:
            """Extend the running per-line L1I miss counts and feed the
            resolved miss stream (with measured costs) into L2."""
            if len(miss_lines) == 0:
                return
            with span("miss_extract"):
                cost = miss_counts.advance(miss_lines)
            l2_stream.feed(miss_lines << offset_bits, cost=cost)

        def enqueue(miss_lines: AddressArray, flush: bool = False) -> None:
            """Buffer miss lines; forward to L2 once the coalescing
            budget fills (or unconditionally on flush)."""
            nonlocal pending_bytes
            if len(miss_lines):
                pending.append(miss_lines)
                pending_bytes += miss_lines.nbytes
            if pending and (flush or chunk_bytes is None
                            or pending_bytes >= chunk_bytes):
                batch = (pending[0] if len(pending) == 1
                         else np.concatenate(pending))
                pending.clear()
                pending_bytes = 0
                advance(batch)

        chunk_iter = iter(chunks)
        while True:
            with span("stream_ingest"):
                chunk = next(chunk_iter, None)
            if chunk is None:
                break
            _, miss_lines = l1_stream.feed(chunk)
            enqueue(miss_lines)
        _, tail_miss = l1_stream.flush()
        enqueue(tail_miss, flush=True)

        l1_result = l1_stream.finish()
        l2_result = l2_stream.finish()
        l2_result.policy_stats.setdefault("unique_l1_miss_lines",
                                          len(miss_counts))
        elapsed = time.perf_counter() - start
        telemetry_payload = None
        if tel is not None:
            tel.merge_prefixed(l1_tel, "l1.")
            tel.merge_prefixed(l2_tel, "l2.")
            l1_result.telemetry = None
            l2_result.telemetry = None
            telemetry_payload = tel.to_dict()
        return HierarchyResult(policy=spec.name, n=l1_result.n, l1=l1_result,
                               l2=l2_result, elapsed_s=elapsed,
                               telemetry=telemetry_payload)

    def simulate_stream_multicore(
            self, chunks: Iterable[tuple[AddressArray, CoreIdArray]],
            policy: PolicySpec, num_cores: int, seed: int = 0,
            keep_hits: bool = True,
            chunk_bytes: int | None = DEFAULT_L2_CHUNK_BYTES
            ) -> MultiCoreHierarchyResult:
        """Streamed N-core shared-L2 run in bounded memory.

        ``chunks`` yields ``(addresses, core_ids)`` pairs in interleaved
        trace order (e.g. :meth:`emissary.traces.InterleaveSpec.generate_chunks`).
        Same contract as :meth:`simulate_stream`: bit-identical to
        :meth:`run_multicore` on the concatenated trace for any chunk
        cuts, because the per-``(core, line)`` miss-count carry (keyed by
        virtual line in a :class:`MissCountTable`) and the L2 stream's
        pending-run carry are both cut-invariant.  ``num_cores`` must be
        given up front: the core-virtualized L1 geometry depends on it.
        """
        spec = require_policy_spec(
            policy, caller="BatchedHierarchyEngine.simulate_stream_multicore")
        if chunk_bytes is not None and chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive or None, "
                             f"got {chunk_bytes}")
        if num_cores is None:
            raise ValueError("simulate_stream_multicore needs an explicit "
                             "num_cores (the virtual L1 geometry is fixed "
                             "before the first chunk arrives)")
        _, num_cores = _check_core_ids(np.zeros(0, dtype=np.int64), 0,
                                       num_cores)
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1_tel = Telemetry() if tel is not None else None
        l2_tel = Telemetry() if tel is not None else None
        start = time.perf_counter()
        core_bits, core_pad, v_l1 = _core_virtual_layout(config.l1, num_cores)
        offset_bits = config.l1.offset_bits
        line_cap_bits = 64 - offset_bits - core_bits

        l1_engine = self._stage_engine(v_l1, l1_tel)
        l2_engine = self._stage_engine(config.l2, l2_tel,
                                       num_cores=num_cores)
        l1_stream = l1_engine.stream(PolicySpec(config.l1_policy), seed=seed,
                                     keep_hits=keep_hits)
        l2_stream = l2_engine.stream(spec, seed=seed, keep_hits=keep_hits)

        miss_counts = MissCountTable()
        pending: list[AddressArray] = []
        pending_bytes = 0
        n_by_core = np.zeros(num_cores, dtype=np.int64)
        l2_miss_by_core = np.zeros(num_cores, dtype=np.int64)

        def take_l2_misses() -> None:
            """Fold the L2 stream's latest per-miss core attribution into
            the fairness tally (valid right after a feed or flush)."""
            nonlocal l2_miss_by_core
            attributed = l2_stream.last_miss_cores
            if attributed is not None and len(attributed):
                l2_miss_by_core += np.bincount(attributed,
                                               minlength=num_cores)

        def advance(miss_vlines: AddressArray) -> None:
            if len(miss_vlines) == 0:
                return
            with span("miss_extract"):
                cost = miss_counts.advance(miss_vlines)
                miss_cores = (miss_vlines
                              & np.uint64(core_pad - 1)).astype(np.int64)
                miss_addrs = (miss_vlines >> np.uint64(core_bits)) \
                    << np.uint64(offset_bits)
            l2_stream.feed(miss_addrs, cost=cost, core=miss_cores)
            take_l2_misses()

        def enqueue(miss_vlines: AddressArray, flush: bool = False) -> None:
            nonlocal pending_bytes
            if len(miss_vlines):
                pending.append(miss_vlines)
                pending_bytes += miss_vlines.nbytes
            if pending and (flush or chunk_bytes is None
                            or pending_bytes >= chunk_bytes):
                batch = (pending[0] if len(pending) == 1
                         else np.concatenate(pending))
                pending.clear()
                pending_bytes = 0
                advance(batch)

        chunk_iter = iter(chunks)
        while True:
            with span("stream_ingest"):
                pair = next(chunk_iter, None)
            if pair is None:
                break
            addr_chunk, core_chunk = pair
            addr_chunk = np.ascontiguousarray(addr_chunk, dtype=np.uint64)
            core_chunk, _ = _check_core_ids(core_chunk, len(addr_chunk),
                                            num_cores)
            line_chunk = addr_chunk >> np.uint64(offset_bits)
            if len(line_chunk) and core_bits and (
                    int(line_chunk.max()) >> line_cap_bits):
                raise ValueError(
                    f"address lines need more than {line_cap_bits} bits; "
                    f"no headroom for {core_bits} core bits")
            n_by_core += np.bincount(core_chunk, minlength=num_cores)
            vlines = (line_chunk << np.uint64(core_bits)) \
                | core_chunk.astype(np.uint64)
            _, miss_vlines = l1_stream.feed(vlines << np.uint64(offset_bits))
            enqueue(miss_vlines)
        _, tail_miss = l1_stream.flush()
        enqueue(tail_miss, flush=True)
        l2_stream.flush()
        take_l2_misses()

        l1_result = l1_stream.finish()
        l2_result = l2_stream.finish()
        l2_result.policy_stats.setdefault("unique_l1_miss_lines",
                                          len(miss_counts))
        # Per-core L1I misses come straight off the compacted table: the
        # key's low bits are the core, the count is that (core, line)'s
        # total misses.
        key_cores = (miss_counts.keys
                     & np.uint64(core_pad - 1)).astype(np.int64)
        l1_miss_by_core = np.bincount(
            key_cores, weights=miss_counts.counts,
            minlength=num_cores).astype(np.int64)
        per_core = _per_core_stats(num_cores, n_by_core, l1_miss_by_core,
                                   l2_miss_by_core)
        elapsed = time.perf_counter() - start
        telemetry_payload = None
        if tel is not None:
            tel.merge_prefixed(l1_tel, "l1.")
            tel.merge_prefixed(l2_tel, "l2.")
            _record_per_core(tel, per_core)
            l1_result.telemetry = None
            l2_result.telemetry = None
            telemetry_payload = tel.to_dict()
        return MultiCoreHierarchyResult(
            policy=spec.name, n=l1_result.n, l1=l1_result, l2=l2_result,
            elapsed_s=elapsed, telemetry=telemetry_payload,
            num_cores=num_cores, per_core=per_core)


class HierarchyReferenceEngine:
    """Naive per-access oracle: L1I lookup, miss counting, and L2 access
    interleaved in trace order, one Python step per fetch."""

    def __init__(self, config: HierarchyConfig | None = None,
                 telemetry: Telemetry | None = None,
                 sanitizer: "Sanitizer" | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.telemetry = telemetry
        self.sanitizer = sanitizer

    def run(self, addresses: AddressArray, policy: PolicySpec, seed: int = 0,
            keep_hits: bool = True) -> HierarchyResult:
        spec = require_policy_spec(policy, caller="HierarchyReferenceEngine.run")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1c, l2c = config.l1, config.l2
        n = len(addresses)
        start = time.perf_counter()

        l1_impl = make_naive(config.l1_policy, l1c.num_sets, l1c.ways)
        l2_impl = make_naive(spec.name, l2c.num_sets, l2c.ways, **spec.params)
        if self.sanitizer is not None:
            self.sanitizer.attach_naive(l1_impl)
            self.sanitizer.attach_naive(l2_impl)
        rng = (np.random.default_rng(seed)
               if policy_needs_rng(spec.name) else None)

        l1_tags = [[None] * l1c.ways for _ in range(l1c.num_sets)]
        l2_tags = [[None] * l2c.ways for _ in range(l2c.num_sets)]
        miss_counts: dict[int, int] = {}

        l1_hits = np.empty(n, dtype=bool)
        l2_hits_list = []
        l1_set_mask = l1c.num_sets - 1
        l2_set_mask = l2c.num_sets - 1
        offset_bits = l1c.offset_bits  # == l2c.offset_bits (validated)
        j = 0  # L2 access index (position in the miss stream)

        # Generic per-(set, way) lifetime accounting, per level, matching
        # the names the instrumented batched kernels produce.
        track = tel is not None
        l1_line_hits = [0] * (l1c.num_sets * l1c.ways) if track else None
        l2_line_hits = [0] * (l2c.num_sets * l2c.ways) if track else None
        l1_fills = l1_evictions = l1_dead = 0
        l2_fills = l2_evictions = l2_dead = 0

        with span("naive_loop"):
            for i, addr in enumerate(addresses.tolist()):
                line = addr >> offset_bits
                s1 = line & l1_set_mask
                t1 = line >> l1c.set_bits
                set_tags = l1_tags[s1]
                way = -1
                for w in range(l1c.ways):
                    if set_tags[w] == t1:
                        way = w
                        break
                if way >= 0:
                    l1_impl.on_hit(s1, way, i)
                    if track:
                        l1_line_hits[s1 * l1c.ways + way] += 1
                    l1_hits[i] = True
                    continue
                # L1I miss: fill L1, bump the line's measured miss count, go to L2.
                l1_hits[i] = False
                for w in range(l1c.ways):
                    if set_tags[w] is None:
                        way = w
                        break
                else:
                    way = l1_impl.find_victim(s1, 0.0)
                    l1_impl.replaced(s1, way)
                    if track:
                        victim_hits = l1_line_hits[s1 * l1c.ways + way]
                        tel.observe("l1.line_hits", victim_hits)
                        l1_evictions += 1
                        if victim_hits == 0:
                            l1_dead += 1
                set_tags[way] = t1
                l1_impl.on_fill(s1, way, i, 0.0)
                if track:
                    l1_line_hits[s1 * l1c.ways + way] = 0
                    l1_fills += 1

                cost_i = miss_counts.get(line, 0) + 1
                miss_counts[line] = cost_i
                u_j = rng.random() if rng is not None else 0.0

                s2 = line & l2_set_mask
                t2 = line >> l2c.set_bits
                set_tags2 = l2_tags[s2]
                way = -1
                for w in range(l2c.ways):
                    if set_tags2[w] == t2:
                        way = w
                        break
                if way >= 0:
                    l2_impl.on_hit(s2, way, j)
                    if track:
                        l2_line_hits[s2 * l2c.ways + way] += 1
                    l2_hits_list.append(True)
                else:
                    for w in range(l2c.ways):
                        if set_tags2[w] is None:
                            way = w
                            break
                    else:
                        way = l2_impl.find_victim(s2, u_j)
                        l2_impl.replaced(s2, way)
                        if track:
                            victim_hits = l2_line_hits[s2 * l2c.ways + way]
                            tel.observe("l2.line_hits", victim_hits)
                            l2_evictions += 1
                            if victim_hits == 0:
                                l2_dead += 1
                    set_tags2[way] = t2
                    l2_impl.on_fill(s2, way, j, u_j, cost_i)
                    if track:
                        l2_line_hits[s2 * l2c.ways + way] = 0
                        l2_fills += 1
                    l2_hits_list.append(False)
                j += 1

        elapsed = time.perf_counter() - start
        l1_hit_count = int(l1_hits.sum())
        l2_hits = np.array(l2_hits_list, dtype=bool)
        l2_hit_count = int(l2_hits.sum())
        if track:
            for prefix, fills, evictions, dead, cfg, tags_table, hits_table in (
                    ("l1.", l1_fills, l1_evictions, l1_dead, l1c, l1_tags,
                     l1_line_hits),
                    ("l2.", l2_fills, l2_evictions, l2_dead, l2c, l2_tags,
                     l2_line_hits)):
                tel.inc(prefix + "fills", fills)
                tel.inc(prefix + "evictions", evictions)
                tel.inc(prefix + "dead_on_fill", dead)
                for s in range(cfg.num_sets):
                    for w in range(cfg.ways):
                        if tags_table[s][w] is not None:
                            tel.observe(prefix + "resident_line_hits",
                                        hits_table[s * cfg.ways + w])
            tel.inc("l1.hits", l1_hit_count)
            tel.inc("l1.misses", n - l1_hit_count)
            tel.inc("l2.hits", l2_hit_count)
            tel.inc("l2.misses", j - l2_hit_count)
            tel.inc("engine.accesses", n)
            l1_impl.telemetry_finalize(tel, prefix="l1.")
            l2_impl.telemetry_finalize(tel, prefix="l2.")
        l1_result = SimResult(policy=config.l1_policy, n=n, hit_count=l1_hit_count,
                              miss_count=n - l1_hit_count, elapsed_s=elapsed,
                              hits=l1_hits if keep_hits else None, policy_stats={})
        l2_result = SimResult(policy=spec.name, n=j, hit_count=l2_hit_count,
                              miss_count=j - l2_hit_count, elapsed_s=elapsed,
                              hits=l2_hits if keep_hits else None,
                              policy_stats={"unique_l1_miss_lines": len(miss_counts)})
        return HierarchyResult(policy=spec.name, n=n, l1=l1_result, l2=l2_result,
                               elapsed_s=elapsed,
                               telemetry=tel.to_dict() if tel is not None else None)

    def run_multicore(self, addresses: AddressArray, core_ids: CoreIdArray,
                      policy: PolicySpec, num_cores: int | None = None,
                      seed: int = 0,
                      keep_hits: bool = True) -> MultiCoreHierarchyResult:
        """Per-access multi-core oracle: N genuinely separate naive L1I
        instances (one per core) in front of one shared naive L2, walked
        in interleaved trace order — the ground truth the
        core-virtualized batched path must reproduce bit for bit.
        """
        spec = require_policy_spec(
            policy, caller="HierarchyReferenceEngine.run_multicore")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1c, l2c = config.l1, config.l2
        n = len(addresses)
        core, num_cores = _check_core_ids(core_ids, n, num_cores)
        core_list = core.tolist()
        start = time.perf_counter()

        l1_impls = [make_naive(config.l1_policy, l1c.num_sets, l1c.ways)
                    for _ in range(num_cores)]
        extra = {"num_cores": num_cores} if spec.name == "emissary" else {}
        l2_impl = make_naive(spec.name, l2c.num_sets, l2c.ways,
                             **spec.params, **extra)
        if self.sanitizer is not None:
            for impl in l1_impls:
                self.sanitizer.attach_naive(impl)
            self.sanitizer.attach_naive(l2_impl)
        rng = (np.random.default_rng(seed)
               if policy_needs_rng(spec.name) else None)

        l1_tags = [[[None] * l1c.ways for _ in range(l1c.num_sets)]
                   for _ in range(num_cores)]
        l2_tags = [[None] * l2c.ways for _ in range(l2c.num_sets)]
        miss_counts: dict[tuple[int, int], int] = {}

        l1_hits = np.empty(n, dtype=bool)
        l2_hits_list = []
        l2_miss_cores = []
        l1_set_mask = l1c.num_sets - 1
        l2_set_mask = l2c.num_sets - 1
        offset_bits = l1c.offset_bits  # == l2c.offset_bits (validated)
        j = 0  # L2 access index (position in the combined miss stream)
        n_by_core = [0] * num_cores
        l1_miss_by_core = [0] * num_cores

        track = tel is not None
        l1_line_hits = ([[0] * (l1c.num_sets * l1c.ways)
                         for _ in range(num_cores)] if track else None)
        l2_line_hits = [0] * (l2c.num_sets * l2c.ways) if track else None
        l1_fills = l1_evictions = l1_dead = 0
        l2_fills = l2_evictions = l2_dead = 0

        with span("naive_loop"):
            for i, addr in enumerate(addresses.tolist()):
                c = core_list[i]
                n_by_core[c] += 1
                line = addr >> offset_bits
                s1 = line & l1_set_mask
                t1 = line >> l1c.set_bits
                l1_impl = l1_impls[c]
                set_tags = l1_tags[c][s1]
                way = -1
                for w in range(l1c.ways):
                    if set_tags[w] == t1:
                        way = w
                        break
                if way >= 0:
                    l1_impl.on_hit(s1, way, i)
                    if track:
                        l1_line_hits[c][s1 * l1c.ways + way] += 1
                    l1_hits[i] = True
                    continue
                # Private L1I miss: fill that core's L1I, bump its
                # per-(core, line) miss count, go to the shared L2.
                l1_hits[i] = False
                l1_miss_by_core[c] += 1
                for w in range(l1c.ways):
                    if set_tags[w] is None:
                        way = w
                        break
                else:
                    way = l1_impl.find_victim(s1, 0.0)
                    l1_impl.replaced(s1, way)
                    if track:
                        victim_hits = l1_line_hits[c][s1 * l1c.ways + way]
                        tel.observe("l1.line_hits", victim_hits)
                        l1_evictions += 1
                        if victim_hits == 0:
                            l1_dead += 1
                set_tags[way] = t1
                l1_impl.on_fill(s1, way, i, 0.0)
                if track:
                    l1_line_hits[c][s1 * l1c.ways + way] = 0
                    l1_fills += 1

                cost_i = miss_counts.get((c, line), 0) + 1
                miss_counts[(c, line)] = cost_i
                u_j = rng.random() if rng is not None else 0.0

                s2 = line & l2_set_mask
                t2 = line >> l2c.set_bits
                set_tags2 = l2_tags[s2]
                way = -1
                for w in range(l2c.ways):
                    if set_tags2[w] == t2:
                        way = w
                        break
                if way >= 0:
                    l2_impl.on_hit(s2, way, j)
                    if track:
                        l2_line_hits[s2 * l2c.ways + way] += 1
                    l2_hits_list.append(True)
                else:
                    for w in range(l2c.ways):
                        if set_tags2[w] is None:
                            way = w
                            break
                    else:
                        way = l2_impl.find_victim(s2, u_j)
                        l2_impl.replaced(s2, way)
                        if track:
                            victim_hits = l2_line_hits[s2 * l2c.ways + way]
                            tel.observe("l2.line_hits", victim_hits)
                            l2_evictions += 1
                            if victim_hits == 0:
                                l2_dead += 1
                    set_tags2[way] = t2
                    l2_impl.on_fill(s2, way, j, u_j, cost_i, c)
                    if track:
                        l2_line_hits[s2 * l2c.ways + way] = 0
                        l2_fills += 1
                    l2_hits_list.append(False)
                    l2_miss_cores.append(c)
                j += 1

        elapsed = time.perf_counter() - start
        l1_hit_count = int(l1_hits.sum())
        l2_hits = np.array(l2_hits_list, dtype=bool)
        l2_hit_count = int(l2_hits.sum())
        l2_miss_by_core = np.bincount(
            np.array(l2_miss_cores, dtype=np.int64), minlength=num_cores)
        per_core = _per_core_stats(num_cores,
                                   np.array(n_by_core, dtype=np.int64),
                                   np.array(l1_miss_by_core, dtype=np.int64),
                                   l2_miss_by_core)
        if track:
            tel.inc("l1.fills", l1_fills)
            tel.inc("l1.evictions", l1_evictions)
            tel.inc("l1.dead_on_fill", l1_dead)
            for c in range(num_cores):
                for s in range(l1c.num_sets):
                    for w in range(l1c.ways):
                        if l1_tags[c][s][w] is not None:
                            tel.observe("l1.resident_line_hits",
                                        l1_line_hits[c][s * l1c.ways + w])
            tel.inc("l2.fills", l2_fills)
            tel.inc("l2.evictions", l2_evictions)
            tel.inc("l2.dead_on_fill", l2_dead)
            for s in range(l2c.num_sets):
                for w in range(l2c.ways):
                    if l2_tags[s][w] is not None:
                        tel.observe("l2.resident_line_hits",
                                    l2_line_hits[s * l2c.ways + w])
            tel.inc("l1.hits", l1_hit_count)
            tel.inc("l1.misses", n - l1_hit_count)
            tel.inc("l2.hits", l2_hit_count)
            tel.inc("l2.misses", j - l2_hit_count)
            tel.inc("engine.accesses", n)
            for impl in l1_impls:
                impl.telemetry_finalize(tel, prefix="l1.")
            l2_impl.telemetry_finalize(tel, prefix="l2.")
            _record_per_core(tel, per_core)
        l1_result = SimResult(policy=config.l1_policy, n=n,
                              hit_count=l1_hit_count,
                              miss_count=n - l1_hit_count, elapsed_s=elapsed,
                              hits=l1_hits if keep_hits else None,
                              policy_stats={})
        l2_result = SimResult(policy=spec.name, n=j, hit_count=l2_hit_count,
                              miss_count=j - l2_hit_count, elapsed_s=elapsed,
                              hits=l2_hits if keep_hits else None,
                              policy_stats={"unique_l1_miss_lines":
                                            len(miss_counts)})
        return MultiCoreHierarchyResult(
            policy=spec.name, n=n, l1=l1_result, l2=l2_result,
            elapsed_s=elapsed,
            telemetry=tel.to_dict() if tel is not None else None,
            num_cores=num_cores, per_core=per_core)


def simulate_multicore(addresses: AddressArray, core_ids: CoreIdArray,
                       policy: PolicySpec,
                       config: HierarchyConfig | None = None,
                       num_cores: int | None = None, seed: int = 0,
                       engine: str = "batched") -> MultiCoreHierarchyResult:
    """Convenience wrapper: run the N-core shared-L2 hierarchy on any
    engine."""
    if engine == "batched":
        return BatchedHierarchyEngine(config).run_multicore(
            addresses, core_ids, policy, num_cores=num_cores, seed=seed)
    if engine == "compiled":
        return BatchedHierarchyEngine(config, kernel_backend="compiled") \
            .run_multicore(addresses, core_ids, policy, num_cores=num_cores,
                           seed=seed)
    if engine == "reference":
        return HierarchyReferenceEngine(config).run_multicore(
            addresses, core_ids, policy, num_cores=num_cores, seed=seed)
    raise ValueError(f"unknown engine {engine!r} "
                     f"(expected 'batched', 'compiled', or 'reference')")


def simulate_hierarchy(addresses: AddressArray, policy: PolicySpec,
                       config: HierarchyConfig | None = None, seed: int = 0,
                       engine: str = "batched") -> HierarchyResult:
    """Convenience wrapper: run the two-level hierarchy on any engine."""
    if engine == "batched":
        return BatchedHierarchyEngine(config).run(addresses, policy, seed=seed)
    if engine == "compiled":
        return BatchedHierarchyEngine(config, kernel_backend="compiled").run(
            addresses, policy, seed=seed)
    if engine == "reference":
        return HierarchyReferenceEngine(config).run(addresses, policy, seed=seed)
    raise ValueError(f"unknown engine {engine!r} "
                     f"(expected 'batched', 'compiled', or 'reference')")
