"""Two-level L1I -> L2 instruction-cache hierarchy engines.

EMISSARY is an *L2* instruction cache policy: its miss-awareness signal
is which lines cost L1I demand misses, so the paper's setting is an L2
sitting behind an L1I filter.  This module provides that setting:

:class:`BatchedHierarchyEngine` (the hot path)
    Stage 1 simulates the L1I over the full trace with the batched
    set-major engine (MRU run collapsing removes the ~90% of fetches
    that re-touch the current line — those can never reach L2).  Only
    the L1I *miss stream* proceeds to stage 2, together with each miss
    line's running L1I miss count — the paper's priority signal,
    measured rather than assumed.  Stage 2 runs the policy under test
    over the miss stream on a second batched engine; cost-aware policies
    (EMISSARY) receive the measured counts through the kernel ``cost``
    channel and gate HP candidacy on them (``min_l1_misses``).

:class:`HierarchyReferenceEngine` (the oracle)
    One straightforward Python iteration per trace access, interleaving
    the L1I lookup, the per-line miss counter, and the L2 access exactly
    as a real fetch would.  The equivalence suite asserts bit-identical
    L1 hit vectors, L2 hit vectors, and per-level stats against the
    batched path.

Randomness: only the L2 policy may consume uniforms (the L1I policy is
required to be deterministic — LRU or SRRIP), drawn positionally over
the miss stream.  NumPy's ``Generator.random(m)`` and ``m`` successive
scalar ``Generator.random()`` calls yield the same sequence, so the
per-access oracle draws lazily and still matches the batched engine's
pre-generated array bit for bit.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from emissary.api import PolicySpec, require_policy_spec
from emissary.wire import (WIRE_SCHEMA_KEY, WIRE_SCHEMA_VERSION,
                           check_known_keys, check_wire_version)
from emissary.engine import BatchedEngine, CacheConfig, IndexArray, SimResult
from emissary.policies import make_naive, policy_needs_rng
from emissary.telemetry import Telemetry, span_factory
from emissary.traces import AddressArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from emissary.analysis.sanitizer import Sanitizer

#: Default L1I: 64 sets x 8 ways x 64 B lines = 32 KiB, the common size.
DEFAULT_L1 = CacheConfig(num_sets=64, ways=8)

#: Default byte budget for coalescing L1I miss chunks before forwarding
#: them to the L2 stream (1 MiB of uint64 lines ~= 128k misses).  Small
#: ingest chunks on low-miss-rate traces otherwise produce many tiny L2
#: dispatches; coalescing is outcome-invariant because the running
#: per-line miss counts carry across batch boundaries in a counter table.
DEFAULT_L2_CHUNK_BYTES = 1 << 20


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the two-level hierarchy (L1I filter + L2 under test)."""

    l1: CacheConfig = DEFAULT_L1
    l2: CacheConfig = CacheConfig()
    l1_policy: str = "lru"

    def __post_init__(self) -> None:
        if not isinstance(self.l1, CacheConfig) or not isinstance(self.l2, CacheConfig):
            raise TypeError("l1 and l2 must be CacheConfig instances")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError(
                f"L1 and L2 line sizes must match for the miss stream to be "
                f"line-addressed consistently (got {self.l1.line_size} vs "
                f"{self.l2.line_size})")
        if policy_needs_rng(self.l1_policy):  # also rejects unknown names
            raise ValueError(
                f"l1_policy {self.l1_policy!r} consumes RNG; the L1I filter must "
                f"be deterministic so the uniform stream belongs to L2 alone")

    def to_dict(self) -> dict[str, Any]:
        return {"l1": self.l1.to_dict(), "l2": self.l2.to_dict(),
                "l1_policy": self.l1_policy}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "HierarchyConfig":
        check_known_keys(d, ("l1", "l2", "l1_policy"), "HierarchyConfig")
        return cls(l1=CacheConfig.from_dict(d["l1"]), l2=CacheConfig.from_dict(d["l2"]),
                   l1_policy=d.get("l1_policy", "lru"))


@dataclass
class HierarchyResult:
    """Outcome of one two-level simulation.

    ``l1`` covers the full trace; ``l2`` covers only the L1I miss stream
    (``l2.n == l1.miss_count``), so ``l2.hit_rate`` is the *local* L2 hit
    rate and :attr:`l2_mpki` renormalizes L2 misses to the full trace.
    """

    policy: str
    n: int
    l1: SimResult
    l2: SimResult
    elapsed_s: float
    #: Merged instrumentation payload (``l1.`` / ``l2.`` prefixed names
    #: plus hierarchy-stage spans) when the run was instrumented.
    telemetry: dict[str, Any] | None = None

    @property
    def l1_hit_rate(self) -> float:
        return self.l1.hit_rate

    @property
    def l2_local_hit_rate(self) -> float:
        return self.l2.hit_rate

    @property
    def l1_mpki(self) -> float:
        return self.l1.mpki

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-access of the *original* trace."""
        return 1000.0 * self.l2.miss_count / self.n if self.n else 0.0

    @property
    def accesses_per_s(self) -> float | None:
        """Throughput, or None when no time elapsed (see
        :attr:`emissary.engine.SimResult.accesses_per_s`)."""
        return self.n / self.elapsed_s if self.elapsed_s > 0 else None

    #: Wire keys of the :meth:`to_dict` payload (see :mod:`emissary.wire`).
    _WIRE_KEYS = frozenset({WIRE_SCHEMA_KEY, "policy", "n", "l1", "l2",
                            "l1_hit_rate", "l2_local_hit_rate", "l1_mpki",
                            "l2_mpki", "elapsed_s", "accesses_per_s",
                            "telemetry"})

    def to_dict(self) -> dict[str, Any]:
        d = {
            WIRE_SCHEMA_KEY: WIRE_SCHEMA_VERSION,
            "policy": self.policy,
            "n": self.n,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "l1_hit_rate": self.l1_hit_rate,
            "l2_local_hit_rate": self.l2_local_hit_rate,
            "l1_mpki": self.l1_mpki,
            "l2_mpki": self.l2_mpki,
            "elapsed_s": self.elapsed_s,
            "accesses_per_s": self.accesses_per_s,
        }
        if self.telemetry is not None:
            d["telemetry"] = self.telemetry
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "HierarchyResult":
        """Strict wire decode (see :mod:`emissary.wire`): v0 accepted,
        unknown keys and newer versions rejected."""
        check_wire_version(d, "HierarchyResult")
        check_known_keys(d, cls._WIRE_KEYS, "HierarchyResult")
        return cls(policy=d["policy"], n=int(d["n"]),
                   l1=SimResult.from_dict(d["l1"]), l2=SimResult.from_dict(d["l2"]),
                   elapsed_s=float(d["elapsed_s"]), telemetry=d.get("telemetry"))


def running_miss_counts(lines: AddressArray) -> IndexArray:
    """For each position, how many times its value has occurred so far
    (inclusive).  Vectorized: stable-sort groups equal lines, the rank
    within each group is the running count."""
    m = len(lines)
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_lines[1:], sorted_lines[:-1], out=new_group[1:])
    positions = np.arange(m, dtype=np.int64)
    starts = np.maximum.accumulate(np.where(new_group, positions, 0))
    counts = np.empty(m, dtype=np.int64)
    counts[order] = positions - starts + 1
    return counts


class BatchedHierarchyEngine:
    """L1I filter stage + L2 policy stage, both on the batched engine."""

    def __init__(self, config: HierarchyConfig | None = None,
                 collapse_runs: bool = True,
                 telemetry: Telemetry | None = None,
                 sanitizer: "Sanitizer" | None = None,
                 kernel_backend: str = "python",
                 compiled_provider: str | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.collapse_runs = collapse_runs
        #: Optional :class:`~emissary.telemetry.Telemetry`; each stage
        #: records into its own child registry, merged here with ``l1.``
        #: / ``l2.`` prefixes.
        self.telemetry = telemetry
        #: Optional :class:`~emissary.analysis.sanitizer.Sanitizer`,
        #: shared by both stage engines (one instance checks both levels).
        self.sanitizer = sanitizer
        #: Kernel backend for *both* stage engines ("python" or
        #: "compiled"); outcomes are bit-identical either way.  Validated
        #: by the stage :class:`~emissary.engine.BatchedEngine`\ s.
        self.kernel_backend = kernel_backend
        self.compiled_provider = compiled_provider

    def _stage_engine(self, config: CacheConfig,
                      telemetry: Telemetry | None) -> BatchedEngine:
        return BatchedEngine(config, collapse_runs=self.collapse_runs,
                             telemetry=telemetry, sanitizer=self.sanitizer,
                             kernel_backend=self.kernel_backend,
                             compiled_provider=self.compiled_provider)

    def run(self, addresses: AddressArray, policy: PolicySpec, seed: int = 0,
            keep_hits: bool = True) -> HierarchyResult:
        spec = require_policy_spec(policy, caller="BatchedHierarchyEngine.run")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1_tel = Telemetry() if tel is not None else None
        l2_tel = Telemetry() if tel is not None else None
        n = len(addresses)
        start = time.perf_counter()
        addrs = np.ascontiguousarray(addresses, dtype=np.uint64)

        l1 = self._stage_engine(config.l1, l1_tel)
        with span("l1_stage"):
            l1_result = l1.run(addrs, PolicySpec(config.l1_policy), seed=seed,
                               keep_hits=True)

        with span("miss_extract"):
            miss_addrs = addrs[~l1_result.hits]
            miss_lines = miss_addrs >> np.uint64(config.l1.offset_bits)
            l1_miss_counts = running_miss_counts(miss_lines)

        l2 = self._stage_engine(config.l2, l2_tel)
        with span("l2_stage"):
            l2_result = l2.run(miss_addrs, spec, seed=seed, keep_hits=keep_hits,
                               cost=l1_miss_counts)
        l2_result.policy_stats.setdefault(
            "unique_l1_miss_lines", int(len(np.unique(miss_lines))))

        if not keep_hits:
            l1_result.hits = None
        elapsed = time.perf_counter() - start
        telemetry_payload = None
        if tel is not None:
            tel.merge_prefixed(l1_tel, "l1.")
            tel.merge_prefixed(l2_tel, "l2.")
            # The merged payload is the single canonical blob; drop the
            # per-stage copies so the serialized result stays compact.
            l1_result.telemetry = None
            l2_result.telemetry = None
            telemetry_payload = tel.to_dict()
        return HierarchyResult(policy=spec.name, n=n, l1=l1_result, l2=l2_result,
                               elapsed_s=elapsed, telemetry=telemetry_payload)

    def simulate_stream(self, chunks: Iterable[AddressArray],
                        policy: PolicySpec, seed: int = 0,
                        keep_hits: bool = True,
                        chunk_bytes: int | None = DEFAULT_L2_CHUNK_BYTES
                        ) -> HierarchyResult:
        """Run the two-level hierarchy over a chunked trace in bounded memory.

        ``chunks`` is any iterable of ``uint64`` address arrays in trace
        order (e.g. a :class:`~emissary.trace_io.TraceSource`).  Both
        stages run as incremental :class:`~emissary.engine.EngineStream`\\ s:
        each resolved L1I chunk's miss lines flow into the L2 stream
        together with their running L1I miss counts, which carry across
        chunk boundaries in a per-line counter table.

        Because the L1I filters out most accesses, per-chunk miss arrays
        can be tiny; forwarding each one separately makes the L2 stage
        pay fixed dispatch overhead per sliver.  Miss lines are therefore
        buffered and forwarded only once ``chunk_bytes`` of them have
        accumulated (or at end of trace).  Pass ``chunk_bytes=None`` to
        forward every chunk's misses immediately.  Either way, L1/L2 hit
        vectors and per-level stats are bit-identical to :meth:`run` on
        the concatenated trace: the cost computation depends only on the
        order of the miss stream, not on where it is cut.
        """
        spec = require_policy_spec(
            policy, caller="BatchedHierarchyEngine.simulate_stream")
        if chunk_bytes is not None and chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive or None, "
                             f"got {chunk_bytes}")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1_tel = Telemetry() if tel is not None else None
        l2_tel = Telemetry() if tel is not None else None
        start = time.perf_counter()

        l1_engine = self._stage_engine(config.l1, l1_tel)
        l2_engine = self._stage_engine(config.l2, l2_tel)
        l1_stream = l1_engine.stream(PolicySpec(config.l1_policy), seed=seed,
                                     keep_hits=keep_hits)
        l2_stream = l2_engine.stream(spec, seed=seed, keep_hits=keep_hits)

        offset_bits = np.uint64(config.l1.offset_bits)
        miss_counts: dict[int, int] = {}
        pending: list[AddressArray] = []
        pending_bytes = 0

        def advance(miss_lines: AddressArray) -> None:
            """Extend the running per-line L1I miss counts and feed the
            resolved miss stream (with measured costs) into L2."""
            if len(miss_lines) == 0:
                return
            with span("miss_extract"):
                uniq, inverse = np.unique(miss_lines, return_inverse=True)
                prior = np.fromiter((miss_counts.get(int(line), 0)
                                     for line in uniq.tolist()),
                                    dtype=np.int64, count=len(uniq))
                cost = prior[inverse] + running_miss_counts(miss_lines)
                totals = prior + np.bincount(inverse, minlength=len(uniq))
                for line, total in zip(uniq.tolist(), totals.tolist()):
                    miss_counts[line] = int(total)
            l2_stream.feed(miss_lines << offset_bits, cost=cost)

        def enqueue(miss_lines: AddressArray, flush: bool = False) -> None:
            """Buffer miss lines; forward to L2 once the coalescing
            budget fills (or unconditionally on flush)."""
            nonlocal pending_bytes
            if len(miss_lines):
                pending.append(miss_lines)
                pending_bytes += miss_lines.nbytes
            if pending and (flush or chunk_bytes is None
                            or pending_bytes >= chunk_bytes):
                batch = (pending[0] if len(pending) == 1
                         else np.concatenate(pending))
                pending.clear()
                pending_bytes = 0
                advance(batch)

        chunk_iter = iter(chunks)
        while True:
            with span("stream_ingest"):
                chunk = next(chunk_iter, None)
            if chunk is None:
                break
            _, miss_lines = l1_stream.feed(chunk)
            enqueue(miss_lines)
        _, tail_miss = l1_stream.flush()
        enqueue(tail_miss, flush=True)

        l1_result = l1_stream.finish()
        l2_result = l2_stream.finish()
        l2_result.policy_stats.setdefault("unique_l1_miss_lines",
                                          len(miss_counts))
        elapsed = time.perf_counter() - start
        telemetry_payload = None
        if tel is not None:
            tel.merge_prefixed(l1_tel, "l1.")
            tel.merge_prefixed(l2_tel, "l2.")
            l1_result.telemetry = None
            l2_result.telemetry = None
            telemetry_payload = tel.to_dict()
        return HierarchyResult(policy=spec.name, n=l1_result.n, l1=l1_result,
                               l2=l2_result, elapsed_s=elapsed,
                               telemetry=telemetry_payload)


class HierarchyReferenceEngine:
    """Naive per-access oracle: L1I lookup, miss counting, and L2 access
    interleaved in trace order, one Python step per fetch."""

    def __init__(self, config: HierarchyConfig | None = None,
                 telemetry: Telemetry | None = None,
                 sanitizer: "Sanitizer" | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.telemetry = telemetry
        self.sanitizer = sanitizer

    def run(self, addresses: AddressArray, policy: PolicySpec, seed: int = 0,
            keep_hits: bool = True) -> HierarchyResult:
        spec = require_policy_spec(policy, caller="HierarchyReferenceEngine.run")
        config = self.config
        tel = self.telemetry
        span = span_factory(tel)
        l1c, l2c = config.l1, config.l2
        n = len(addresses)
        start = time.perf_counter()

        l1_impl = make_naive(config.l1_policy, l1c.num_sets, l1c.ways)
        l2_impl = make_naive(spec.name, l2c.num_sets, l2c.ways, **spec.params)
        if self.sanitizer is not None:
            self.sanitizer.attach_naive(l1_impl)
            self.sanitizer.attach_naive(l2_impl)
        rng = (np.random.default_rng(seed)
               if policy_needs_rng(spec.name) else None)

        l1_tags = [[None] * l1c.ways for _ in range(l1c.num_sets)]
        l2_tags = [[None] * l2c.ways for _ in range(l2c.num_sets)]
        miss_counts: dict[int, int] = {}

        l1_hits = np.empty(n, dtype=bool)
        l2_hits_list = []
        l1_set_mask = l1c.num_sets - 1
        l2_set_mask = l2c.num_sets - 1
        offset_bits = l1c.offset_bits  # == l2c.offset_bits (validated)
        j = 0  # L2 access index (position in the miss stream)

        # Generic per-(set, way) lifetime accounting, per level, matching
        # the names the instrumented batched kernels produce.
        track = tel is not None
        l1_line_hits = [0] * (l1c.num_sets * l1c.ways) if track else None
        l2_line_hits = [0] * (l2c.num_sets * l2c.ways) if track else None
        l1_fills = l1_evictions = l1_dead = 0
        l2_fills = l2_evictions = l2_dead = 0

        with span("naive_loop"):
            for i, addr in enumerate(addresses.tolist()):
                line = addr >> offset_bits
                s1 = line & l1_set_mask
                t1 = line >> l1c.set_bits
                set_tags = l1_tags[s1]
                way = -1
                for w in range(l1c.ways):
                    if set_tags[w] == t1:
                        way = w
                        break
                if way >= 0:
                    l1_impl.on_hit(s1, way, i)
                    if track:
                        l1_line_hits[s1 * l1c.ways + way] += 1
                    l1_hits[i] = True
                    continue
                # L1I miss: fill L1, bump the line's measured miss count, go to L2.
                l1_hits[i] = False
                for w in range(l1c.ways):
                    if set_tags[w] is None:
                        way = w
                        break
                else:
                    way = l1_impl.find_victim(s1, 0.0)
                    l1_impl.replaced(s1, way)
                    if track:
                        victim_hits = l1_line_hits[s1 * l1c.ways + way]
                        tel.observe("l1.line_hits", victim_hits)
                        l1_evictions += 1
                        if victim_hits == 0:
                            l1_dead += 1
                set_tags[way] = t1
                l1_impl.on_fill(s1, way, i, 0.0)
                if track:
                    l1_line_hits[s1 * l1c.ways + way] = 0
                    l1_fills += 1

                cost_i = miss_counts.get(line, 0) + 1
                miss_counts[line] = cost_i
                u_j = rng.random() if rng is not None else 0.0

                s2 = line & l2_set_mask
                t2 = line >> l2c.set_bits
                set_tags2 = l2_tags[s2]
                way = -1
                for w in range(l2c.ways):
                    if set_tags2[w] == t2:
                        way = w
                        break
                if way >= 0:
                    l2_impl.on_hit(s2, way, j)
                    if track:
                        l2_line_hits[s2 * l2c.ways + way] += 1
                    l2_hits_list.append(True)
                else:
                    for w in range(l2c.ways):
                        if set_tags2[w] is None:
                            way = w
                            break
                    else:
                        way = l2_impl.find_victim(s2, u_j)
                        l2_impl.replaced(s2, way)
                        if track:
                            victim_hits = l2_line_hits[s2 * l2c.ways + way]
                            tel.observe("l2.line_hits", victim_hits)
                            l2_evictions += 1
                            if victim_hits == 0:
                                l2_dead += 1
                    set_tags2[way] = t2
                    l2_impl.on_fill(s2, way, j, u_j, cost_i)
                    if track:
                        l2_line_hits[s2 * l2c.ways + way] = 0
                        l2_fills += 1
                    l2_hits_list.append(False)
                j += 1

        elapsed = time.perf_counter() - start
        l1_hit_count = int(l1_hits.sum())
        l2_hits = np.array(l2_hits_list, dtype=bool)
        l2_hit_count = int(l2_hits.sum())
        if track:
            for prefix, fills, evictions, dead, cfg, tags_table, hits_table in (
                    ("l1.", l1_fills, l1_evictions, l1_dead, l1c, l1_tags,
                     l1_line_hits),
                    ("l2.", l2_fills, l2_evictions, l2_dead, l2c, l2_tags,
                     l2_line_hits)):
                tel.inc(prefix + "fills", fills)
                tel.inc(prefix + "evictions", evictions)
                tel.inc(prefix + "dead_on_fill", dead)
                for s in range(cfg.num_sets):
                    for w in range(cfg.ways):
                        if tags_table[s][w] is not None:
                            tel.observe(prefix + "resident_line_hits",
                                        hits_table[s * cfg.ways + w])
            tel.inc("l1.hits", l1_hit_count)
            tel.inc("l1.misses", n - l1_hit_count)
            tel.inc("l2.hits", l2_hit_count)
            tel.inc("l2.misses", j - l2_hit_count)
            tel.inc("engine.accesses", n)
            l1_impl.telemetry_finalize(tel, prefix="l1.")
            l2_impl.telemetry_finalize(tel, prefix="l2.")
        l1_result = SimResult(policy=config.l1_policy, n=n, hit_count=l1_hit_count,
                              miss_count=n - l1_hit_count, elapsed_s=elapsed,
                              hits=l1_hits if keep_hits else None, policy_stats={})
        l2_result = SimResult(policy=spec.name, n=j, hit_count=l2_hit_count,
                              miss_count=j - l2_hit_count, elapsed_s=elapsed,
                              hits=l2_hits if keep_hits else None,
                              policy_stats={"unique_l1_miss_lines": len(miss_counts)})
        return HierarchyResult(policy=spec.name, n=n, l1=l1_result, l2=l2_result,
                               elapsed_s=elapsed,
                               telemetry=tel.to_dict() if tel is not None else None)


def simulate_hierarchy(addresses: AddressArray, policy: PolicySpec,
                       config: HierarchyConfig | None = None, seed: int = 0,
                       engine: str = "batched") -> HierarchyResult:
    """Convenience wrapper: run the two-level hierarchy on any engine."""
    if engine == "batched":
        return BatchedHierarchyEngine(config).run(addresses, policy, seed=seed)
    if engine == "compiled":
        return BatchedHierarchyEngine(config, kernel_backend="compiled").run(
            addresses, policy, seed=seed)
    if engine == "reference":
        return HierarchyReferenceEngine(config).run(addresses, policy, seed=seed)
    raise ValueError(f"unknown engine {engine!r} "
                     f"(expected 'batched', 'compiled', or 'reference')")
