"""Tests for the telemetry subsystem.

Three hard guarantees from the design:

1. Telemetry must never perturb outcomes — hit vectors are bit-identical
   with telemetry on and off, for every policy, on both engines, single
   level and hierarchy.
2. Telemetry-off is structurally free — kernels keep their fast
   ``run_set`` untouched until :meth:`attach_telemetry` swaps in the
   instrumented twin.
3. Batched and reference engines agree on every policy counter and
   histogram (engine-internal ``engine.*`` keys excluded: the two
   pipelines legitimately differ there).
"""

import json

import numpy as np
import pytest

from emissary import (PolicySpec, SimRequest, Telemetry, simulate)
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine, SimResult
from emissary.hierarchy import HierarchyConfig
from emissary.policies import make_kernel
from emissary.telemetry import (TELEMETRY_SCHEMA_VERSION, null_span, span_factory,
                                spans_to_chrome_trace)
from emissary.traces import TraceSpec

POLICY_SPECS = [
    PolicySpec("lru"),
    PolicySpec("random"),
    PolicySpec("srrip"),
    PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 8}),
]


def _addresses(n=6_000, seed=0):
    return TraceSpec("loop", n, seed, {"footprint_lines": 150}).generate()


def _policy_payload(telemetry):
    """Counters + histograms minus engine-internal keys, for cross-engine
    comparison."""
    counters = {k: v for k, v in telemetry["counters"].items() if "engine." not in k}
    return counters, telemetry["histograms"]


# -- guarantee 1: outcomes are never perturbed -------------------------------

@pytest.mark.parametrize("spec", POLICY_SPECS, ids=lambda s: s.name)
@pytest.mark.parametrize("engine_cls", [BatchedEngine, ReferenceEngine])
def test_outcomes_bit_identical_with_telemetry(spec, engine_cls):
    addresses = _addresses()
    config = CacheConfig(num_sets=32, ways=4)
    off = engine_cls(config).run(addresses, spec, seed=3)
    on = engine_cls(config, telemetry=Telemetry()).run(addresses, spec, seed=3)
    assert np.array_equal(off.hits, on.hits)
    assert off.telemetry is None
    assert on.telemetry is not None


@pytest.mark.parametrize("spec", POLICY_SPECS, ids=lambda s: s.name)
@pytest.mark.parametrize("engine", ["batched", "reference"])
def test_hierarchy_outcomes_bit_identical_with_telemetry(spec, engine):
    config = HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                             l2=CacheConfig(num_sets=32, ways=4))
    trace = TraceSpec("call", 6_000, 1, {"caller_lines": 128, "num_callees": 32})
    off = simulate(SimRequest(trace, spec, config, seed=3), engine=engine)
    on = simulate(SimRequest(trace, spec, config, seed=3, telemetry=True),
                  engine=engine)
    assert np.array_equal(off.l1.hits, on.l1.hits)
    assert np.array_equal(off.l2.hits, on.l2.hits)
    assert on.telemetry is not None and off.telemetry is None


# -- guarantee 2: telemetry-off is structurally free -------------------------

@pytest.mark.parametrize("spec", POLICY_SPECS, ids=lambda s: s.name)
def test_kernel_fast_path_untouched_until_attach(spec):
    kernel = make_kernel(spec.name, 8, 2, **spec.params)
    # Disabled: run_set resolves to the class method — zero per-call cost.
    assert "run_set" not in kernel.__dict__
    kernel.attach_telemetry(Telemetry())
    # Enabled: the instrumented twin shadows it on the instance.
    assert kernel.__dict__["run_set"] == kernel._run_set_tel


def test_null_span_is_reusable_noop():
    cm = null_span("anything", key=1)
    with cm:
        with cm:
            pass
    tel = Telemetry()
    assert span_factory(None) is null_span
    assert span_factory(tel) == tel.span


# -- guarantee 3: cross-engine counter/histogram parity ----------------------

@pytest.mark.parametrize("spec", POLICY_SPECS, ids=lambda s: s.name)
def test_counters_match_across_engines(spec):
    addresses = _addresses()
    config = CacheConfig(num_sets=32, ways=4)
    batched = BatchedEngine(config, telemetry=Telemetry()).run(addresses, spec, seed=3)
    reference = ReferenceEngine(config, telemetry=Telemetry()).run(addresses, spec,
                                                                   seed=3)
    assert _policy_payload(batched.telemetry) == _policy_payload(reference.telemetry)


@pytest.mark.parametrize("spec", POLICY_SPECS, ids=lambda s: s.name)
def test_hierarchy_counters_match_across_engines(spec):
    config = HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                             l2=CacheConfig(num_sets=32, ways=4))
    trace = TraceSpec("call", 6_000, 1, {"caller_lines": 128, "num_callees": 32})
    request = SimRequest(trace, spec, config, seed=3, telemetry=True)
    batched = simulate(request, engine="batched")
    reference = simulate(request, engine="reference")
    assert _policy_payload(batched.telemetry) == _policy_payload(reference.telemetry)
    # Both levels are present under their prefixes.
    for prefix in ("l1.", "l2."):
        assert batched.telemetry["counters"][prefix + "fills"] > 0


# -- counter correctness on hand-computed traces -----------------------------

def _tiny_run(lines, spec, engine_cls=BatchedEngine, **config_kw):
    """2-set x 2-way cache; ``lines`` are line numbers (set = line & 1)."""
    config = CacheConfig(num_sets=2, ways=2, line_size=64, **config_kw)
    addresses = np.array([line * 64 for line in lines], dtype=np.uint64)
    return engine_cls(config, telemetry=Telemetry()).run(addresses, spec, seed=0)


@pytest.mark.parametrize("engine_cls", [BatchedEngine, ReferenceEngine])
def test_lru_counters_all_miss_thrash(engine_cls):
    # Tags 0,1,2 cycle through a 2-way set: every access misses, the two
    # oldest fills are evicted each round, and no line is ever hit.
    result = _tiny_run([0, 2, 4, 0, 2, 4], PolicySpec("lru"), engine_cls)
    assert result.hit_count == 0
    counters = result.telemetry["counters"]
    assert counters["fills"] == 6
    assert counters["evictions"] == 4
    assert counters["dead_on_fill"] == 4
    assert result.telemetry["histograms"]["line_hits"] == {"0": 4}
    assert result.telemetry["histograms"]["resident_line_hits"] == {"0": 2}


@pytest.mark.parametrize("engine_cls", [BatchedEngine, ReferenceEngine])
def test_lru_counters_count_hits_per_line(engine_cls):
    # Line 0 collects two hits (one an MRU-collapsed repeat) before being
    # evicted; line 2 is evicted dead.  The collapsed repeat must still
    # land in the per-line hit accounting (the `extra` array).
    result = _tiny_run([0, 2, 0, 0, 4, 2], PolicySpec("lru"), engine_cls)
    assert result.hits.tolist() == [False, False, True, True, False, False]
    counters = result.telemetry["counters"]
    assert counters["fills"] == 4
    assert counters["evictions"] == 2
    assert counters["dead_on_fill"] == 1
    assert result.telemetry["histograms"]["line_hits"] == {"0": 1, "2": 1}
    assert result.telemetry["histograms"]["resident_line_hits"] == {"0": 2}


@pytest.mark.parametrize("engine_cls", [BatchedEngine, ReferenceEngine])
def test_emissary_counters_hand_computed(engine_cls):
    # hp_threshold=1, prob_inv=1 (promotion certain while budget lasts):
    # tag0 fills HP; tag1 fills LP (budget full); tag2's miss finds the
    # set saturated, so two-class search evicts the *HP* LRU (tag0, dead),
    # freeing budget for tag2 to promote.
    spec = PolicySpec("emissary", {"hp_threshold": 1, "prob_inv": 1})
    result = _tiny_run([0, 2, 4], spec, engine_cls)
    counters = result.telemetry["counters"]
    assert counters["fills"] == 3
    assert counters["evictions"] == 1
    assert counters["evictions_hp"] == 1
    assert counters["evictions_lp"] == 0
    assert counters["hp_promotions"] == 2
    assert counters["hp_demotions"] == 1
    assert counters["dead_on_fill"] == 1
    assert counters["hp_lines_final"] == 1
    hists = result.telemetry["histograms"]
    assert hists["hp_set_occupancy"] == {"0": 1, "1": 1}
    assert hists["line_hits"] == {"0": 1}


# -- spans and chrome trace export -------------------------------------------

def test_engine_phase_spans_recorded():
    result = BatchedEngine(CacheConfig(num_sets=32, ways=4),
                           telemetry=Telemetry()).run(_addresses(),
                                                      PolicySpec("lru"), seed=0)
    names = [s["name"] for s in result.telemetry["spans"]]
    assert names == ["decode", "run_collapse", "stable_sort", "kernel_loop"]
    for span in result.telemetry["spans"]:
        assert span["dur_us"] >= 0.0


def test_hierarchy_spans_cover_both_levels():
    config = HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                             l2=CacheConfig(num_sets=32, ways=4))
    trace = TraceSpec("loop", 3_000, 0, {"footprint_lines": 100})
    result = simulate(SimRequest(trace, PolicySpec("lru"), config, telemetry=True))
    names = {s["name"] for s in result.telemetry["spans"]}
    assert {"l1_stage", "miss_extract", "l2_stage"} <= names
    assert any(name.startswith("l1.") for name in names)
    assert any(name.startswith("l2.") for name in names)


def test_chrome_trace_export_structure():
    tel = Telemetry()
    with tel.span("outer", n=2):
        with tel.span("inner"):
            pass
    trace = tel.to_chrome_trace()
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert [e["name"] for e in events] == ["outer", "inner"]  # sorted by start
    assert all(e["ph"] == "X" and e["ts"] >= 0.0 for e in events)
    assert events[0]["args"] == {"n": 2}
    json.dumps(trace)  # must be directly serializable


def test_spans_to_chrome_trace_honors_per_span_track_ids():
    spans = [{"name": "a", "ts_us": 5.0, "dur_us": 1.0, "pid": 7, "tid": 3},
             {"name": "b", "ts_us": 1.0, "dur_us": 1.0}]
    events = spans_to_chrome_trace(spans, pid=1, tid=2)["traceEvents"]
    assert [(e["name"], e["pid"], e["tid"]) for e in events] == [("b", 1, 2),
                                                                ("a", 7, 3)]
    assert events[0]["ts"] == 0.0  # rebased to the earliest span


# -- registry / serialization behavior ---------------------------------------

def test_telemetry_merge_prefixed():
    parent, child = Telemetry(), Telemetry()
    child.inc("fills", 3)
    child.observe("line_hits", 2)
    with child.span("stage"):
        pass
    parent.inc("l1.fills", 1)
    parent.merge_prefixed(child, "l1.")
    assert parent.counters == {"l1.fills": 4}
    assert parent.histograms == {"l1.line_hits": {2: 1}}
    assert [s["name"] for s in parent.spans] == ["l1.stage"]
    assert child.spans[0]["name"] == "stage"  # child is not mutated


def test_telemetry_to_dict_is_schema_versioned_and_json_safe():
    tel = Telemetry()
    tel.inc("fills")
    tel.observe_many("line_hits", [2, 0, 2])
    payload = tel.to_dict()
    assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
    assert payload["histograms"]["line_hits"] == {"0": 1, "2": 2}
    json.dumps(payload)


def test_telemetry_from_dict_round_trips():
    tel = Telemetry()
    tel.inc("fills", 3)
    tel.observe_many("line_hits", [2, 0, 2])
    tel.spans.append({"name": "kernel_loop", "ts_us": 1.0, "dur_us": 2.0,
                      "args": {}})
    decoded = Telemetry.from_dict(json.loads(json.dumps(tel.to_dict())))
    assert decoded.counters == tel.counters
    assert decoded.histograms == tel.histograms  # keys back to ints
    assert decoded.spans == tel.spans
    assert decoded.to_dict() == tel.to_dict()


def test_telemetry_from_dict_wire_discipline():
    payload = Telemetry().to_dict()
    # Unknown keys rejected (strict decode, emissary.wire convention).
    with pytest.raises(ValueError, match="unknown"):
        Telemetry.from_dict({**payload, "surprise": 1})
    # A payload declaring a newer schema refuses to half-parse.
    with pytest.raises(ValueError, match="schema_version"):
        Telemetry.from_dict({**payload,
                             "schema_version": TELEMETRY_SCHEMA_VERSION + 1})
    # A missing version field decodes as version 0 (pre-stamp layout).
    legacy = {k: v for k, v in payload.items() if k != "schema_version"}
    assert Telemetry.from_dict(legacy).to_dict() == payload


def test_sim_request_telemetry_roundtrip_and_cache_key_compat():
    request = SimRequest(TraceSpec("loop", 100, 0), PolicySpec("lru"),
                         CacheConfig(num_sets=16, ways=2))
    # Off by default, and absent from the canonical encoding so every
    # pre-telemetry results-cache key is unchanged.
    assert request.telemetry is False
    assert "telemetry" not in request.to_dict()
    instrumented = SimRequest(request.trace, request.policy, request.config,
                              telemetry=True)
    assert instrumented.to_dict()["telemetry"] is True
    assert SimRequest.from_dict(instrumented.to_dict()) == instrumented
    assert SimRequest.from_dict(request.to_dict()) == request
    with pytest.raises(TypeError):
        SimRequest(request.trace, request.policy, request.config, telemetry=1)


def test_sim_result_accesses_per_s_null_safe():
    result = SimResult(policy="lru", n=100, hit_count=50, miss_count=50,
                       elapsed_s=0.0)
    assert result.accesses_per_s is None
    payload = json.loads(json.dumps(result.to_dict()))  # no Infinity leaks
    assert payload["accesses_per_s"] is None
    assert SimResult.from_dict(payload).accesses_per_s is None
    timed = SimResult(policy="lru", n=100, hit_count=50, miss_count=50,
                      elapsed_s=2.0)
    assert timed.accesses_per_s == 50.0


def test_results_cache_counts_hits_and_misses(tmp_path):
    from emissary.results_cache import ResultsCache

    store = ResultsCache(tmp_path)
    config = {"x": 1}
    assert store.load(config) is None
    store.store(config, {"ok": True})
    assert store.load(config) == {"ok": True}
    next(tmp_path.glob("*.json")).write_text("corrupt")
    assert store.load(config) is None
    assert store.stats() == {"hits": 1, "misses": 2}
