"""Streaming (chunked) simulation must be bit-identical to one-shot runs.

The acceptance bar for ``simulate_stream``: for every policy, on both the
flat and the two-level engine, across several chunk sizes — including one
that splits an MRU run across a chunk boundary — the streamed hit vector,
counts, and policy stats equal :meth:`run` on the concatenated trace.
"""

import numpy as np
import pytest

from emissary.api import PolicySpec
from emissary.engine import BatchedEngine, CacheConfig
from emissary.hierarchy import (BatchedHierarchyEngine, HierarchyConfig,
                                MissCountTable)
from emissary.policies import POLICY_NAMES
from emissary.telemetry import Telemetry
from emissary.traces import TraceSpec

CONFIG = CacheConfig(num_sets=64, ways=4)
HIER = HierarchyConfig(l1=CacheConfig(num_sets=16, ways=2),
                       l2=CacheConfig(num_sets=64, ways=4))
# 7 : tiny, every chunk boundary lands mid-whatever; 997 : prime, unaligned;
# 10**9 : one chunk (degenerate case).
CHUNK_SIZES = (7, 997, 10**9)
N = 20_000
SEED = 11


def _spec(policy):
    if policy == "emissary":
        return PolicySpec(policy, {"hp_threshold": 4, "prob_inv": 8})
    return PolicySpec(policy)


def _chunks(addresses, size):
    return [addresses[i:i + size] for i in range(0, len(addresses), size)]


def _trace():
    return TraceSpec("call", N, SEED).generate()


def _assert_same(streamed, oneshot):
    assert streamed.n == oneshot.n
    assert streamed.hit_count == oneshot.hit_count
    assert streamed.miss_count == oneshot.miss_count
    assert np.array_equal(streamed.hits, oneshot.hits)
    assert streamed.policy_stats == oneshot.policy_stats


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("chunk", CHUNK_SIZES)
def test_flat_stream_bit_identical(policy, chunk):
    addresses = _trace()
    spec = _spec(policy)
    oneshot = BatchedEngine(CONFIG).run(addresses, spec, seed=SEED)
    streamed = BatchedEngine(CONFIG).simulate_stream(
        _chunks(addresses, chunk), spec, seed=SEED)
    _assert_same(streamed, oneshot)


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_boundary_splits_mru_run(policy):
    """A chunk boundary landing inside a long same-line run must not
    change the run's repeat flag or folded hit count."""
    line = np.uint64(0x400000)
    addresses = np.concatenate([
        np.full(10, line, dtype=np.uint64),          # run of 10 ...
        np.full(7, line + np.uint64(64), np.uint64),
        np.full(10, line, dtype=np.uint64),
    ])
    spec = _spec(policy)
    oneshot = BatchedEngine(CONFIG).run(addresses, spec, seed=SEED)
    # Split at 4: mid-first-run.  Split at 12: mid-second-run.  Split at
    # 1: every boundary is mid-run somewhere.
    for cut in (1, 4, 12):
        streamed = BatchedEngine(CONFIG).simulate_stream(
            _chunks(addresses, cut), spec, seed=SEED)
        _assert_same(streamed, oneshot)


def test_run_spanning_many_chunks_carries_in_o1():
    """A single MRU run longer than many chunks is carried as one
    compressed (line, u, cost, core, length) tuple, not buffered
    accesses."""
    addresses = np.full(5_000, np.uint64(0x400000))
    spec = _spec("srrip")
    engine = BatchedEngine(CONFIG)
    stream = engine.stream(spec, seed=SEED)
    for chunk in _chunks(addresses, 13):
        stream.feed(chunk)
    assert stream._pending is not None
    assert stream._pending[4] == 5_000  # whole run, one carried tuple
    assert not stream._hit_chunks  # nothing resolved yet
    result = stream.finish()
    oneshot = engine.run(addresses, spec, seed=SEED)
    _assert_same(result, oneshot)


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("chunk", CHUNK_SIZES)
def test_hierarchy_stream_bit_identical(policy, chunk):
    addresses = _trace()
    spec = _spec(policy)
    oneshot = BatchedHierarchyEngine(HIER).run(addresses, spec, seed=SEED)
    streamed = BatchedHierarchyEngine(HIER).simulate_stream(
        _chunks(addresses, chunk), spec, seed=SEED)
    assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
    assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)
    assert streamed.l1.hit_count == oneshot.l1.hit_count
    assert streamed.l2.hit_count == oneshot.l2.hit_count
    assert streamed.l2.policy_stats == oneshot.l2.policy_stats


@pytest.mark.parametrize("budget", [None, 1, 64, 1 << 20])
def test_hierarchy_coalescing_budgets_bit_identical(budget):
    """L1-miss coalescing (batching misses up to ``chunk_bytes`` before
    forwarding to L2) must never change outcomes: None forwards every
    chunk's misses immediately, 1 byte degenerates to the same, and a
    large budget defers almost everything to the final flush."""
    addresses = _trace()
    spec = _spec("emissary")
    oneshot = BatchedHierarchyEngine(HIER).run(addresses, spec, seed=SEED)
    streamed = BatchedHierarchyEngine(HIER).simulate_stream(
        _chunks(addresses, 997), spec, seed=SEED, chunk_bytes=budget)
    assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
    assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)
    assert streamed.l2.policy_stats == oneshot.l2.policy_stats


def test_hierarchy_coalescing_rejects_nonpositive_budget():
    spec = _spec("lru")
    with pytest.raises(ValueError, match="chunk_bytes"):
        BatchedHierarchyEngine(HIER).simulate_stream(
            _chunks(_trace(), 997), spec, seed=SEED, chunk_bytes=0)


def test_hierarchy_coalescing_reduces_l2_dispatches():
    """The point of the budget: far fewer (larger) L2 batches than L1
    chunks.  Telemetry's stream_chunk spans count the actual batches."""
    addresses = _trace()
    spec = _spec("lru")

    def l2_chunks(budget):
        tel = Telemetry()
        BatchedHierarchyEngine(HIER, telemetry=tel).simulate_stream(
            _chunks(addresses, 97), spec, seed=SEED, chunk_bytes=budget)
        return sum(1 for s in tel.to_dict()["spans"]
                   if s["name"] == "l2.stream_chunk")

    eager, coalesced = l2_chunks(None), l2_chunks(1 << 20)
    assert coalesced < eager


def test_feed_outcomes_concatenate_to_oneshot():
    """feed() returns outcomes for *resolved* accesses only; cumulatively
    they reassemble the exact one-shot hit vector and miss lines."""
    addresses = _trace()
    spec = _spec("lru")
    engine = BatchedEngine(CONFIG)
    oneshot = engine.run(addresses, spec, seed=SEED)
    stream = engine.stream(spec, seed=SEED)
    pieces, miss_pieces = [], []
    for chunk in _chunks(addresses, 101):
        hits, miss_lines = stream.feed(chunk)
        pieces.append(hits)
        miss_pieces.append(miss_lines)
    hits, miss_lines = stream.flush()
    pieces.append(hits)
    miss_pieces.append(miss_lines)
    assert np.array_equal(np.concatenate(pieces), oneshot.hits)
    lines = addresses >> np.uint64(CONFIG.offset_bits)
    edge = np.ones(len(lines), dtype=bool)
    edge[1:] = lines[1:] != lines[:-1]
    expect_miss = lines[edge][~oneshot.hits[np.flatnonzero(edge)]]
    assert np.array_equal(np.concatenate(miss_pieces), expect_miss)


def test_telemetry_parity_with_oneshot():
    addresses = _trace()
    spec = _spec("emissary")
    t_run, t_stream = Telemetry(), Telemetry()
    BatchedEngine(CONFIG, telemetry=t_run).run(addresses, spec, seed=SEED)
    BatchedEngine(CONFIG, telemetry=t_stream).simulate_stream(
        _chunks(addresses, 997), spec, seed=SEED)
    run_d, stream_d = t_run.to_dict(), t_stream.to_dict()
    stream_counters = dict(stream_d["counters"])
    assert stream_counters.pop("engine.stream_chunks") == (N + 996) // 997
    assert stream_counters == run_d["counters"]
    assert stream_d["histograms"] == run_d["histograms"]
    names = {s["name"] for s in stream_d["spans"]}
    assert "stream_chunk" in names and "stream_ingest" in names


def test_cost_chunks_match_oneshot_cost():
    addresses = _trace()
    rng = np.random.default_rng(0)
    cost = rng.integers(0, 5, size=len(addresses)).astype(np.int64)
    spec = _spec("emissary")
    oneshot = BatchedEngine(CONFIG).run(addresses, spec, seed=SEED, cost=cost)
    streamed = BatchedEngine(CONFIG).simulate_stream(
        _chunks(addresses, 313), spec, seed=SEED,
        cost_chunks=_chunks(cost, 313))
    _assert_same(streamed, oneshot)


def test_keep_hits_false_drops_vector_keeps_counts():
    addresses = _trace()
    spec = _spec("srrip")
    oneshot = BatchedEngine(CONFIG).run(addresses, spec, seed=SEED)
    streamed = BatchedEngine(CONFIG).simulate_stream(
        _chunks(addresses, 997), spec, seed=SEED, keep_hits=False)
    assert streamed.hits is None
    assert streamed.hit_count == oneshot.hit_count
    assert streamed.policy_stats == oneshot.policy_stats


def test_collapse_runs_false_streams_identically():
    addresses = _trace()
    spec = _spec("lru")
    oneshot = BatchedEngine(CONFIG, collapse_runs=False).run(
        addresses, spec, seed=SEED)
    streamed = BatchedEngine(CONFIG, collapse_runs=False).simulate_stream(
        _chunks(addresses, 251), spec, seed=SEED)
    _assert_same(streamed, oneshot)
    # And collapse on/off agree with each other, streamed or not.
    assert np.array_equal(
        streamed.hits,
        BatchedEngine(CONFIG).simulate_stream(
            _chunks(addresses, 251), spec, seed=SEED).hits)


def test_empty_chunks_are_noops():
    addresses = _trace()
    spec = _spec("lru")
    empty = np.zeros(0, dtype=np.uint64)
    chunks = [empty, *_chunks(addresses, 997), empty]
    streamed = BatchedEngine(CONFIG).simulate_stream(chunks, spec, seed=SEED)
    _assert_same(streamed, BatchedEngine(CONFIG).run(addresses, spec, seed=SEED))


def test_stream_lifecycle_errors():
    spec = _spec("lru")
    stream = BatchedEngine(CONFIG).stream(spec, seed=SEED)
    stream.feed(np.full(4, np.uint64(0x400000)))
    stream.flush()
    with pytest.raises(RuntimeError, match="flushed"):
        stream.feed(np.full(4, np.uint64(0x400000)))
    with pytest.raises(RuntimeError, match="flushed"):
        stream.flush()
    # finish() after an explicit flush is fine (idempotent assembly).
    result = stream.finish()
    assert result.n == 4


def test_miss_count_table_matches_dict_walk():
    """MissCountTable.advance must be outcome-identical to the plain
    per-key dict walk it replaced, across arbitrary chunk cuts."""
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 50, size=3_000).astype(np.uint64)
    reference: dict[int, int] = {}
    expect = np.zeros(len(keys), dtype=np.int64)
    for i, key in enumerate(keys.tolist()):
        reference[key] = reference.get(key, 0) + 1
        expect[i] = reference[key]
    for cut in (1, 7, 997, 10**9):
        table = MissCountTable()
        got = np.concatenate(
            [table.advance(c) for c in _chunks(keys, cut)] or
            [np.zeros(0, dtype=np.int64)])
        assert np.array_equal(got, expect)
        assert len(table) == len(reference)
        assert np.array_equal(table.keys, np.sort(np.unique(keys)))
        assert table.counts.sum() == len(keys)
    assert MissCountTable().advance(np.zeros(0, dtype=np.uint64)).tolist() == []


def test_miss_count_table_footprint_bounded_by_unique_keys():
    """The streamed hierarchy's miss-count state must scale with the
    *unique* miss-line footprint (16 bytes per key), not with the number
    of accesses — that was the point of replacing the unbounded dict."""
    unique = 1_000
    table = MissCountTable()
    rng = np.random.default_rng(3)
    total = 0
    for _ in range(50):  # 500k accesses over a fixed 1k-line footprint
        chunk = rng.integers(0, unique, size=10_000).astype(np.uint64)
        table.advance(chunk)
        total += len(chunk)
    assert total == 500_000
    assert len(table) <= unique
    assert table.nbytes == len(table) * 16
    assert table.counts.sum() == total


def test_mismatched_cost_length_rejected():
    spec = _spec("emissary")
    stream = BatchedEngine(CONFIG).stream(spec, seed=SEED)
    with pytest.raises(ValueError, match="cost"):
        stream.feed(np.full(4, np.uint64(0x400000)),
                    cost=np.zeros(3, dtype=np.int64))
