"""Tests for the synthetic instruction-stream generators."""

import numpy as np
import pytest

from emissary.traces import (
    CHUNK_GENERATORS,
    FILE_KIND,
    GENERATORS,
    LINE_BYTES,
    MAX_CORES,
    FrozenParams,
    InterleaveSpec,
    TraceSpec,
    _ADDR_ITEMSIZE,
    call_heavy,
    looping_code,
    trace_spec_from_dict,
    working_set_shift,
)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_length_and_dtype(kind):
    trace = GENERATORS[kind](10_000, seed=1)
    assert len(trace) == 10_000
    assert trace.dtype == np.uint64


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_deterministic_for_seed(kind):
    a = GENERATORS[kind](5_000, seed=42)
    b = GENERATORS[kind](5_000, seed=42)
    c = GENERATORS[kind](5_000, seed=43)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_looping_code_stays_in_footprint():
    base, footprint = 0x400000, 128
    trace = looping_code(20_000, footprint_lines=footprint, base=base, seed=0)
    lines = trace // LINE_BYTES
    assert lines.min() >= base // LINE_BYTES
    assert lines.max() < base // LINE_BYTES + footprint


def test_working_set_shift_moves_footprint():
    trace = working_set_shift(40_000, phases=4, footprint_lines=64, seed=0)
    quarters = np.array_split(trace // LINE_BYTES, 4)
    bases = [q.min() for q in quarters]
    assert len(set(bases)) == 4  # each phase lives in its own region


def test_call_heavy_touches_two_regions():
    trace = call_heavy(30_000, caller_lines=64, num_callees=8, seed=0)
    lines = np.unique(trace // LINE_BYTES)
    # Caller region plus at least one callee region far away.
    assert lines.max() - lines.min() > 64


def test_spec_roundtrip_and_generate():
    spec = TraceSpec("loop", 1000, 5, {"footprint_lines": 32})
    again = TraceSpec.from_dict(spec.to_dict())
    assert again == spec
    assert np.array_equal(spec.generate(), again.generate())


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        TraceSpec("fractal", 1000)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_rejects_nonpositive_n(kind):
    with pytest.raises(ValueError):
        GENERATORS[kind](0)


@pytest.mark.parametrize("bad", [
    {"caller_lines": 0}, {"caller_lines": -3}, {"num_callees": 0},
    {"callee_lines": 0}, {"callee_lines": -1}, {"call_period": 0},
    {"call_period": -24},
])
def test_call_heavy_rejects_nonpositive_params(bad):
    # Regression: callee_lines=0 used to crash deep inside rng.integers
    # (empty range) and call_period<=0 span forever; both now fail fast.
    (name, _value), = bad.items()
    with pytest.raises(ValueError, match=name):
        call_heavy(1000, **bad)


class TestFrozenSpec:
    """TraceSpec is genuinely immutable: params cannot be edited in place."""

    def test_params_frozen_against_source_dict_mutation(self):
        params = {"footprint_lines": 32}
        spec = TraceSpec("loop", 1000, 5, params)
        params["footprint_lines"] = 9999  # caller's dict, not the spec's
        assert spec.params["footprint_lines"] == 32
        assert spec.to_dict()["params"] == {"footprint_lines": 32}

    def test_params_reject_in_place_mutation(self):
        spec = TraceSpec("loop", 1000, 5, {"footprint_lines": 32})
        with pytest.raises(TypeError):
            spec.params["footprint_lines"] = 9999
        with pytest.raises(TypeError):
            del spec.params["footprint_lines"]

    def test_spec_is_hashable_and_usable_as_key(self):
        a = TraceSpec("loop", 1000, 5, {"footprint_lines": 32})
        b = TraceSpec("loop", 1000, 5, {"footprint_lines": 32})
        c = TraceSpec("loop", 1000, 5, {"footprint_lines": 64})
        assert a == b and hash(a) == hash(b)
        assert {a: "x"}[b] == "x"
        assert len({a, b, c}) == 2

    def test_frozen_params_compare_equal_to_plain_dicts(self):
        spec = TraceSpec("loop", 1000, 5, {"footprint_lines": 32})
        assert spec.params == {"footprint_lines": 32}
        assert dict(spec.params) == {"footprint_lines": 32}

    def test_nested_values_frozen_and_thawed(self):
        fp = FrozenParams({"b": [1, {"c": 2}], "a": True})
        assert list(fp) == ["a", "b"]  # canonical sorted order
        assert isinstance(fp["b"], tuple)
        thawed = fp.thaw()
        assert thawed == {"a": True, "b": [1, {"c": 2}]}
        thawed["b"].append(3)  # thawed copies are plain mutable objects
        assert fp["b"] == (1, FrozenParams({"c": 2}))

    def test_rejects_unhashable_param_values(self):
        with pytest.raises(TypeError):
            FrozenParams({"x": object()})
        with pytest.raises(TypeError):
            FrozenParams({1: "non-string key"})


def test_file_kind_requires_sha256():
    with pytest.raises(ValueError, match="sha256"):
        TraceSpec(FILE_KIND, 100)
    with pytest.raises(ValueError, match="sha256"):
        TraceSpec(FILE_KIND, 100, params={"sha256": "tooshort"})
    spec = TraceSpec(FILE_KIND, 100, params={"sha256": "0" * 64})
    assert spec.kind == FILE_KIND


class TestChunkedGeneration:
    """Chunked synthetic generation is bit-identical to one-shot and
    never materializes more than the chunk budget at a time."""

    def test_every_generator_has_a_chunked_twin(self):
        assert sorted(CHUNK_GENERATORS) == sorted(GENERATORS)

    @pytest.mark.parametrize("kind", sorted(CHUNK_GENERATORS))
    @pytest.mark.parametrize("chunk_bytes", [64, 1 << 10, 1 << 22])
    def test_chunks_concatenate_to_oneshot(self, kind, chunk_bytes):
        oneshot = GENERATORS[kind](10_000, seed=11)
        chunks = list(CHUNK_GENERATORS[kind](10_000, seed=11,
                                             chunk_bytes=chunk_bytes))
        assert np.array_equal(np.concatenate(chunks), oneshot)
        step = max(1, chunk_bytes // _ADDR_ITEMSIZE)
        assert all(len(chunk) == step for chunk in chunks[:-1])
        assert 0 < len(chunks[-1]) <= step
        assert all(chunk.dtype == np.uint64 for chunk in chunks)

    @pytest.mark.parametrize("kind", sorted(CHUNK_GENERATORS))
    def test_sub_itemsize_budget_yields_single_element_chunks(self, kind):
        chunks = list(CHUNK_GENERATORS[kind](64, seed=3, chunk_bytes=1))
        assert all(len(chunk) == 1 for chunk in chunks)
        assert np.array_equal(np.concatenate(chunks),
                              GENERATORS[kind](64, seed=3))

    @pytest.mark.parametrize("kind", sorted(CHUNK_GENERATORS))
    @pytest.mark.parametrize("chunk_bytes", [0, -8])
    def test_rejects_nonpositive_chunk_bytes(self, kind, chunk_bytes):
        with pytest.raises(ValueError, match="chunk_bytes"):
            next(CHUNK_GENERATORS[kind](100, chunk_bytes=chunk_bytes))

    def test_spec_generate_chunks_matches_generate(self):
        spec = TraceSpec("shift", 8_000, 7, {"footprint_lines": 64})
        chunks = list(spec.generate_chunks(chunk_bytes=1 << 12))
        assert np.array_equal(np.concatenate(chunks), spec.generate())

    def test_chunked_generators_honor_params(self):
        base, footprint = 0x400000, 128
        chunks = CHUNK_GENERATORS["loop"](20_000, footprint_lines=footprint,
                                          base=base, seed=0,
                                          chunk_bytes=1 << 12)
        lines = np.concatenate(list(chunks)) // LINE_BYTES
        assert lines.min() >= base // LINE_BYTES
        assert lines.max() < base // LINE_BYTES + footprint


class TestInterleaveSpec:
    """Deterministic weighted round-robin interleaving of N core traces."""

    MIX = InterleaveSpec(cores=(TraceSpec("loop", 5_000, 1,
                                          {"footprint_lines": 64}),
                                TraceSpec("call", 3_000, 2),
                                TraceSpec("shift", 4_000, 3,
                                          {"footprint_lines": 32})),
                         weights=(3, 1, 2))

    def test_generate_shape_and_conservation(self):
        addresses, core_ids = self.MIX.generate()
        assert len(addresses) == len(core_ids) == self.MIX.n == 12_000
        assert addresses.dtype == np.uint64
        # Every core contributes exactly its own trace, in order.
        for i, spec in enumerate(self.MIX.cores):
            assert np.array_equal(addresses[core_ids == i], spec.generate())

    def test_weighted_round_robin_schedule(self):
        _, core_ids = self.MIX.generate()
        # First full round: 3 accesses of core 0, 1 of core 1, 2 of core 2.
        assert core_ids[:6].tolist() == [0, 0, 0, 1, 2, 2]
        # Core 1 (n=3000, weight 1) exhausts after 3000 rounds; later
        # rounds interleave only cores 0 and 2.
        assert core_ids[core_ids != 0][:2].tolist() == [1, 2]

    def test_generate_chunks_bit_identical(self):
        addresses, core_ids = self.MIX.generate()
        for chunk_bytes in (256, 4_096, 1 << 24):
            pairs = list(self.MIX.generate_chunks(chunk_bytes=chunk_bytes))
            assert np.array_equal(np.concatenate([a for a, _ in pairs]),
                                  addresses)
            assert np.array_equal(np.concatenate([c for _, c in pairs]),
                                  core_ids)

    def test_wire_roundtrip_and_dispatch(self):
        d = self.MIX.to_dict()
        assert InterleaveSpec.from_dict(d) == self.MIX
        assert trace_spec_from_dict(d) == self.MIX
        single = TraceSpec("loop", 100, 0, {"footprint_lines": 8})
        assert trace_spec_from_dict(single.to_dict()) == single

    def test_frozen_and_hashable(self):
        assert hash(self.MIX) == hash(InterleaveSpec(
            cores=self.MIX.cores, weights=self.MIX.weights))
        with pytest.raises(AttributeError):
            self.MIX.weights = (1, 1, 1)

    def test_default_weights_are_plain_round_robin(self):
        mix = InterleaveSpec(cores=self.MIX.cores[:2])
        assert mix.weights == (1, 1)
        _, core_ids = mix.generate()
        assert core_ids[:4].tolist() == [0, 1, 0, 1]

    def test_validation(self):
        cores = self.MIX.cores
        with pytest.raises(ValueError, match="at least one"):
            InterleaveSpec(cores=())
        with pytest.raises(ValueError, match="weights"):
            InterleaveSpec(cores=cores, weights=(1, 2))
        with pytest.raises(ValueError, match="positive"):
            InterleaveSpec(cores=cores, weights=(1, 0, 2))
        with pytest.raises(TypeError, match="TraceSpec"):
            InterleaveSpec(cores=({"kind": "loop"},))
        with pytest.raises(ValueError, match=str(MAX_CORES)):
            InterleaveSpec(cores=(cores[0],) * (MAX_CORES + 1))
