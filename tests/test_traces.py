"""Tests for the synthetic instruction-stream generators."""

import numpy as np
import pytest

from emissary.traces import (
    GENERATORS,
    LINE_BYTES,
    TraceSpec,
    call_heavy,
    looping_code,
    working_set_shift,
)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_length_and_dtype(kind):
    trace = GENERATORS[kind](10_000, seed=1)
    assert len(trace) == 10_000
    assert trace.dtype == np.uint64


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_deterministic_for_seed(kind):
    a = GENERATORS[kind](5_000, seed=42)
    b = GENERATORS[kind](5_000, seed=42)
    c = GENERATORS[kind](5_000, seed=43)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_looping_code_stays_in_footprint():
    base, footprint = 0x400000, 128
    trace = looping_code(20_000, footprint_lines=footprint, base=base, seed=0)
    lines = trace // LINE_BYTES
    assert lines.min() >= base // LINE_BYTES
    assert lines.max() < base // LINE_BYTES + footprint


def test_working_set_shift_moves_footprint():
    trace = working_set_shift(40_000, phases=4, footprint_lines=64, seed=0)
    quarters = np.array_split(trace // LINE_BYTES, 4)
    bases = [q.min() for q in quarters]
    assert len(set(bases)) == 4  # each phase lives in its own region


def test_call_heavy_touches_two_regions():
    trace = call_heavy(30_000, caller_lines=64, num_callees=8, seed=0)
    lines = np.unique(trace // LINE_BYTES)
    # Caller region plus at least one callee region far away.
    assert lines.max() - lines.min() > 64


def test_spec_roundtrip_and_generate():
    spec = TraceSpec("loop", 1000, 5, {"footprint_lines": 32})
    again = TraceSpec.from_dict(spec.to_dict())
    assert again == spec
    assert np.array_equal(spec.generate(), again.generate())


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        TraceSpec("fractal", 1000)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_rejects_nonpositive_n(kind):
    with pytest.raises(ValueError):
        GENERATORS[kind](0)
