"""Seeded true-positive fixtures for the EMI1xx rule family plus the
project-rule runner plumbing (package discovery, pragma suppression of
project findings, EMI007 staleness)."""

from __future__ import annotations

import textwrap

from emissary.analysis.lint import lint_paths, lint_source, package_roots


def make_pkg(tmp_path, files: dict[str, str], name: str = "pkg") -> str:
    root = tmp_path / name
    root.mkdir()
    (root / "__init__.py").write_text("")
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if not (path.parent / "__init__.py").exists():
            (path.parent / "__init__.py").write_text("")
        path.write_text(textwrap.dedent(source))
    return str(root)


def codes_of(report, code):
    return [v for v in report.violations if v.code == code]


# -- EMI101: interprocedural kernel purity ----------------------------------


def test_emi101_clock_two_calls_below_entry_point(tmp_path):
    """The acceptance fixture: time.time() two hops below run_set."""
    root = make_pkg(tmp_path, {
        "policies/lru.py": """
            from pkg.helpers import outer

            class LRU:
                def run_set(self, xs):
                    return outer(xs)
        """,
        "helpers.py": """
            import time

            def outer(xs):
                return inner(xs)

            def inner(xs):
                return time.time()
        """,
    })
    report = lint_paths([root], select=["EMI101"])
    findings = codes_of(report, "EMI101")
    assert len(findings) == 1
    v = findings[0]
    assert v.path.endswith("policies/lru.py")
    assert v.line == 5  # anchored at the entry-point def
    assert "time.time" in v.message and "wall-clock" in v.message
    assert "outer -> inner" in v.message


def test_emi101_flags_kernels_py_dispatch_fns(tmp_path):
    root = make_pkg(tmp_path, {
        "compiled/kernels_py.py": """
            import random

            def lru_run(state):
                return random.random()
        """,
    })
    report = lint_paths([root], select=["EMI101"])
    assert len(codes_of(report, "EMI101")) == 1
    assert "random.random" in codes_of(report, "EMI101")[0].message


def test_emi101_clean_kernel_passes(tmp_path):
    root = make_pkg(tmp_path, {
        "policies/ok.py": """
            class OK:
                def run_set(self, xs):
                    return self._score(xs)

                def _score(self, xs):
                    return sorted(xs)
        """,
    })
    report = lint_paths([root], select=["EMI101"])
    assert codes_of(report, "EMI101") == []


def test_emi101_suppressible_at_entry_point(tmp_path):
    root = make_pkg(tmp_path, {
        "policies/lru.py": """
            import time

            class LRU:
                def run_set(self, xs):  # emi: ignore[EMI101]
                    return time.time()
        """,
    })
    report = lint_paths([root], select=["EMI101"])
    assert codes_of(report, "EMI101") == []


def test_repo_kernels_prove_pure():
    """EMI101 over the real tree: the paper's determinism claim, as a
    reachability proof with zero suppressions in policy code."""
    report = lint_paths(["src"], select=["EMI101"])
    assert codes_of(report, "EMI101") == []


# -- EMI102: blocking calls in async def ------------------------------------


def test_emi102_fixtures():
    src = textwrap.dedent("""
        import time

        async def handler(executor, fut):
            time.sleep(1)
            open("x")
            executor.submit(f).result()
            fut.result()
    """)
    found = [v.code for v in lint_source(src, select=["EMI102"])]
    # time.sleep, open, submit().result() — but NOT fut.result(), whose
    # receiver is not executor-shaped (asyncio.Task.result() after an
    # await is non-blocking and must not be flagged).
    assert found == ["EMI102"] * 3


def test_emi102_ignores_sync_defs_and_nested_callbacks():
    src = textwrap.dedent("""
        import time

        def plain():
            time.sleep(1)

        async def handler(loop):
            def cb():
                time.sleep(1)
            await loop.run_in_executor(None, cb)
    """)
    assert lint_source(src, select=["EMI102"]) == []


# -- EMI103: discarded coroutines/tasks -------------------------------------


def test_emi103_fixtures():
    src = textwrap.dedent("""
        import asyncio

        async def work():
            pass

        async def main(loop):
            asyncio.create_task(work())
            work()
            await work()
            task = asyncio.create_task(work())
            await task
    """)
    found = lint_source(src, select=["EMI103"])
    assert [v.code for v in found] == ["EMI103", "EMI103"]
    assert "create_task" in found[0].message
    assert "never awaited" in found[1].message


# -- EMI104: fork reachable from async --------------------------------------


def test_emi104_fork_below_async_flagged_at_construction_site(tmp_path):
    root = make_pkg(tmp_path, {
        "serve.py": """
            from concurrent.futures import ProcessPoolExecutor

            class Service:
                async def run(self):
                    self._rebuild()

                def _rebuild(self):
                    self._pool = self._make()

                def _make(self):
                    return ProcessPoolExecutor(max_workers=2)
        """,
    })
    report = lint_paths([root], select=["EMI104"])
    findings = codes_of(report, "EMI104")
    assert len(findings) == 1
    v = findings[0]
    assert v.path.endswith("serve.py")
    assert v.line == 12  # the construction site, where the pragma goes
    assert "Service.run" in v.message


def test_emi104_prefork_in_sync_init_is_clean(tmp_path):
    root = make_pkg(tmp_path, {
        "serve.py": """
            from concurrent.futures import ProcessPoolExecutor

            class Service:
                def __init__(self):
                    self._pool = ProcessPoolExecutor(max_workers=2)

                async def run(self):
                    return self._pool
        """,
    })
    report = lint_paths([root], select=["EMI104"])
    assert codes_of(report, "EMI104") == []


# -- EMI105: shared-state writes in coroutines ------------------------------


def test_emi105_fixtures():
    src = textwrap.dedent("""
        async def handler(self):
            self._count += 1

        async def locked(self):
            async with self._lock:
                self._count += 1

        async def module_global():
            global counter
            counter = 1

        async def locals_ok():
            x = 1
            return x
    """)
    found = lint_source(src, select=["EMI105"])
    assert [v.code for v in found] == ["EMI105", "EMI105"]
    assert "self._count" in found[0].message
    assert "counter" in found[1].message


# -- runner plumbing --------------------------------------------------------


def test_package_roots_discovers_children_and_packages(tmp_path):
    make_pkg(tmp_path, {"a.py": "x = 1\n"}, name="inner")
    (tmp_path / "loose.py").write_text("x = 1\n")
    roots = package_roots([tmp_path])
    assert [(str(p), name) for p, name in roots] == [
        (str(tmp_path / "inner"), "inner")]
    # A package dir given directly is its own root.
    assert package_roots([tmp_path / "inner"]) == [
        (tmp_path / "inner", "inner")]
    # Non-package trees contribute none.
    assert package_roots([tmp_path / "missing"]) == []


def test_emi007_stale_project_rule_pragma_is_flagged(tmp_path):
    root = make_pkg(tmp_path, {
        "policies/ok.py": """
            class OK:
                def run_set(self, xs):  # emi: ignore[EMI101]
                    return xs
        """,
    })
    report = lint_paths([root])
    stale = codes_of(report, "EMI007")
    assert len(stale) == 1
    assert "EMI101" in stale[0].message


def test_emi007_not_judged_for_unexecuted_rules(tmp_path):
    root = make_pkg(tmp_path, {
        "mod.py": "x = 1  # emi: ignore[EMI005]\n",
    })
    # EMI005 did not run in this selection, so its pragma is not judged.
    report = lint_paths([root], select=["EMI001", "EMI007"])
    assert codes_of(report, "EMI007") == []
    # On a full run it is stale.
    report = lint_paths([root])
    assert len(codes_of(report, "EMI007")) == 1
