"""Property-based differential testing (hypothesis).

Hand-picked traces in ``test_engine_equivalence`` cover the known trace
families; this suite lets hypothesis search the space of short adversarial
access patterns, cache geometries, and chunk splits for divergence between

* the batched set-major engine and the naive per-access reference
  (flat and two-level),
* the streaming (chunked) path and the one-shot path, with the chunk
  boundaries themselves generated — including ones that split MRU runs,
  and
* the compiled kernel backend (:mod:`emissary.compiled`) against both,
  one-shot and streamed, flat and two-level — skipped only when no
  compiled provider (numba or a C compiler) is available, and
* the multi-core shared-L2 paths: N interleaved instruction streams
  (generated core counts, per-access core-id patterns, chunk cuts)
  through the batched, streamed, and compiled engines against the
  per-access multi-core reference — including the partitioned
  EMISSARY HP budget, and the invariant that a one-core partitioned
  run is bit-identical to a shared one.

Address pools are tiny (a handful of lines, few sets) so traces constantly
collide in sets, re-reference immediately (repeat-flag paths), and evict —
the regimes where the engines could plausibly disagree.

Every engine in this suite runs with the runtime state sanitizer
attached, so each hypothesis example also validates the per-set kernel
invariants (occupancy, HP budgets, RRPV bounds, recency structure) after
every dispatch — a violated invariant surfaces as a
:class:`~emissary.analysis.sanitizer.SanitizerError` with the shrunken
counterexample, not just a diverging hit vector.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from emissary.analysis.sanitizer import Sanitizer
from emissary.api import PolicySpec
from emissary.compiled import CompiledUnavailableError, get_kernels
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine
from emissary.hierarchy import (
    BatchedHierarchyEngine,
    HierarchyConfig,
    HierarchyReferenceEngine,
)
from emissary.traces import LINE_BYTES

SEED = 5

try:
    get_kernels()
    COMPILED_AVAILABLE = True
except CompiledUnavailableError:
    COMPILED_AVAILABLE = False

_needs_compiled_skip = pytest.mark.skipif(
    not COMPILED_AVAILABLE,
    reason="no compiled kernel provider (numba or a C compiler) available")


def needs_compiled(func):  # noqa: ANN001, ANN201 - pytest decorator
    return pytest.mark.needs_compiled(_needs_compiled_skip(func))

policies = st.sampled_from([
    PolicySpec("lru"),
    PolicySpec("random"),
    PolicySpec("srrip"),
    PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4}),
    PolicySpec("emissary", {"hp_threshold": 1, "prob_inv": 2,
                            "min_l1_misses": 2}),
])

# ways >= 2 everywhere: the emissary specs above use hp_threshold up to
# 2, which the kernel (correctly) rejects on a 1-way cache.
geometries = st.sampled_from([
    CacheConfig(num_sets=2, ways=2),
    CacheConfig(num_sets=4, ways=2),
    CacheConfig(num_sets=8, ways=4),
])


@st.composite
def traces(draw, max_len=400):
    """A short line-granular access pattern over a tiny address pool,
    with explicit repeat runs so MRU collapsing always has work."""
    pool = draw(st.integers(min_value=1, max_value=24))
    events = draw(st.lists(
        st.tuples(st.integers(0, pool - 1),      # which line
                  st.integers(1, 6)),            # immediate repeats
        min_size=1, max_size=max_len // 2))
    lines = np.repeat(np.array([line for line, _ in events], dtype=np.uint64),
                      [reps for _, reps in events])[:max_len]
    return lines * np.uint64(LINE_BYTES) + np.uint64(0x400000)


@st.composite
def chunked_traces(draw):
    """A trace plus a random partition of it into contiguous chunks."""
    addresses = draw(traces())
    n = len(addresses)
    if n > 1:
        cut_count = draw(st.integers(min_value=0, max_value=min(8, n - 1)))
        cuts = sorted(draw(st.sets(st.integers(1, n - 1),
                                   min_size=cut_count, max_size=cut_count)))
    else:
        cuts = []
    bounds = [0, *cuts, n]
    return addresses, [addresses[lo:hi]
                       for lo, hi in zip(bounds[:-1], bounds[1:])]


def _sanitized(engine_cls, config):
    """An engine with a fresh sanitizer attached; every kernel dispatch in
    the differential runs below is invariant-checked."""
    return engine_cls(config, sanitizer=Sanitizer())


def _sanitized_compiled(engine_cls, config):
    """Same, on the compiled kernel backend: the sanitizer validates the
    flat per-set state arrays after every compiled dispatch."""
    return engine_cls(config, sanitizer=Sanitizer(), kernel_backend="compiled")


@settings(max_examples=40, deadline=None)
@given(policy=policies, config=geometries, addresses=traces())
def test_flat_batched_matches_reference(policy, config, addresses):
    batched_engine = _sanitized(BatchedEngine, config)
    reference_engine = _sanitized(ReferenceEngine, config)
    batched = batched_engine.run(addresses, policy, seed=SEED)
    reference = reference_engine.run(addresses, policy, seed=SEED)
    assert np.array_equal(batched.hits, reference.hits)
    assert batched.hit_count == reference.hit_count
    assert batched_engine.sanitizer.checks > 0
    assert reference_engine.sanitizer.checks > 0


@settings(max_examples=40, deadline=None)
@given(policy=policies, addresses=traces())
def test_hierarchy_batched_matches_reference(policy, addresses):
    config = HierarchyConfig(l1=CacheConfig(num_sets=2, ways=1),
                             l2=CacheConfig(num_sets=4, ways=2))
    batched = _sanitized(BatchedHierarchyEngine, config).run(
        addresses, policy, seed=SEED)
    reference = _sanitized(HierarchyReferenceEngine, config).run(
        addresses, policy, seed=SEED)
    assert np.array_equal(batched.l1.hits, reference.l1.hits)
    assert np.array_equal(batched.l2.hits, reference.l2.hits)


@settings(max_examples=40, deadline=None)
@given(policy=policies, config=geometries, chunked=chunked_traces())
def test_stream_matches_oneshot(policy, config, chunked):
    addresses, chunks = chunked
    oneshot = _sanitized(BatchedEngine, config).run(addresses, policy, seed=SEED)
    streamed = _sanitized(BatchedEngine, config).simulate_stream(
        chunks, policy, seed=SEED)
    assert np.array_equal(streamed.hits, oneshot.hits)
    assert streamed.policy_stats == oneshot.policy_stats


@settings(max_examples=25, deadline=None)
@given(policy=policies, chunked=chunked_traces())
def test_hierarchy_stream_matches_oneshot(policy, chunked):
    addresses, chunks = chunked
    config = HierarchyConfig(l1=CacheConfig(num_sets=2, ways=1),
                             l2=CacheConfig(num_sets=4, ways=2))
    oneshot = _sanitized(BatchedHierarchyEngine, config).run(
        addresses, policy, seed=SEED)
    streamed = _sanitized(BatchedHierarchyEngine, config).simulate_stream(
        chunks, policy, seed=SEED)
    assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
    assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)
    assert streamed.l2.policy_stats == oneshot.l2.policy_stats


@needs_compiled
@settings(max_examples=40, deadline=None)
@given(policy=policies, config=geometries, addresses=traces())
def test_flat_compiled_matches_reference(policy, config, addresses):
    compiled_engine = _sanitized_compiled(BatchedEngine, config)
    reference_engine = _sanitized(ReferenceEngine, config)
    compiled = compiled_engine.run(addresses, policy, seed=SEED)
    reference = reference_engine.run(addresses, policy, seed=SEED)
    assert np.array_equal(compiled.hits, reference.hits)
    assert compiled.hit_count == reference.hit_count
    assert compiled_engine.sanitizer.checks > 0


@needs_compiled
@settings(max_examples=40, deadline=None)
@given(policy=policies, config=geometries, chunked=chunked_traces())
def test_compiled_stream_matches_python_oneshot(policy, config, chunked):
    addresses, chunks = chunked
    oneshot = _sanitized(BatchedEngine, config).run(addresses, policy, seed=SEED)
    compiled_engine = _sanitized_compiled(BatchedEngine, config)
    streamed = compiled_engine.simulate_stream(chunks, policy, seed=SEED)
    assert np.array_equal(streamed.hits, oneshot.hits)
    assert streamed.policy_stats == oneshot.policy_stats
    assert compiled_engine.sanitizer.checks > 0


@needs_compiled
@settings(max_examples=25, deadline=None)
@given(policy=policies, chunked=chunked_traces())
def test_hierarchy_compiled_matches_python(policy, chunked):
    addresses, chunks = chunked
    config = HierarchyConfig(l1=CacheConfig(num_sets=2, ways=1),
                             l2=CacheConfig(num_sets=4, ways=2))
    oneshot = _sanitized(BatchedHierarchyEngine, config).run(
        addresses, policy, seed=SEED)
    compiled = _sanitized_compiled(BatchedHierarchyEngine, config).run(
        addresses, policy, seed=SEED)
    streamed = _sanitized_compiled(BatchedHierarchyEngine, config).simulate_stream(
        chunks, policy, seed=SEED)
    for other in (compiled, streamed):
        assert np.array_equal(other.l1.hits, oneshot.l1.hits)
        assert np.array_equal(other.l2.hits, oneshot.l2.hits)
        assert other.l2.policy_stats == oneshot.l2.policy_stats


# -- multi-core shared L2 --------------------------------------------------

multicore_policies = st.sampled_from([
    PolicySpec("lru"),
    PolicySpec("srrip"),
    PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4}),
    PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4,
                            "hp_budget": "partitioned"}),
])

MC_CONFIG = HierarchyConfig(l1=CacheConfig(num_sets=2, ways=1),
                            l2=CacheConfig(num_sets=4, ways=2))


@st.composite
def multicore_traces(draw, max_len=300):
    """An adversarial shared-L2 workload: a tiny-pool access pattern plus
    a drawn per-access core-id pattern (tiled across the trace), so the
    cores' streams constantly interleave and contend in the same sets.
    Cores may be absent from the pattern — ``num_cores`` is explicit."""
    num_cores = draw(st.integers(min_value=1, max_value=4))
    addresses = draw(traces(max_len=max_len))
    pattern = draw(st.lists(st.integers(0, num_cores - 1),
                            min_size=1, max_size=12))
    core_ids = np.resize(np.array(pattern, dtype=np.int64), len(addresses))
    return num_cores, addresses, core_ids


@st.composite
def chunked_multicore(draw):
    """A multi-core workload plus a random partition of the aligned
    (addresses, core_ids) pair into contiguous chunk tuples."""
    num_cores, addresses, core_ids = draw(multicore_traces())
    n = len(addresses)
    if n > 1:
        cut_count = draw(st.integers(min_value=0, max_value=min(8, n - 1)))
        cuts = sorted(draw(st.sets(st.integers(1, n - 1),
                                   min_size=cut_count, max_size=cut_count)))
    else:
        cuts = []
    bounds = [0, *cuts, n]
    chunks = [(addresses[lo:hi], core_ids[lo:hi])
              for lo, hi in zip(bounds[:-1], bounds[1:])]
    return num_cores, addresses, core_ids, chunks


@settings(max_examples=30, deadline=None)
@given(policy=multicore_policies, mc=multicore_traces())
def test_multicore_batched_matches_reference(policy, mc):
    num_cores, addresses, core_ids = mc
    batched = _sanitized(BatchedHierarchyEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, policy, num_cores=num_cores, seed=SEED)
    reference = _sanitized(HierarchyReferenceEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, policy, num_cores=num_cores, seed=SEED)
    assert np.array_equal(batched.l1.hits, reference.l1.hits)
    assert np.array_equal(batched.l2.hits, reference.l2.hits)
    assert batched.per_core == reference.per_core
    # The naive oracle reports only the shared unique-footprint stat
    # (hierarchy convention); it must agree with the batched engine's.
    assert (batched.l2.policy_stats["unique_l1_miss_lines"]
            == reference.l2.policy_stats["unique_l1_miss_lines"])


@settings(max_examples=30, deadline=None)
@given(policy=multicore_policies, mc=chunked_multicore())
def test_multicore_stream_matches_oneshot(policy, mc):
    num_cores, addresses, core_ids, chunks = mc
    oneshot = _sanitized(BatchedHierarchyEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, policy, num_cores=num_cores, seed=SEED)
    streamed = _sanitized(
        BatchedHierarchyEngine, MC_CONFIG).simulate_stream_multicore(
        chunks, policy, num_cores=num_cores, seed=SEED)
    assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
    assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)
    assert streamed.per_core == oneshot.per_core
    assert streamed.l2.policy_stats == oneshot.l2.policy_stats


@needs_compiled
@settings(max_examples=25, deadline=None)
@given(policy=multicore_policies, mc=chunked_multicore())
def test_multicore_compiled_matches_python(policy, mc):
    num_cores, addresses, core_ids, chunks = mc
    oneshot = _sanitized(BatchedHierarchyEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, policy, num_cores=num_cores, seed=SEED)
    compiled = _sanitized_compiled(
        BatchedHierarchyEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, policy, num_cores=num_cores, seed=SEED)
    streamed = _sanitized_compiled(
        BatchedHierarchyEngine, MC_CONFIG).simulate_stream_multicore(
        chunks, policy, num_cores=num_cores, seed=SEED)
    for other in (compiled, streamed):
        assert np.array_equal(other.l1.hits, oneshot.l1.hits)
        assert np.array_equal(other.l2.hits, oneshot.l2.hits)
        assert other.per_core == oneshot.per_core
        assert other.l2.policy_stats == oneshot.l2.policy_stats


@settings(max_examples=20, deadline=None)
@given(addresses=traces())
def test_partitioned_budget_equals_shared_on_one_core(addresses):
    """With one core the partitioned HP budget degenerates to the whole
    shared budget, so the two modes must be bit-identical — this is what
    lets single-core solo baselines drop the ``hp_budget`` param."""
    core_ids = np.zeros(len(addresses), dtype=np.int64)
    shared = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4})
    partitioned = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4,
                                          "hp_budget": "partitioned"})
    a = _sanitized(BatchedHierarchyEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, shared, num_cores=1, seed=SEED)
    b = _sanitized(BatchedHierarchyEngine, MC_CONFIG).run_multicore(
        addresses, core_ids, partitioned, num_cores=1, seed=SEED)
    assert np.array_equal(a.l2.hits, b.l2.hits)
    assert a.per_core == b.per_core
    # Partitioned runs annotate two extra stat keys; everything the two
    # modes share must be identical, and the one quota holds everything.
    b_stats = dict(b.l2.policy_stats)
    assert b_stats.pop("hp_budget") == "partitioned"
    by_core = b_stats.pop("hp_lines_final_by_core")
    assert sum(by_core) == b_stats["hp_lines_final"]
    assert a.l2.policy_stats == b_stats
