"""Serving layer: admission, single-flight, worker pool, wire surface.

Failure paths get explicit coverage: a client that disconnects
mid-stream, a worker process that dies abruptly (the pool is rebuilt
and an error row returned), admission past the queue watermark (429),
and duplicate-submission accounting (telemetry counters prove N
identical requests ran exactly one simulation).

Injected worker functions are module-level so they pickle under the
``fork`` start method the service's ProcessPoolExecutor uses.
"""

import asyncio
import json
import os
import time

import pytest

from emissary.api import PolicySpec, SimRequest, simulate
from emissary.engine import CacheConfig
from emissary.hierarchy import HierarchyConfig
from emissary.obs import parse_prometheus, sample_value
from emissary.obs.tracing import SERVER_TRACK_PID, derive_trace_id
from emissary.results_cache import BudgetedResultsCache, config_key
from emissary.serve.__main__ import _stream_simulate
from emissary.serve.loadgen import build_request_mix, fetch_json, fetch_text
from emissary.serve.server import start_server
from emissary.serve.service import (DEFAULT_RETRY_AFTER_S, MAX_RETRY_AFTER_S,
                                    QueueFullError, SimService)
from emissary.traces import TraceSpec

TRACE = TraceSpec("loop", 2_000, 1, {"footprint_lines": 100})


def make_request(seed: int = 0, hierarchy: bool = False) -> SimRequest:
    config = HierarchyConfig() if hierarchy \
        else CacheConfig(num_sets=16, ways=4)
    return SimRequest(TRACE, PolicySpec("lru"), config, seed=seed)


# -- injectable worker functions (module-level: picklable under fork) ----

def fake_worker(request_dict, progress_path, chunk_bytes):
    return {"hit_rate": 0.5, "seed": request_dict.get("seed", 0)}


def slow_worker(request_dict, progress_path, chunk_bytes):
    time.sleep(0.6)
    return {"hit_rate": 0.5, "seed": request_dict.get("seed", 0)}


def crashing_worker(request_dict, progress_path, chunk_bytes):
    if request_dict.get("seed") == 666:
        os._exit(17)  # abrupt death: no exception, no cleanup
    return {"hit_rate": 0.5, "seed": request_dict.get("seed", 0)}


def failing_worker(request_dict, progress_path, chunk_bytes):
    raise RuntimeError("synthetic simulation failure")


def run(coro, timeout=60.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(bounded())


class TestBudgetedResultsCache:
    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="budget_bytes"):
            BudgetedResultsCache(tmp_path, budget_bytes=0)

    def test_unbounded_without_budget(self, tmp_path):
        cache = BudgetedResultsCache(tmp_path)
        for seed in range(10):
            cache.store(make_request(seed), {"row": seed})
        assert cache.evictions == 0

    def test_evicts_to_budget(self, tmp_path):
        cache = BudgetedResultsCache(tmp_path, budget_bytes=1)  # min budget
        first, second = make_request(1), make_request(2)
        cache.store(first, {"row": 1})
        cache.store(second, {"row": 2})
        # The just-stored entry is never evicted; the older one goes.
        assert cache.load(second) == {"row": 2}
        assert cache.load(first) is None
        assert cache.evictions == 1

    def test_lru_touch_protects_hot_entries(self, tmp_path):
        requests = [make_request(seed) for seed in range(3)]
        cache = BudgetedResultsCache(tmp_path)
        for i, request in enumerate(requests):
            cache.store(request, {"row": i})
        entry_bytes = cache.total_bytes() // 3
        cache.budget_bytes = entry_bytes * 2 + entry_bytes // 2  # fits 2
        time.sleep(0.02)  # ensure the touch moves mtime forward
        assert cache.load(requests[0]) is not None  # touch: now the hottest
        cache.store(make_request(99), {"row": 99})
        assert cache.load(requests[0]) is not None  # survived (recently used)
        assert cache.evictions >= 1
        assert cache.total_bytes() <= cache.budget_bytes

    def test_eviction_counts_in_telemetry(self, tmp_path):
        from emissary.telemetry import Telemetry

        telemetry = Telemetry()
        cache = BudgetedResultsCache(tmp_path, budget_bytes=1,
                                     telemetry=telemetry)
        cache.store(make_request(1), {"row": 1})
        cache.store(make_request(2), {"row": 2})
        assert telemetry.counters["serve.cache_evictions"] == 1
        assert telemetry.counters["serve.cache_evicted_bytes"] > 0


class TestSingleFlight:
    def test_n_identical_requests_one_simulation(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=slow_worker)
            try:
                payload = make_request(seed=7).to_dict()
                admissions = [service.admit(payload) for _ in range(10)]
                outcomes = await asyncio.gather(
                    *[a.future for a in admissions])
            finally:
                await service.aclose()
            return service, admissions, outcomes

        service, admissions, outcomes = run(scenario())
        assert [a.status for a in admissions] == ["accepted"] + ["joined"] * 9
        assert len({id(a.future) for a in admissions}) == 1
        assert all(o["ok"] and o["result"]["seed"] == 7 for o in outcomes)
        counters = service.telemetry.counters
        assert counters["serve.requests"] == 10
        assert counters["serve.simulations"] == 1
        assert counters["serve.dedupe_joined"] == 9

    def test_completed_request_serves_from_cache(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=fake_worker)
            try:
                payload = make_request(seed=3).to_dict()
                first = service.admit(payload)
                await first.future
                second = service.admit(payload)
            finally:
                await service.aclose()
            return first, second, service

        first, second, service = run(scenario())
        assert first.status == "accepted"
        assert second.status == "cached"
        assert second.result == {"hit_rate": 0.5, "seed": 3}
        assert service.telemetry.counters["serve.cache_hits"] == 1

    def test_queue_full_rejects_with_429_semantics(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=slow_worker,
                                 queue_watermark=2)
            try:
                first = service.admit(make_request(seed=1).to_dict())
                second = service.admit(make_request(seed=2).to_dict())
                with pytest.raises(QueueFullError) as excinfo:
                    service.admit(make_request(seed=3).to_dict())
                # Joining an in-flight key is admission-exempt: it adds
                # no work, so it succeeds even at the watermark.
                joined = service.admit(make_request(seed=1).to_dict())
                await asyncio.gather(first.future, second.future)
            finally:
                await service.aclose()
            return service, excinfo.value, joined

        service, exc, joined = run(scenario())
        assert exc.retry_after_s >= 1
        assert joined.status == "joined"
        assert service.telemetry.counters["serve.rejected"] == 1

    def test_retry_after_derived_from_queue_depth_and_p50(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=slow_worker,
                                 queue_watermark=2)
            try:
                # Cold start: nothing observed yet -> static default.
                cold = service.retry_after_s(10)
                # Median service time 0.5s (the 9.0 outlier must not
                # drag the hint up the way a mean would).
                for latency in (0.4, 0.5, 0.6, 9.0):
                    service.observe_latency(latency)
                shallow = service.retry_after_s(1)      # ceil(0.5) = 1
                deep = service.retry_after_s(8)         # ceil(4.0) = 4
                clamped = service.retry_after_s(10_000)  # hits the ceiling

                # The derived hint rides the raised QueueFullError.
                first = service.admit(make_request(seed=1).to_dict())
                second = service.admit(make_request(seed=2).to_dict())
                with pytest.raises(QueueFullError) as excinfo:
                    service.admit(make_request(seed=3).to_dict())
                await asyncio.gather(first.future, second.future)
            finally:
                await service.aclose()
            return cold, shallow, deep, clamped, excinfo.value

        cold, shallow, deep, clamped, exc = run(scenario())
        assert cold == DEFAULT_RETRY_AFTER_S
        assert shallow == 1
        assert deep == 4
        assert clamped == MAX_RETRY_AFTER_S
        assert exc.retry_after_s == 1  # depth 2 x 0.5s p50, rounded up

    def test_worker_crash_returns_error_row_and_pool_survives(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=crashing_worker)
            try:
                crash = service.admit(make_request(seed=666).to_dict())
                crash_outcome = await crash.future
                # The pool was rebuilt: the next simulation succeeds.
                ok = service.admit(make_request(seed=1).to_dict())
                ok_outcome = await ok.future
            finally:
                await service.aclose()
            return service, crash_outcome, ok_outcome

        service, crash_outcome, ok_outcome = run(scenario())
        assert crash_outcome == {"ok": False,
                                 "error": crash_outcome["error"]}
        assert "died" in crash_outcome["error"]
        assert ok_outcome["ok"] and ok_outcome["result"]["seed"] == 1
        counters = service.telemetry.counters
        assert counters["serve.worker_crashes"] == 1
        assert counters["serve.errors"] == 1

    def test_clean_worker_exception_is_error_row_without_rebuild(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=failing_worker)
            try:
                admission = service.admit(make_request(seed=1).to_dict())
                outcome = await admission.future
            finally:
                await service.aclose()
            return service, outcome

        service, outcome = run(scenario())
        assert not outcome["ok"]
        assert "synthetic simulation failure" in outcome["error"]
        counters = service.telemetry.counters
        assert counters["serve.errors"] == 1
        assert "serve.worker_crashes" not in counters

    def test_malformed_payload_raises_before_any_work(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path, worker_fn=fake_worker)
            try:
                payload = make_request().to_dict()
                payload["injected"] = 1
                with pytest.raises(ValueError, match="unknown wire keys"):
                    service.admit(payload)
            finally:
                await service.aclose()
            return service

        service = run(scenario())
        assert "serve.simulations" not in service.telemetry.counters


class TestHttpServer:
    """End-to-end over a real socket with the real simulation worker."""

    def test_simulate_matches_library_and_caches(self, tmp_path):
        request = make_request(seed=5)

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 chunk_bytes=4096)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                status, first = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST",
                    request.to_dict())
                status2, again = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST",
                    request.to_dict())
                _, stats = await fetch_json("127.0.0.1", port, "/v1/stats")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return status, first, status2, again, stats

        status, first, status2, again, stats = run(scenario())
        assert status == 200 and status2 == 200
        assert first["status"] == "accepted"
        assert again["status"] == "cached"
        assert first["key"] == again["key"] == config_key(request)
        direct = simulate(request)
        assert first["result"]["hit_count"] == direct.hit_count
        assert again["result"] == first["result"]
        assert stats["simulations"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["telemetry"]["counters"]["serve.requests"] == 2

    def test_streamed_response_carries_progress_and_result(self, tmp_path):
        request = make_request(seed=6, hierarchy=True)

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 chunk_bytes=2048)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                events = await _stream_simulate("127.0.0.1", port,
                                                request.to_dict())
                replay = await _stream_simulate("127.0.0.1", port,
                                                request.to_dict())
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return events, replay

        events, replay = run(scenario())
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted" and kinds[-1] == "result"
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, f"no progress ticks in {kinds}"
        assert progress[-1]["done"] == TRACE.n
        direct = simulate(request)
        assert events[-1]["result"]["l2_mpki"] == \
            pytest.approx(direct.to_dict()["l2_mpki"])
        assert replay[-1]["status"] == "cached"

    def test_http_errors(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=fake_worker)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            results = {}
            try:
                results["not_json"] = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST", "not a dict")
                bad = make_request().to_dict()
                bad["injected"] = 1
                results["unknown_key"] = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST", bad)
                results["no_route"] = await fetch_json(
                    "127.0.0.1", port, "/v1/nope")
                results["bad_method"] = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return results

        results = run(scenario())
        assert results["not_json"][0] == 400
        assert results["unknown_key"][0] == 400
        assert "unknown wire keys" in results["unknown_key"][1]["error"]
        assert results["no_route"][0] == 404
        assert results["bad_method"][0] == 405

    def test_queue_full_gets_429_with_retry_after(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=slow_worker, queue_watermark=1)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1",
                                                               port)
                async def post(seed):
                    body = json.dumps(make_request(seed=seed).to_dict()).encode()
                    writer.write(
                        (f"POST /v1/simulate HTTP/1.1\r\nHost: t\r\n"
                         f"Content-Length: {len(body)}\r\n\r\n"
                         ).encode() + body)
                    await writer.drain()
                    header_block = await reader.readuntil(b"\r\n\r\n")
                    status = int(header_block.split(b" ", 2)[1])
                    headers = header_block.decode("latin-1").lower()
                    length = 0
                    for line in headers.split("\r\n"):
                        if line.startswith("content-length:"):
                            length = int(line.split(":")[1])
                    await reader.readexactly(length)
                    return status, headers

                first = asyncio.create_task(post(1))
                await asyncio.sleep(0.1)  # let the first occupy the queue
                # second distinct request on a fresh connection -> 429
                status2, headers2 = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST",
                    make_request(seed=2).to_dict()), None
                status1, _ = await first
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return status1, status2

        status1, status2 = run(scenario())
        assert status1 == 200
        assert status2[0] == 429
        assert "retry" in json.dumps(status2[1]).lower()

    def test_client_disconnect_mid_stream_keeps_simulation_alive(self, tmp_path):
        request = make_request(seed=9)
        key = config_key(request)

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=slow_worker)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1",
                                                               port)
                body = json.dumps(request.to_dict()).encode()
                writer.write(
                    (f"POST /v1/simulate?stream=1 HTTP/1.1\r\nHost: t\r\n"
                     f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
                await writer.drain()
                await reader.readuntil(b"\r\n\r\n")   # response headers
                await reader.readline()               # first chunk size line
                # Hang up abruptly, mid-stream, while the worker is busy.
                writer.close()
                task = service._inflight[key]
                outcome = await asyncio.shield(task)
                # The server keeps serving other clients afterwards.
                status, _ = await fetch_json("127.0.0.1", port, "/v1/healthz")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return outcome, status, service

        outcome, status, service = run(scenario())
        assert outcome["ok"] and outcome["result"]["seed"] == 9
        assert status == 200
        # The disconnected client's simulation still landed in the cache.
        assert service.cache.load(request) == outcome["result"]


class TestObservability:
    """Tracing, metrics, and structured-log surfaces over a live server."""

    def test_trace_propagates_across_process_pool(self, tmp_path):
        """A telemetry=True request produces one merged trace: server
        spans on pid 0 and the worker's real-pid spans under the same
        deterministic trace id."""
        body = make_request(seed=11).to_dict()
        body["telemetry"] = True

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache", obs_seed=42)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                missing = await fetch_json("127.0.0.1", port, "/v1/trace")
                status, _ = await fetch_json("127.0.0.1", port,
                                             "/v1/simulate", "POST", body)
                assert status == 200
                traced = await fetch_json("127.0.0.1", port, "/v1/trace")
                summary = await fetch_json("127.0.0.1", port,
                                           "/v1/trace?summary=1")
                by_id = await fetch_json(
                    "127.0.0.1", port,
                    f"/v1/trace?id={traced[1]['trace_id']}")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return missing, traced, summary, by_id

        missing, (status, entry), (_, summary), (_, by_id) = run(scenario())
        assert missing[0] == 404  # nothing traced before the request
        assert status == 200
        # The id is derived from (obs_seed, counter): replayable, no clock.
        assert entry["trace_id"] == derive_trace_id(42, 0)
        assert entry["trace"]["otherData"]["trace_id"] == entry["trace_id"]
        spans = [e for e in entry["trace"]["traceEvents"]
                 if e.get("ph") == "X"]
        server_names = {e["name"] for e in spans
                        if e["pid"] == SERVER_TRACK_PID}
        assert "serve.request" in server_names
        assert "serve.admit" in server_names
        worker_pids = {e["pid"] for e in spans
                       if e["pid"] != SERVER_TRACK_PID}
        assert len(worker_pids) == 1  # one worker process track
        assert entry["worker_pid"] in worker_pids
        worker_names = {e["name"] for e in spans
                        if e["pid"] == entry["worker_pid"]}
        assert any("kernel" in n or "run" in n or "stream" in n
                   or "decode" in n for n in worker_names), worker_names
        assert summary["count"] == 1
        assert "trace" not in summary["traces"][0]
        assert by_id["trace_id"] == entry["trace_id"]

    def test_untraced_requests_produce_no_trace(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=fake_worker)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                status, _ = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST",
                    make_request(seed=1).to_dict())
                assert status == 200
                trace = await fetch_json("127.0.0.1", port, "/v1/trace")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return trace, service.stats()

        trace, stats = run(scenario())
        assert trace[0] == 404
        assert stats["obs"]["enabled"] is True
        assert stats["obs"]["traces"] == 0

    def test_metrics_exposition_parses_and_matches_stats(self, tmp_path):
        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=fake_worker)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                for seed in (1, 2):
                    await fetch_json("127.0.0.1", port, "/v1/simulate",
                                     "POST", make_request(seed=seed).to_dict())
                status, text = await fetch_text("127.0.0.1", port,
                                                "/v1/metrics")
                _, stats = await fetch_json("127.0.0.1", port, "/v1/stats")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return status, text, stats

        status, text, stats = run(scenario())
        assert status == 200
        families = parse_prometheus(text)  # the strict golden parser
        assert sample_value(families, "emissary_serve_requests_total") == \
            stats["requests"] == 2
        assert sample_value(families, "emissary_serve_latency_us_count") == 2
        assert sample_value(families, "emissary_serve_latency_us_bucket",
                            {"le": "+Inf"}) == 2
        assert sample_value(families, "emissary_serve_queue_depth") == 0
        assert sample_value(families,
                            "emissary_serve_queue_watermark") is not None

    def test_logz_correlates_events_with_trace_ids(self, tmp_path):
        body = make_request(seed=3).to_dict()
        body["telemetry"] = True

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=fake_worker)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                await fetch_json("127.0.0.1", port, "/v1/simulate", "POST",
                                 body)
                _, trace = await fetch_json("127.0.0.1", port, "/v1/trace")
                _, logz = await fetch_json("127.0.0.1", port, "/v1/logz")
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return trace, logz

        trace, logz = run(scenario())
        assert logz["enabled"] is True
        completions = [r for r in logz["records"]
                       if r.get("event") == "request"]
        assert completions, logz["records"]
        assert completions[-1]["trace_id"] == trace["trace_id"]
        assert completions[-1]["request_key"] == trace["key"]

    def test_results_bit_identical_with_obs_on_and_off(self, tmp_path):
        request = make_request(seed=21)

        async def one_pass(obs, cache_dir):
            service = SimService(cache_dir=cache_dir, obs=obs)
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                status, payload = await fetch_json(
                    "127.0.0.1", port, "/v1/simulate", "POST",
                    request.to_dict())
                assert status == 200
                trace = await fetch_json("127.0.0.1", port, "/v1/trace")
                stats = service.stats()
            finally:
                server.close()
                await server.wait_closed()
                await service.aclose()
            return payload, trace, stats

        async def scenario():
            on = await one_pass(True, tmp_path / "on")
            off = await one_pass(False, tmp_path / "off")
            return on, off

        (res_on, _, stats_on), (res_off, trace_off, stats_off) = \
            run(scenario())
        wall_clock = ("elapsed_s", "accesses_per_s")
        outcome_on = {k: v for k, v in res_on["result"].items()
                      if k not in wall_clock}
        outcome_off = {k: v for k, v in res_off["result"].items()
                       if k not in wall_clock}
        assert outcome_on == outcome_off  # bit-identical simulation outcome
        assert trace_off[0] == 404  # obs off records nothing
        assert stats_off["obs"]["enabled"] is False
        assert stats_off["obs"]["log_records"] == 0
        assert stats_on["obs"]["enabled"] is True

    def test_spool_cleanup_is_tracked_and_fires(self, tmp_path):
        """The grace-period spool unlink is a *tracked* timer: it fires
        after ``spool_grace_s`` even when no streaming relay is reading,
        and ``aclose`` drains any timer still pending."""
        request = make_request(seed=4)
        key = config_key(request)

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=fake_worker,
                                 spool_dir=tmp_path / "spool",
                                 spool_grace_s=0.05)
            spool = service.progress_path(key)
            try:
                admission = service.admit(request.to_dict())
                await admission.future
                assert key in service._spool_timers  # tracked, not fired
                # Stand-in for the worker's final tick: written before the
                # grace timer fires, visible to late-polling relays.
                spool.write_text('{"done": 1}')  # emi: ignore[EMI102]
                await asyncio.sleep(0.2)
                fired = not spool.exists() and key not in service._spool_timers

                # Second pass: aclose before the timer fires must still
                # remove the spool (the loop dies with the timer pending).
                spool.write_text('{"done": 2}')  # emi: ignore[EMI102]
                service._schedule_spool_cleanup(asyncio.get_running_loop(),
                                                key, spool)
            finally:
                await service.aclose()
            return fired, spool.exists(), dict(service._spool_timers)

        fired, exists_after_close, timers = run(scenario())
        assert fired
        assert not exists_after_close
        assert timers == {}

    def test_orphan_spools_purged_at_init(self, tmp_path):
        spool_dir = tmp_path / "spool"
        spool_dir.mkdir()
        orphan = spool_dir / "deadbeef.progress.json"
        orphan.write_text('{"done": 10}')
        (spool_dir / "unrelated.txt").write_text("keep me")

        async def scenario():
            service = SimService(cache_dir=tmp_path / "cache",
                                 worker_fn=fake_worker, spool_dir=spool_dir)
            try:
                records = service.log_ring.records()
            finally:
                await service.aclose()
            return records

        records = run(scenario())
        assert not orphan.exists()
        assert (spool_dir / "unrelated.txt").exists()
        evictions = [r for r in records if r.get("event") == "spool_evicted"]
        assert any("deadbeef" in r["message"] for r in evictions)


class TestLoadgenPieces:
    def test_request_mix_is_valid_and_deterministic(self):
        mix_a = build_request_mix(16)
        mix_b = build_request_mix(16)
        assert mix_a == mix_b
        assert len({config_key(d) for d in mix_a}) == 16
        decoded = [SimRequest.from_dict(d) for d in mix_a]
        assert any(r.is_hierarchy for r in decoded)
        assert any(not r.is_hierarchy for r in decoded)

    def test_percentile_edges(self):
        from emissary.serve.loadgen import _percentile

        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], 0.99) == 3.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == pytest.approx(50.0, abs=1.0)
        assert _percentile(values, 0.99) == pytest.approx(99.0, abs=1.0)
