"""Tests for the on-disk results cache and its integrity guard."""

import json
import multiprocessing
import threading

from emissary.results_cache import (
    SCHEMA_VERSION,
    BudgetedResultsCache,
    ResultsCache,
    config_key,
    strip_advisory,
)


CONFIG = {"policy": "lru", "trace": {"kind": "loop", "n": 100}, "seed": 1}
RESULT = {"hit_rate": 0.5, "mpki": 10.0}


def test_roundtrip(tmp_path):
    cache = ResultsCache(tmp_path / "rc")
    assert cache.load(CONFIG) is None
    cache.store(CONFIG, RESULT)
    assert cache.load(CONFIG) == RESULT


def test_key_is_content_addressed(tmp_path):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    # Key order must not matter; values must.
    reordered = {"seed": 1, "trace": {"n": 100, "kind": "loop"}, "policy": "lru"}
    assert cache.load(reordered) == RESULT
    assert cache.load({**CONFIG, "seed": 2}) is None


def _entry_path(cache_dir):
    return cache_dir / f"{config_key(CONFIG)}.json"


def test_corrupt_json_skipped_with_warning(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    _entry_path(tmp_path).write_text("{ not json !")
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None
    assert any("results cache" in rec.message for rec in caplog.records)


def test_missing_field_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    del entry["checksum"]
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_tampered_result_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    entry["result"]["hit_rate"] = 0.99  # checksum no longer matches
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None
    assert any("checksum" in rec.message for rec in caplog.records)


def test_key_config_binding_enforced(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    entry["config"]["seed"] = 999  # config no longer hashes to the key
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_wrong_schema_version_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    entry["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_non_object_entry_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    _entry_path(tmp_path).write_text(json.dumps([1, 2, 3]))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_recompute_after_corruption_heals_cache(tmp_path):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    _entry_path(tmp_path).write_text("garbage")
    assert cache.load(CONFIG) is None
    cache.store(CONFIG, RESULT)  # sweep recomputes and overwrites
    assert cache.load(CONFIG) == RESULT


def test_concurrent_stores_never_publish_torn_entries(tmp_path):
    """Regression: writers used to share one ``.<key>.tmp`` staging path,
    so two threads storing the same key could interleave writes and
    rename a torn half-written entry into place.  With per-writer unique
    staging names every published entry is one writer's complete JSON."""
    cache = ResultsCache(tmp_path)
    threads_n, rounds = 8, 25
    errors = []

    def writer(worker: int) -> None:
        try:
            for round_no in range(rounds):
                # Same key every time; payload differs per writer/round so a
                # torn mix of two writers cannot checksum-validate.
                cache.store(CONFIG, {**RESULT, "worker": worker,
                                     "round": round_no})
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # The surviving entry must be exactly one writer's intact payload.
    loaded = cache.load(CONFIG)
    assert loaded is not None
    assert loaded["round"] == rounds - 1
    assert loaded["worker"] in range(threads_n)
    # No staging litter left behind.
    assert not list(tmp_path.glob("*.tmp"))
    assert not list(tmp_path.glob(".*.tmp"))


def _stress_worker(cache_dir: str, worker: int, rounds: int,
                   n_keys: int, queue) -> None:
    """Hammer one shared budgeted cache dir: interleaved stores (which
    evict) and loads over a small rotating key set.  Every load must be
    either a miss (None) or a *complete, intact* result — the integrity
    guard turns any torn/corrupt read into a warned miss, and a torn
    read slipping through validation would surface as a wrong payload
    here.  Runs in a separate process, so must be module-level."""
    try:
        cache = BudgetedResultsCache(cache_dir, budget_bytes=2_000)
        bad = []
        for round_no in range(rounds):
            key_no = (worker + round_no) % n_keys
            config = {"policy": "lru", "key_no": key_no}
            payload = {"hit_rate": 0.5, "worker": worker, "round": round_no,
                       "pad": "x" * 200}  # big enough to force evictions
            cache.store(config, payload)
            loaded = cache.load({"policy": "lru",
                                 "key_no": round_no % n_keys})
            if loaded is not None and (
                    set(loaded) != {"hit_rate", "worker", "round", "pad"}
                    or loaded["pad"] != "x" * 200):
                bad.append(loaded)
        queue.put(("ok", worker, bad))
    except Exception as exc:  # pragma: no cover - failure path
        queue.put(("error", worker, repr(exc)))


def test_multiprocess_store_load_evict_stress(tmp_path):
    """Several processes concurrently store, load, and LRU-evict in one
    budgeted cache directory.  The TOCTOU audit promises: no crashes
    (vanished files are ordinary misses, lost eviction races are
    skipped), and no torn reads (every successful load is one writer's
    complete entry)."""
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    procs_n, rounds, n_keys = 4, 30, 6
    procs = [ctx.Process(target=_stress_worker,
                         args=(str(tmp_path), i, rounds, n_keys, queue))
             for i in range(procs_n)]
    for p in procs:
        p.start()
    outcomes = [queue.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    errors = [o for o in outcomes if o[0] == "error"]
    assert not errors, errors
    torn = [o[2] for o in outcomes if o[2]]
    assert not torn, torn
    # The survivors must still be a valid cache under budget: everything
    # left on disk loads cleanly, and no staging litter remains.
    cache = BudgetedResultsCache(str(tmp_path), budget_bytes=2_000)
    for key_no in range(n_keys):
        loaded = cache.load({"policy": "lru", "key_no": key_no})
        assert loaded is None or loaded["pad"] == "x" * 200
    assert not list(tmp_path.glob("*.tmp"))
    assert not list(tmp_path.glob(".*.tmp"))


def test_advisory_fields_excluded_from_key():
    base = {"trace": {"kind": "file", "n": 10,
                      "params": {"sha256": "a" * 64, "_path": "/here/t.bin"}}}
    moved = {"trace": {"kind": "file", "n": 10,
                       "params": {"sha256": "a" * 64, "_path": "/there/t.bin"}}}
    edited = {"trace": {"kind": "file", "n": 10,
                        "params": {"sha256": "b" * 64, "_path": "/here/t.bin"}}}
    assert config_key(base) == config_key(moved)  # location is advisory
    assert config_key(base) != config_key(edited)  # content is identity


def test_strip_advisory_recurses_and_preserves_rest():
    obj = {"_top": 1, "keep": {"_inner": 2, "x": [{"_deep": 3, "y": 4}]}}
    assert strip_advisory(obj) == {"keep": {"x": [{"y": 4}]}}


def test_advisory_fields_survive_roundtrip_storage(tmp_path):
    """The advisory field is stripped from the *key*, not from the stored
    config, and a spec with a different advisory value still loads."""
    cache = ResultsCache(tmp_path)
    config = {"policy": "lru", "_note": "scratch-location"}
    cache.store(config, RESULT)
    assert cache.load({"policy": "lru", "_note": "other-location"}) == RESULT
    assert cache.load({"policy": "lru"}) == RESULT
