"""Tests for the on-disk results cache and its integrity guard."""

import json

from emissary.results_cache import SCHEMA_VERSION, ResultsCache, config_key


CONFIG = {"policy": "lru", "trace": {"kind": "loop", "n": 100}, "seed": 1}
RESULT = {"hit_rate": 0.5, "mpki": 10.0}


def test_roundtrip(tmp_path):
    cache = ResultsCache(tmp_path / "rc")
    assert cache.load(CONFIG) is None
    cache.store(CONFIG, RESULT)
    assert cache.load(CONFIG) == RESULT


def test_key_is_content_addressed(tmp_path):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    # Key order must not matter; values must.
    reordered = {"seed": 1, "trace": {"n": 100, "kind": "loop"}, "policy": "lru"}
    assert cache.load(reordered) == RESULT
    assert cache.load({**CONFIG, "seed": 2}) is None


def _entry_path(cache_dir):
    return cache_dir / f"{config_key(CONFIG)}.json"


def test_corrupt_json_skipped_with_warning(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    _entry_path(tmp_path).write_text("{ not json !")
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None
    assert any("results cache" in rec.message for rec in caplog.records)


def test_missing_field_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    del entry["checksum"]
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_tampered_result_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    entry["result"]["hit_rate"] = 0.99  # checksum no longer matches
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None
    assert any("checksum" in rec.message for rec in caplog.records)


def test_key_config_binding_enforced(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    entry["config"]["seed"] = 999  # config no longer hashes to the key
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_wrong_schema_version_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    path = cache.store(CONFIG, RESULT)
    entry = json.loads(path.read_text())
    entry["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_non_object_entry_skipped(tmp_path, caplog):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    _entry_path(tmp_path).write_text(json.dumps([1, 2, 3]))
    with caplog.at_level("WARNING"):
        assert cache.load(CONFIG) is None


def test_recompute_after_corruption_heals_cache(tmp_path):
    cache = ResultsCache(tmp_path)
    cache.store(CONFIG, RESULT)
    _entry_path(tmp_path).write_text("garbage")
    assert cache.load(CONFIG) is None
    cache.store(CONFIG, RESULT)  # sweep recomputes and overwrites
    assert cache.load(CONFIG) == RESULT
