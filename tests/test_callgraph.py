"""Unit tests for the project call graph (emissary.analysis.callgraph).

The graph's one promise is conservative over-approximation: every call
chain the runtime can take is present (dynamic dispatch widens to all
candidates), cycles terminate, and unresolvable calls are preserved as
external edges rather than dropped.
"""

from __future__ import annotations

import textwrap

import pytest

from emissary.analysis.callgraph import (
    COMMON_METHOD_NAMES,
    build_callgraph,
    CallGraph,
)


def make_pkg(tmp_path, files: dict[str, str]) -> str:
    """Lay out a package named ``pkg`` and return its root path."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if not (path.parent / "__init__.py").exists():
            (path.parent / "__init__.py").write_text("")
        path.write_text(textwrap.dedent(source))
    return str(root)


def build(tmp_path, files: dict[str, str]) -> CallGraph:
    return build_callgraph(make_pkg(tmp_path, files), package="pkg")


def fn_targets(graph: CallGraph, qual: str) -> set[str]:
    info = graph.function(qual)
    assert info is not None, f"{qual} not in graph"
    return {e.target for e in info.edges if e.kind == "fn"}


def ext_targets(graph: CallGraph, qual: str) -> set[str]:
    info = graph.function(qual)
    assert info is not None, f"{qual} not in graph"
    return {e.target for e in info.edges if e.kind == "ext"}


def test_direct_and_imported_calls_resolve(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            from pkg.b import helper

            def top():
                helper()
                local()

            def local():
                pass
        """,
        "b.py": """
            def helper():
                pass
        """,
    })
    assert fn_targets(graph, "pkg.a:top") == {"pkg.b:helper", "pkg.a:local"}


def test_module_alias_import_resolves(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            import pkg.b
            from pkg import c

            def top():
                pkg.b.helper()
                c.other()
        """,
        "b.py": "def helper():\n    pass\n",
        "c.py": "def other():\n    pass\n",
    })
    assert fn_targets(graph, "pkg.a:top") == {"pkg.b:helper", "pkg.c:other"}


def test_self_dispatch_resolves_within_hierarchy(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            class Base:
                def hook(self):
                    pass

                def run(self):
                    self.hook()

            class Child(Base):
                def hook(self):
                    pass
        """,
    })
    # Conservative: self.hook() from Base.run may land on any override
    # in the hierarchy.
    assert fn_targets(graph, "pkg.a:Base.run") == {
        "pkg.a:Base.hook", "pkg.a:Child.hook"}


def test_unknown_receiver_widens_to_all_same_named_methods(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            class One:
                def dispatch(self):
                    pass

            class Two:
                def dispatch(self):
                    pass

            def caller(obj):
                obj.dispatch()
        """,
    })
    # Dynamic-dispatch conservatism: receiver type unknown -> every
    # project method of that name is a candidate.
    assert fn_targets(graph, "pkg.a:caller") == {
        "pkg.a:One.dispatch", "pkg.a:Two.dispatch"}


def test_common_container_names_are_not_widened(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            class Registry:
                def get(self, key):
                    pass

            def caller(d):
                d.get("x")
        """,
    })
    assert "get" in COMMON_METHOD_NAMES
    # d.get() must NOT link to Registry.get; it stays an external edge.
    assert fn_targets(graph, "pkg.a:caller") == set()
    assert "d.get" in ext_targets(graph, "pkg.a:caller")


def test_cycles_terminate_and_stay_reachable(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            def ping():
                pong()

            def pong():
                ping()
                tail()

            def tail():
                pass
        """,
    })
    reach = graph.reachable(["pkg.a:ping"])
    assert set(reach.functions) == {"pkg.a:ping", "pkg.a:pong", "pkg.a:tail"}
    # Shortest path back to the root is recorded for diagnostics.
    assert reach.functions["pkg.a:tail"] == (
        "pkg.a:ping", "pkg.a:pong", "pkg.a:tail")


def test_externals_carry_call_text_and_site(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            import time

            def top():
                mid()

            def mid():
                time.monotonic()
        """,
    })
    reach = graph.reachable(["pkg.a:top"])
    chain, line = reach.externals["time.monotonic"]
    assert chain == ("pkg.a:top", "pkg.a:mid")
    assert line == 8


def test_nested_defs_are_reachable_from_definer(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            def outer():
                def inner():
                    leaf()
                return inner

            def leaf():
                pass
        """,
    })
    reach = graph.reachable(["pkg.a:outer"])
    assert "pkg.a:outer.inner" in reach.functions
    assert "pkg.a:leaf" in reach.functions


def test_instantiation_reaches_init(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            from pkg.b import Thing

            def top():
                Thing()
        """,
        "b.py": """
            class Thing:
                def __init__(self):
                    self.setup()

                def setup(self):
                    pass
        """,
    })
    reach = graph.reachable(["pkg.a:top"])
    assert "pkg.b:Thing.__init__" in reach.functions
    assert "pkg.b:Thing.setup" in reach.functions


def test_async_functions_are_tagged(tmp_path):
    graph = build(tmp_path, {
        "a.py": """
            async def handler():
                pass

            def plain():
                pass
        """,
    })
    assert graph.function("pkg.a:handler").is_async
    assert not graph.function("pkg.a:plain").is_async


def test_syntax_error_files_are_skipped(tmp_path):
    graph = build(tmp_path, {
        "ok.py": "def fine():\n    pass\n",
        "broken.py": "def broken(:\n",
    })
    assert "pkg.ok:fine" in graph.functions
    assert all(not q.startswith("pkg.broken") for q in graph.functions)


def test_reachable_ignores_unknown_roots(tmp_path):
    graph = build(tmp_path, {"a.py": "def f():\n    pass\n"})
    reach = graph.reachable(["pkg.a:f", "pkg.a:missing"])
    assert set(reach.functions) == {"pkg.a:f"}


@pytest.mark.parametrize("method", sorted(COMMON_METHOD_NAMES)[:3])
def test_common_names_still_resolve_on_known_receiver(tmp_path, method):
    graph = build(tmp_path, {
        "a.py": f"""
            class Box:
                def {method}(self):
                    pass

                def run(self):
                    self.{method}()
        """,
    })
    # Known receiver hierarchy beats the denylist: self-dispatch still
    # resolves even for common names.
    assert fn_targets(graph, "pkg.a:Box.run") == {f"pkg.a:Box.{method}"}
