"""Tests for the run-report CLI (``python -m emissary.report``)."""

import json

import pytest

from emissary.report import (export_chrome_trace, load_sweep_output, main,
                             render_report)
from emissary.sweep import main as sweep_main


def _envelope():
    """A handcrafted schema-2 envelope: one instrumented fresh row, one
    cached row, one error row."""
    telemetry = {
        "schema_version": 1,
        "counters": {"hits": 90, "misses": 10, "fills": 10, "evictions": 4,
                     "dead_on_fill": 1, "evictions_hp": 1, "evictions_lp": 3,
                     "hp_promotions": 2, "hp_demotions": 1, "hp_lines_final": 1,
                     "engine.accesses": 100},
        "histograms": {"line_hits": {"0": 1, "3": 3},
                       "hp_set_occupancy": {"0": 1, "1": 1}},
        "spans": [{"name": "kernel_loop", "ts_us": 10.0, "dur_us": 5.0, "args": {}}],
    }

    def config(policy, params):
        return {"trace": {"kind": "loop", "n": 100, "seed": 0, "params": {}},
                "policy": {"name": policy, "params": params},
                "config": {"num_sets": 2, "ways": 2, "line_size": 64}, "seed": 0}

    def result(**extra):
        return {"policy": "emissary", "n": 100, "hit_count": 90, "miss_count": 10,
                "hit_rate": 0.9, "mpki": 100.0, "elapsed_s": 0.5,
                "accesses_per_s": 200.0, "policy_stats": {}, **extra}

    rows = [
        {"config": config("emissary", {"hp_threshold": 1}),
         "result": result(telemetry=telemetry), "cached": False,
         "worker": {"pid": 41, "elapsed_s": 0.5}},
        {"config": config("lru", {}),
         "result": result(accesses_per_s=None), "cached": True},
        {"config": config("srrip", {}), "error": "ValueError: boom",
         "cached": False, "worker": {"pid": 42, "elapsed_s": 0.1}},
    ]
    return {"schema_version": 2, "generated_by": "emissary.sweep", "seed": 7,
            "elapsed_s": 1.25, "grid_size": 3, "fresh": 1, "cached": 1,
            "errors": 1, "telemetry_enabled": True,
            "cache_stats": {"hits": 1, "misses": 2},
            "workers": {"41": {"configs": 1, "elapsed_s": 0.5},
                        "42": {"configs": 1, "elapsed_s": 0.1}},
            "rows": rows}


def test_render_report_golden_sections():
    report = render_report(_envelope())
    # Header facts.
    assert "seed=7" in report and "errors=1" in report
    assert "results-cache hits=1 misses=2" in report
    # Table: cached row has no throughput (rendered as -), error row shown.
    assert "ERROR: ValueError: boom" in report
    # Per-worker wall time.
    assert "pid 41: 1 configs in 0.50s" in report
    assert "pid 42: 1 configs in 0.10s" in report
    # Telemetry digest: class-split evictions, promotions, occupancy.
    assert "evictions_hp=1" in report and "evictions_lp=3" in report
    assert "hp_promotions=2" in report and "hp_demotions=1" in report
    assert "dead_on_fill=1" in report
    assert "hp_set_occupancy {0:1, 1:1} (n=2, mean=0.50)" in report
    assert "line_hits {0:1, 3:3} (n=4, mean=2.25)" in report
    assert "engine.accesses=100" in report
    # Error section names the failing config.
    assert "[2] loop/srrip single: ValueError: boom" in report


def test_render_report_analysis_digest():
    # v2 envelopes have no analysis digest; the line must be absent.
    assert "analysis:" not in render_report(_envelope())
    # v3 envelopes carry the lint posture stamped by the sweep.
    envelope = _envelope()
    envelope["schema_version"] = 3
    envelope["analysis"] = {"rules": 12, "files_scanned": 48,
                            "suppressions": 9}
    report = render_report(envelope)
    assert "analysis: 12 rules, 48 files scanned, 9 suppression(s)" in report


def test_render_report_stream_digest():
    """Streamed rows (stream_ingest/stream_chunk spans, possibly under
    l1./l2. prefixes) get a one-line ingest-vs-simulate summary."""
    envelope = _envelope()
    telemetry = envelope["rows"][0]["result"]["telemetry"]
    telemetry["spans"] += [
        {"name": "l1.stream_chunk", "ts_us": 0.0, "dur_us": 4000.0, "args": {}},
        {"name": "l2.stream_chunk", "ts_us": 5.0, "dur_us": 2000.0, "args": {}},
        {"name": "stream_ingest", "ts_us": 9.0, "dur_us": 1500.0, "args": {}},
    ]
    report = render_report(envelope)
    assert "stream: 2 chunk spans, ingest 1.5ms, simulate 6.0ms" in report
    # Rows without stream spans don't grow the line.
    assert render_report(_envelope()).count("stream:") == 0


def test_render_report_fairness_digest_golden():
    """Multi-core rows annotated by ``sweep.add_fairness`` render a
    per-core solo-vs-shared MPKI digest with the worst delta and spread."""
    envelope = _envelope()
    row = envelope["rows"][0]
    row["config"]["trace"] = {
        "cores": [{"kind": "loop", "n": 60, "seed": 0, "params": {}},
                  {"kind": "call", "n": 40, "seed": 1, "params": {}}],
        "weights": [2, 1]}
    row["result"]["num_cores"] = 2
    row["result"]["per_core"] = [
        {"core": 0, "n": 60, "l1_misses": 9, "l2_misses": 6, "l2_hits": 3,
         "l1_mpki": 150.0, "l2_mpki": 100.0},
        {"core": 1, "n": 40, "l1_misses": 6, "l2_misses": 2, "l2_hits": 4,
         "l1_mpki": 150.0, "l2_mpki": 50.0}]
    row["fairness"] = {"per_core": [
        {"core": 0, "solo_l2_mpki": 80.0, "shared_l2_mpki": 100.0,
         "delta_l2_mpki": 20.0},
        {"core": 1, "solo_l2_mpki": 55.0, "shared_l2_mpki": 50.0,
         "delta_l2_mpki": -5.0}]}
    row["result"]["telemetry"]["counters"].update(
        {"core0.n": 60, "core0.l1_misses": 9, "core0.l2_misses": 6,
         "core1.n": 40, "core1.l1_misses": 6, "core1.l2_misses": 2})
    report = render_report(envelope)
    # Multi-core configs are labelled by their core mix.
    assert "mix/loop+call" in report
    # The digest itself, line for line.
    assert "fairness (per-core L2 MPKI vs solo baseline):" in report
    assert "core 0: solo 80.00 -> shared 100.00 MPKI (delta +20.00)" in report
    assert "core 1: solo 55.00 -> shared 50.00 MPKI (delta -5.00)" in report
    assert "worst delta +20.00, spread 25.00" in report
    # Per-core telemetry counters render alongside the l1./l2. digests.
    assert "core0: n=60  l1_misses=9  l2_misses=6" in report
    assert "core1: n=40  l1_misses=6  l2_misses=2" in report
    # A fairness baseline error is surfaced, not dropped.
    row["fairness"]["per_core"][1] = {"core": 1, "error": "boom"}
    assert "core 1: baseline error: boom" in render_report(envelope)
    # Rows without fairness annotations don't grow the section.
    assert "fairness" not in render_report(_envelope())


def test_load_sweep_output_accepts_legacy_bare_list(tmp_path):
    rows = _envelope()["rows"][:1]
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(rows))
    envelope = load_sweep_output(str(path))
    assert envelope["schema_version"] == 1
    assert envelope["rows"] == rows
    render_report(envelope)  # renders without the header facts


def test_load_sweep_output_rejects_garbage_and_future_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_sweep_output(str(bad))
    future = tmp_path / "future.json"
    future.write_text(json.dumps({"schema_version": 99, "rows": []}))
    with pytest.raises(ValueError):
        load_sweep_output(str(future))


def test_export_chrome_trace_assigns_tracks():
    trace = export_chrome_trace(_envelope())
    events = trace["traceEvents"]
    assert len(events) == 1  # only the instrumented row has spans
    assert events[0]["pid"] == 41  # worker pid
    assert events[0]["tid"] == 0  # config index


def test_cli_end_to_end_with_sweep_output(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    rc = sweep_main(["--traces", "loop", "--n", "1000", "--policies", "lru,emissary",
                     "--hp-thresholds", "2", "--prob-invs", "8",
                     "--num-sets", "16", "--ways", "4", "--workers", "1",
                     "--cache-dir", str(tmp_path / "rc"), "--telemetry",
                     "--out", str(out)])
    assert rc == 0
    capsys.readouterr()
    trace_out = tmp_path / "trace.json"
    rc = main([str(out), "--trace-out", str(trace_out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "emissary sweep report" in text
    assert "telemetry:" in text and "hp_promotions=" in text
    trace = json.loads(trace_out.read_text())
    names = {e["name"] for e in trace["traceEvents"]}
    assert "kernel_loop" in names


def test_telemetry_overhead_digest_with_serve_arm(tmp_path, capsys):
    """A ``BENCH_telemetry.json`` payload renders the kernel guard rows
    plus the serve-path obs-overhead line and latency percentiles
    derived from the captured ``serve.latency_us`` histogram."""
    payload = {
        "benchmark": "telemetry_overhead",
        "trace": {"kind": "loop", "n": 200000},
        "repeats": 5,
        "max_off_overhead": 0.0123,
        "policies": [
            {"policy": "lru", "off_s": 0.010, "off_control_s": 0.0101,
             "on_s": 0.015, "off_overhead": 0.0123, "on_cost": 0.5},
        ],
        "serve": {
            "clients": 64, "requests_per_client": 16, "distinct_configs": 8,
            "repeats": 3, "off_req_per_s": 2000.0,
            "off_control_req_per_s": 1980.0, "on_req_per_s": 1960.0,
            "off_overhead": 0.0101, "obs_overhead": 0.0204,
            "latency_us_hist": {"1500": 98, "30000": 2},
        },
    }
    path = tmp_path / "BENCH_telemetry.json"
    path.write_text(json.dumps(payload))
    assert main([str(path)]) == 0
    text = capsys.readouterr().out
    assert "telemetry overhead guard" in text
    assert "lru: off 10.00ms, on 15.00ms" in text
    assert "max off-path overhead: +1.23%" in text
    assert "serve path: obs overhead +2.04%" in text
    assert "off 2000 req/s, on 1960 req/s" in text
    assert "serve latency (obs on): p50=1.50ms p99=30.00ms (n=100)" in text


def test_telemetry_overhead_digest_without_serve_arm(tmp_path, capsys):
    payload = {"benchmark": "telemetry_overhead",
               "trace": {"kind": "loop", "n": 1000}, "repeats": 1,
               "max_off_overhead": 0.0, "policies": []}
    path = tmp_path / "kernel_only.json"
    path.write_text(json.dumps(payload))
    assert main([str(path)]) == 0
    text = capsys.readouterr().out
    assert "telemetry overhead guard" in text
    assert "serve path" not in text


def test_cli_reports_unreadable_input(tmp_path, capsys):
    assert main([str(tmp_path / "missing.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_render_report_error_only_rows():
    """An envelope whose rows all errored still renders: table rows carry
    the ERROR cell, the errors section lists each config, and no
    telemetry section appears."""
    envelope = _envelope()
    envelope["rows"] = [r for r in envelope["rows"] if "error" in r]
    report = render_report(envelope)
    assert report.count("ERROR: ValueError: boom") == 1  # table cell
    assert "errors:" in report
    assert "[0] loop/srrip single: ValueError: boom" in report
    assert "telemetry:" not in report


def test_error_rows_flow_from_sweep_to_report(tmp_path, capsys):
    """End to end: a config that raises inside the worker becomes an
    error row in the envelope, the sweep CLI exits 1, and the report
    renders the failure without crashing."""
    from emissary.sweep import build_envelope, run_sweep
    from emissary.api import PolicySpec, SimRequest
    from emissary.engine import CacheConfig
    from emissary.traces import TraceSpec

    trace = TraceSpec("loop", 500, 1, {"footprint_lines": 16})
    config = CacheConfig(num_sets=4, ways=4)
    grid = [
        SimRequest(trace, PolicySpec("lru"), config, 1),
        # hp_threshold must leave at least one LP way: 99 > ways-1 raises.
        SimRequest(trace, PolicySpec("emissary", {"hp_threshold": 99}),
                   config, 1),
    ]
    rows = run_sweep(grid, workers=1, cache_dir=str(tmp_path / "rc"))
    assert "error" in rows[1] and "result" not in rows[1]
    assert "result" in rows[0]

    out = tmp_path / "sweep.json"
    envelope = build_envelope(rows, seed=1, elapsed_s=0.0)
    assert envelope["errors"] == 1
    out.write_text(json.dumps(envelope))
    assert main([str(out)]) == 0
    text = capsys.readouterr().out
    assert "errors=1" in text
    assert "errors:" in text and "emissary" in text
