"""Wire-schema drift gate tests (emissary.analysis.schema_lock).

Round-trip on the real tree, extraction fidelity on synthetic packages,
and the two failure modes the gate exists for: field drift without a
version bump (check fails, update refuses) and honest bumps (update
re-locks, check passes again).
"""

from __future__ import annotations

import json
import textwrap

from emissary.analysis import schema_lock
from emissary.analysis.schema_lock import (
    check,
    diff_lock,
    extract_schemas,
    lock_payload,
    update,
)


def make_pkg(tmp_path, files: dict[str, str], name: str = "pkg") -> str:
    root = tmp_path / name
    root.mkdir()
    (root / "__init__.py").write_text("")
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


WIRE_PKG = {
    "wire.py": """
        VERSION = 3
        KEY = "schema_version"
    """,
    "api.py": """
        from pkg.wire import KEY, VERSION

        class Req:
            _WIRE_KEYS = frozenset({KEY, "trace", "seed"})

            def to_dict(self):
                d = {KEY: VERSION, "trace": self.trace}
                if self.seed is not None:
                    d["seed"] = self.seed
                return d

            @classmethod
            def from_dict(cls, d):
                check_known_keys(d, cls._WIRE_KEYS, "Req")
                return cls(d["trace"], d.get("seed"))

        class WideReq(Req):
            _WIRE_KEYS = Req._WIRE_KEYS | {"extra"}

            def to_dict(self):
                d = super().to_dict()
                d["extra"] = self.extra
                return d

            @classmethod
            def from_dict(cls, d):
                check_known_keys(d, cls._WIRE_KEYS, "WideReq")
                return cls(d["trace"], d.get("seed"), d["extra"])
    """,
    "sweep.py": """
        ENVELOPE_VERSION = 2

        def build(rows):
            return {
                "schema_version": ENVELOPE_VERSION,
                "rows": rows,
            }
    """,
}


def test_extraction_resolves_constants_inheritance_and_envelopes(tmp_path):
    units = extract_schemas(make_pkg(tmp_path, WIRE_PKG), package="pkg")
    req = units["pkg.api:Req"]
    assert req.version == 3
    # Dict-literal keys, conditional d["seed"] assignment, and the
    # KEY constant resolved across modules.
    assert req.to_dict == ("schema_version", "seed", "trace")
    assert req.from_dict == ("schema_version", "seed", "trace")

    wide = units["pkg.api:WideReq"]
    # super().to_dict() inheritance unions the parent fields and adopts
    # the parent's version stamp.
    assert wide.to_dict == ("extra", "schema_version", "seed", "trace")
    assert wide.from_dict == ("extra", "schema_version", "seed", "trace")
    assert wide.version == 3

    envelope = units["pkg.sweep:build"]
    assert envelope.version == 2
    assert envelope.to_dict == ("rows", "schema_version")
    assert envelope.from_dict is None


def test_check_round_trips_after_update(tmp_path):
    root = make_pkg(tmp_path, WIRE_PKG)
    lock = tmp_path / "schemas.lock.json"
    code, _ = update(root=root, lock=lock, package="pkg")
    assert code == 0
    code, messages = check(root=root, lock=lock, package="pkg")
    assert code == 0, messages
    # The lock file itself is stable JSON.
    payload = json.loads(lock.read_text())
    assert payload["lock_version"] == schema_lock.LOCK_FORMAT_VERSION
    assert payload == lock_payload(extract_schemas(root, "pkg"))


def test_missing_lock_fails_check(tmp_path):
    root = make_pkg(tmp_path, WIRE_PKG)
    code, messages = check(root=root, lock=tmp_path / "nope.json",
                           package="pkg")
    assert code == 1
    assert "missing" in messages[0]


def test_field_rename_without_bump_fails_check_and_update(tmp_path):
    root = make_pkg(tmp_path, WIRE_PKG)
    lock = tmp_path / "schemas.lock.json"
    assert update(root=root, lock=lock, package="pkg")[0] == 0

    api = tmp_path / "pkg" / "api.py"
    api.write_text(api.read_text().replace('"trace"', '"trace_spec"'))

    code, messages = check(root=root, lock=lock, package="pkg")
    assert code == 1
    drifted = "\n".join(messages)
    assert "trace_spec" in drifted and "bump" in drifted

    # --update refuses to launder the un-bumped drift into the lock.
    code, messages = update(root=root, lock=lock, package="pkg")
    assert code == 1
    assert any("refusing" in m for m in messages)


def test_bump_then_update_re_locks(tmp_path):
    root = make_pkg(tmp_path, WIRE_PKG)
    lock = tmp_path / "schemas.lock.json"
    assert update(root=root, lock=lock, package="pkg")[0] == 0

    api = tmp_path / "pkg" / "api.py"
    api.write_text(api.read_text().replace('"trace"', '"trace_spec"'))
    wire = tmp_path / "pkg" / "wire.py"
    wire.write_text(wire.read_text().replace("VERSION = 3", "VERSION = 4"))

    code, _ = update(root=root, lock=lock, package="pkg")
    assert code == 0
    code, messages = check(root=root, lock=lock, package="pkg")
    assert code == 0, messages


def test_new_and_vanished_units_are_drift(tmp_path):
    root = make_pkg(tmp_path, WIRE_PKG)
    units = extract_schemas(root, "pkg")
    locked = lock_payload(units)

    trimmed = dict(units)
    trimmed.pop("pkg.sweep:build")
    drifts = diff_lock(locked, trimmed)
    assert [d.kind for d in drifts] == ["removed-unit"]

    drifts = diff_lock({"lock_version": 1, "units": {}}, units)
    assert {d.kind for d in drifts} == {"added-unit"}


def test_repo_lock_is_current():
    """The committed schemas.lock.json matches the tree — the CI gate."""
    code, messages = check()
    assert code == 0, messages
