"""Two-level L1I -> L2 hierarchy: the batched filter+policy pipeline must
be bit-identical to the per-access interleaved oracle — L1 hit vectors,
L2 hit vectors, and per-level counts — for every policy, trace family,
and seed, and EMISSARY's HP decisions must be driven by measured L1I
miss counts."""

import numpy as np
import pytest

from emissary.api import PolicySpec, SimRequest, simulate
from emissary.engine import BatchedEngine, CacheConfig
from emissary.hierarchy import (BatchedHierarchyEngine, HierarchyConfig,
                                HierarchyReferenceEngine, HierarchyResult,
                                MultiCoreHierarchyResult, running_miss_counts,
                                simulate_hierarchy, simulate_multicore)
from emissary.policies import POLICY_NAMES
from emissary.telemetry import Telemetry
from emissary.traces import MAX_CORES, InterleaveSpec, TraceSpec

N = 30_000

POLICY_SPECS = {
    "lru": PolicySpec("lru"),
    "random": PolicySpec("random"),
    "srrip": PolicySpec("srrip"),
    "emissary": PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 8,
                                        "min_l1_misses": 2}),
}

CONFIG = HierarchyConfig(l1=CacheConfig(num_sets=16, ways=4),
                         l2=CacheConfig(num_sets=64, ways=4))


def trace_cases():
    cases = {
        "loop": TraceSpec("loop", N, 3, {"footprint_lines": 500}).generate(),
        "shift": TraceSpec("shift", N, 4, {"footprint_lines": 300}).generate(),
        "call": TraceSpec("call", N, 5).generate(),
    }
    rng = np.random.default_rng(1)
    cases["uniform_random"] = rng.integers(0, 1 << 16, N).astype(np.uint64) * 64
    return cases


TRACES = trace_cases()


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("seed", [7, 21])
def test_batched_matches_reference(policy, trace_name, seed):
    trace = TRACES[trace_name]
    spec = POLICY_SPECS[policy]
    batched = BatchedHierarchyEngine(CONFIG).run(trace, spec, seed=seed)
    reference = HierarchyReferenceEngine(CONFIG).run(trace, spec, seed=seed)

    assert batched.n == reference.n == len(trace)
    assert np.array_equal(batched.l1.hits, reference.l1.hits), (
        f"first L1 divergence at access "
        f"{int(np.argmax(batched.l1.hits != reference.l1.hits))}")
    assert np.array_equal(batched.l2.hits, reference.l2.hits), (
        f"first L2 divergence at miss-stream position "
        f"{int(np.argmax(batched.l2.hits != reference.l2.hits))}")
    # Per-level stats: counts, rates, and the measured miss-line census.
    assert batched.l1.hit_count == reference.l1.hit_count
    assert batched.l2.n == reference.l2.n == batched.l1.miss_count
    assert batched.l2.hit_count == reference.l2.hit_count
    assert batched.l2.miss_count == reference.l2.miss_count
    assert (batched.l2.policy_stats["unique_l1_miss_lines"]
            == reference.l2.policy_stats["unique_l1_miss_lines"])


def test_l2_only_sees_l1_misses():
    trace = TRACES["loop"]
    result = BatchedHierarchyEngine(CONFIG).run(trace, PolicySpec("lru"), seed=0)
    assert result.l2.n == result.l1.miss_count
    assert result.l1.n == len(trace)
    # An L1I that fits the whole footprint would filter everything.
    big_l1 = HierarchyConfig(l1=CacheConfig(num_sets=1024, ways=8),
                             l2=CacheConfig(num_sets=64, ways=4))
    filtered = BatchedHierarchyEngine(big_l1).run(trace, PolicySpec("lru"), seed=0)
    assert filtered.l2.n < result.l2.n


def test_running_miss_counts():
    lines = np.array([5, 7, 5, 5, 7, 9], dtype=np.uint64)
    assert running_miss_counts(lines).tolist() == [1, 1, 2, 3, 2, 1]
    assert running_miss_counts(np.empty(0, dtype=np.uint64)).tolist() == []


def test_emissary_hp_driven_by_measured_counts():
    """min_l1_misses above any measured count must kill every promotion;
    min_l1_misses=1 must reproduce the paper's binary signal (every L2
    fill was an L1I miss -> candidate)."""
    trace = TRACES["loop"]
    base = {"hp_threshold": 4, "prob_inv": 4}
    huge = simulate_hierarchy(trace, PolicySpec("emissary",
                                                {**base, "min_l1_misses": 10**9}),
                              CONFIG, seed=7)
    assert huge.l2.policy_stats["hp_promotions"] == 0
    binary = simulate_hierarchy(trace, PolicySpec("emissary",
                                                  {**base, "min_l1_misses": 1}),
                                CONFIG, seed=7)
    assert binary.l2.policy_stats["hp_promotions"] > 0


def test_min_l1_misses_one_matches_costless_single_level_on_miss_stream():
    """With min_l1_misses=1 the hierarchy's L2 stage must equal running
    the single-level engine directly over the recorded miss stream."""
    trace = TRACES["call"]
    spec = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 8})
    hier = BatchedHierarchyEngine(CONFIG).run(trace, spec, seed=7)
    miss_stream = trace[~BatchedEngine(CONFIG.l1).run(
        trace, PolicySpec(CONFIG.l1_policy), seed=7).hits]
    direct = BatchedEngine(CONFIG.l2).run(miss_stream, spec, seed=7)
    assert np.array_equal(hier.l2.hits, direct.hits)


def test_mpki_renormalization():
    trace = TRACES["shift"]
    result = BatchedHierarchyEngine(CONFIG).run(trace, PolicySpec("srrip"), seed=0)
    assert result.l2_mpki == pytest.approx(1000.0 * result.l2.miss_count / result.n)
    assert result.l2_local_hit_rate == pytest.approx(result.l2.hit_rate)
    assert result.l1_hit_rate == pytest.approx(result.l1.hit_rate)
    assert result.accesses_per_s > 0


def test_hierarchy_result_round_trips_through_dicts():
    result = BatchedHierarchyEngine(CONFIG).run(TRACES["loop"],
                                                POLICY_SPECS["emissary"], seed=7)
    rebuilt = HierarchyResult.from_dict(result.to_dict())
    assert rebuilt.to_dict() == result.to_dict()


def test_hierarchy_config_round_trips_through_dicts():
    assert HierarchyConfig.from_dict(CONFIG.to_dict()) == CONFIG


def test_hierarchy_config_validation():
    with pytest.raises(ValueError):
        HierarchyConfig(l1=CacheConfig(num_sets=16, ways=4, line_size=32),
                        l2=CacheConfig(num_sets=64, ways=4, line_size=64))
    with pytest.raises(ValueError):
        HierarchyConfig(l1_policy="random")  # RNG-consuming L1I filter
    with pytest.raises(ValueError):
        HierarchyConfig(l1_policy="optimal")  # unknown policy
    with pytest.raises(TypeError):
        HierarchyConfig(l1={"num_sets": 16, "ways": 4})


def test_srrip_l1_filter_supported():
    config = HierarchyConfig(l1=CacheConfig(num_sets=16, ways=4),
                             l2=CacheConfig(num_sets=64, ways=4),
                             l1_policy="srrip")
    trace = TRACES["call"]
    batched = BatchedHierarchyEngine(config).run(trace, POLICY_SPECS["emissary"],
                                                 seed=3)
    reference = HierarchyReferenceEngine(config).run(trace, POLICY_SPECS["emissary"],
                                                     seed=3)
    assert np.array_equal(batched.l1.hits, reference.l1.hits)
    assert np.array_equal(batched.l2.hits, reference.l2.hits)


def test_simulate_dispatches_on_hierarchy_request():
    request = SimRequest(TraceSpec("loop", 5_000, 1, {"footprint_lines": 300}),
                         POLICY_SPECS["emissary"], CONFIG, seed=7)
    result = simulate(request)
    assert isinstance(result, HierarchyResult)
    reference = simulate(request.trace.generate(), request.policy,
                         config=CONFIG, seed=7, engine="reference")
    assert np.array_equal(result.l2.hits, reference.l2.hits)


def test_empty_trace_hierarchy():
    result = BatchedHierarchyEngine(CONFIG).run(np.empty(0, dtype=np.uint64),
                                                PolicySpec("lru"))
    assert result.n == 0
    assert result.l2.n == 0
    assert result.l2_mpki == 0.0


# -- multi-core shared L2 --------------------------------------------------

MIX = InterleaveSpec(cores=(TraceSpec("loop", 9_000, 3,
                                      {"footprint_lines": 500}),
                            TraceSpec("call", 6_000, 5)),
                     weights=(2, 1))
MIX_ADDRESSES, MIX_CORE_IDS = MIX.generate()


def test_multicore_per_core_rows_fold_to_totals():
    result = BatchedHierarchyEngine(CONFIG).run_multicore(
        MIX_ADDRESSES, MIX_CORE_IDS, POLICY_SPECS["emissary"], seed=7)
    assert result.num_cores == 2
    assert [row["core"] for row in result.per_core] == [0, 1]
    assert [row["n"] for row in result.per_core] == [9_000, 6_000]
    assert sum(row["l1_misses"] for row in result.per_core) \
        == result.l1.miss_count
    assert sum(row["l2_misses"] for row in result.per_core) \
        == result.l2.miss_count
    for row in result.per_core:
        assert row["l2_hits"] == row["l1_misses"] - row["l2_misses"]
        assert row["l2_mpki"] == pytest.approx(
            1000.0 * row["l2_misses"] / row["n"])


def test_multicore_result_round_trips_through_dicts():
    result = BatchedHierarchyEngine(CONFIG).run_multicore(
        MIX_ADDRESSES, MIX_CORE_IDS, POLICY_SPECS["emissary"], seed=7)
    rebuilt = MultiCoreHierarchyResult.from_dict(result.to_dict())
    assert rebuilt.to_dict() == result.to_dict()
    assert rebuilt.num_cores == 2
    assert rebuilt.per_core == result.per_core


def test_multicore_telemetry_parity_batched_vs_oracle():
    """Per-core counters and histograms must agree exactly between the
    core-virtualized batched engine and the per-access oracle.  Spans
    (and the engine-internal dispatch counters) differ by construction —
    the two engines batch work differently — so only the observable
    surface is compared."""
    tel_b, tel_r = Telemetry(), Telemetry()
    BatchedHierarchyEngine(CONFIG, telemetry=tel_b).run_multicore(
        MIX_ADDRESSES, MIX_CORE_IDS, POLICY_SPECS["emissary"], seed=7)
    HierarchyReferenceEngine(CONFIG, telemetry=tel_r).run_multicore(
        MIX_ADDRESSES, MIX_CORE_IDS, POLICY_SPECS["emissary"], seed=7)
    b, r = tel_b.to_dict(), tel_r.to_dict()

    def observable(counters):
        return {k: v for k, v in counters.items() if "engine." not in k}

    assert observable(b["counters"]) == observable(r["counters"])
    assert b["histograms"] == r["histograms"]
    assert b["counters"]["core0.n"] == 9_000
    assert b["counters"]["core1.n"] == 6_000


def test_multicore_engines_dispatch_and_agree():
    spec = POLICY_SPECS["emissary"]
    batched = simulate_multicore(MIX_ADDRESSES, MIX_CORE_IDS, spec,
                                 config=CONFIG, seed=7)
    reference = simulate_multicore(MIX_ADDRESSES, MIX_CORE_IDS, spec,
                                   config=CONFIG, seed=7, engine="reference")
    assert np.array_equal(batched.l1.hits, reference.l1.hits)
    assert np.array_equal(batched.l2.hits, reference.l2.hits)
    assert batched.per_core == reference.per_core


def test_multicore_interleave_stream_matches_oneshot():
    """Feeding the InterleaveSpec's own chunked generator through the
    streamed engine equals the one-shot run on the full interleave."""
    spec = POLICY_SPECS["emissary"]
    oneshot = BatchedHierarchyEngine(CONFIG).run_multicore(
        MIX_ADDRESSES, MIX_CORE_IDS, spec, seed=7)
    streamed = BatchedHierarchyEngine(CONFIG).simulate_stream_multicore(
        MIX.generate_chunks(chunk_bytes=4_096), spec,
        num_cores=MIX.num_cores, seed=7)
    assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
    assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)
    assert streamed.per_core == oneshot.per_core


def test_multicore_core_id_validation():
    engine = BatchedHierarchyEngine(CONFIG)
    addresses = MIX_ADDRESSES[:4]
    with pytest.raises(ValueError, match="length"):
        engine.run_multicore(addresses, np.zeros(3, dtype=np.int64),
                             PolicySpec("lru"))
    with pytest.raises(ValueError, match="negative"):
        engine.run_multicore(addresses, np.array([0, -1, 0, 0]),
                             PolicySpec("lru"))
    with pytest.raises(ValueError, match="num_cores"):
        engine.run_multicore(addresses, np.array([0, 3, 0, 0]),
                             PolicySpec("lru"), num_cores=2)
    with pytest.raises(ValueError, match=str(MAX_CORES)):
        engine.run_multicore(addresses, np.array([0, MAX_CORES, 0, 0]),
                             PolicySpec("lru"))
