"""Tests for the benchmark harness (small n so the suite stays fast)."""

import json

from emissary.bench import main, run_bench, run_hierarchy_bench, run_stream_bench
from emissary.engine import CacheConfig
from emissary.hierarchy import HierarchyConfig

SMALL_HIERARCHY = HierarchyConfig(l1=CacheConfig(num_sets=16, ways=4),
                                  l2=CacheConfig(num_sets=64, ways=4))


def test_run_bench_cross_checks_engines():
    report = run_bench(n=5_000, policies=["lru", "emissary"], seed=3)
    assert report["all_outcomes_identical"] is True
    assert {r["policy"] for r in report["policies"]} == {"lru", "emissary"}
    for row in report["policies"]:
        assert row["outcomes_identical"] is True
        assert row["speedup"] > 0
        assert 0.0 <= row["hit_rate"] <= 1.0
        assert row["batched"]["n"] == 5_000


def test_run_bench_skip_reference():
    report = run_bench(n=2_000, policies=["lru"], skip_reference=True)
    assert "all_outcomes_identical" not in report
    assert "speedup" not in report["policies"][0]


def test_run_hierarchy_bench_cross_checks_engines():
    report = run_hierarchy_bench(n=5_000, policies=["lru", "emissary"], seed=3,
                                 config=SMALL_HIERARCHY)
    assert report["benchmark"] == "hierarchy_throughput"
    assert report["hierarchy"]["l1"]["num_sets"] == 16
    assert report["all_outcomes_identical"] is True
    for row in report["policies"]:
        assert row["outcomes_identical"] is True
        assert 0.0 <= row["l1_hit_rate"] <= 1.0
        assert 0.0 <= row["l2_local_hit_rate"] <= 1.0
        assert row["batched"]["l1"]["n"] == 5_000
        assert row["batched"]["l2"]["n"] == row["batched"]["l1"]["miss_count"]


def test_hierarchy_bench_multicore_arm_cross_checks_oracle():
    report = run_hierarchy_bench(n=5_000, policies=["lru"], seed=3,
                                 config=SMALL_HIERARCHY)
    multicore = report["multicore"]
    assert [c["kind"] for c in multicore["trace"]["cores"]] == ["loop", "call"]
    names = [(row["policy"], row["params"].get("hp_budget"))
             for row in multicore["policies"]]
    assert names == [("lru", None), ("emissary", "partitioned")]
    for row in multicore["policies"]:
        assert row["outcomes_identical"] is True
        assert row["num_cores"] == 2
        assert [pc["core"] for pc in row["per_core"]] == [0, 1]
        assert sum(pc["n"] for pc in row["per_core"]) \
            == row["batched"]["l1"]["n"]
    # The arm's identity verdicts fold into the report-wide flag.
    assert report["all_outcomes_identical"] is True


def test_hierarchy_bench_gates_emissary_on_measured_misses():
    report = run_hierarchy_bench(n=5_000, policies=["emissary"], seed=3,
                                 config=SMALL_HIERARCHY, skip_reference=True)
    stats = report["policies"][0]["batched"]["l2"]["policy_stats"]
    assert stats["min_l1_misses"] == 2
    # The single-level bench must NOT apply the override: without an L1I
    # there is no measured miss count to gate on.
    flat = run_bench(n=2_000, policies=["emissary"], skip_reference=True)
    flat_stats = flat["policies"][0]["batched"]["policy_stats"]
    assert flat_stats.get("min_l1_misses", 1) == 1


def test_cli_writes_bench_json(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    rc = main(["--n", "3000", "--policies", "lru,srrip", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "engine_throughput"
    assert report["all_outcomes_identical"] is True
    assert report["trace"]["n"] == 3000
    assert capsys.readouterr().out  # summary table printed


def test_run_stream_bench_cross_checks_streamed_outcomes():
    report = run_stream_bench(n=4_000, policies=["lru", "emissary"], seed=3,
                              config=CacheConfig(num_sets=64, ways=4),
                              chunk_sizes=[1024, 64 << 10], repeats=1)
    assert report["benchmark"] == "stream_throughput"
    assert report["all_outcomes_identical"] is True
    for row in report["policies"]:
        # Every format x chunk-budget combination ran and matched.
        assert len(row["streams"]) == len(report["formats"]) * 2
        assert all(s["outcomes_identical"] for s in row["streams"])
        assert all(s["accesses_per_s"] > 0 for s in row["streams"])


def test_cli_stream_writes_bench_json(tmp_path, capsys):
    out = tmp_path / "BENCH_stream_test.json"
    rc = main(["--stream", "--n", "3000", "--policies", "lru,srrip",
               "--num-sets", "64", "--ways", "4", "--repeats", "1",
               "--chunk-bytes", "2048,65536", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "stream_throughput"
    assert report["all_outcomes_identical"] is True
    assert report["chunk_bytes"] == [2048, 65536]
    assert "identical" in capsys.readouterr().out


def test_cli_hierarchy_writes_bench_json(tmp_path, capsys):
    out = tmp_path / "BENCH_hier_test.json"
    rc = main(["--hierarchy", "--n", "3000", "--policies", "lru,emissary",
               "--num-sets", "64", "--ways", "4", "--l1-sets", "16",
               "--l1-ways", "4", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "hierarchy_throughput"
    assert report["hierarchy"] == {"l1": {"num_sets": 16, "ways": 4, "line_size": 64},
                                   "l2": {"num_sets": 64, "ways": 4, "line_size": 64},
                                   "l1_policy": "lru"}
    assert report["all_outcomes_identical"] is True
    assert "L2MPKI" in capsys.readouterr().out
