"""Tests for the benchmark harness (small n so the suite stays fast)."""

import json

from emissary.bench import main, run_bench


def test_run_bench_cross_checks_engines():
    report = run_bench(n=5_000, policies=["lru", "emissary"], seed=3)
    assert report["all_outcomes_identical"] is True
    assert {r["policy"] for r in report["policies"]} == {"lru", "emissary"}
    for row in report["policies"]:
        assert row["outcomes_identical"] is True
        assert row["speedup"] > 0
        assert 0.0 <= row["hit_rate"] <= 1.0
        assert row["batched"]["n"] == 5_000


def test_run_bench_skip_reference():
    report = run_bench(n=2_000, policies=["lru"], skip_reference=True)
    assert "all_outcomes_identical" not in report
    assert "speedup" not in report["policies"][0]


def test_cli_writes_bench_json(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    rc = main(["--n", "3000", "--policies", "lru,srrip", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "engine_throughput"
    assert report["all_outcomes_identical"] is True
    assert report["trace"]["n"] == 3000
    assert capsys.readouterr().out  # summary table printed
