"""Tests for the observability package (:mod:`emissary.obs`).

The Prometheus exposition is pinned byte-for-byte against a golden and
round-tripped through the strict parser; trace ids are checked for
determinism (the whole point of deriving them from seed + counter); the
merged Chrome trace is checked for correct pid/track assignment; and the
structured-log plumbing is exercised including contextvar propagation
across ``asyncio.create_task``.
"""

import asyncio
import json
import logging

import pytest

from emissary.obs.logs import (JsonLogFormatter, LogRing, bind_log_context,
                               bound_trace_id, record_to_dict)
from emissary.obs.metrics import (GENERIC_BUCKETS, LATENCY_BUCKETS_US,
                                  histogram_quantile, metric_name,
                                  parse_prometheus, render_prometheus,
                                  sample_value)
from emissary.obs.top import render_frame
from emissary.obs.tracing import (SERVER_TRACK_PID, TraceContext, TraceStore,
                                  derive_trace_id, merge_request_trace)


def make_record(message="hello", level=logging.INFO, **extra):
    record = logging.LogRecord("emissary.test", level, __file__, 1,
                               message, (), None)
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestPrometheusRender:
    PAYLOAD = {
        "schema_version": 1,
        "counters": {"serve.requests": 7, "hits": 90},
        "histograms": {"serve.latency_us": {"120": 3, "900": 1},
                       "line_hits": {"0": 2, "3": 5}},
        "spans": [],
    }
    GAUGES = {"serve.queue_depth": 2.0}

    def test_golden_exposition(self):
        """Byte-for-byte pin: formatting regressions must fail loudly."""
        text = render_prometheus(self.PAYLOAD, gauges=self.GAUGES)
        lines = text.splitlines()
        assert lines[0] == "# HELP emissary_hits_total emissary counter `hits`"
        assert lines[1] == "# TYPE emissary_hits_total counter"
        assert lines[2] == "emissary_hits_total 90"
        assert "emissary_serve_requests_total 7" in lines
        # Cumulative explicit buckets on the generic ladder.
        assert 'emissary_line_hits_bucket{le="0"} 2' in lines
        assert 'emissary_line_hits_bucket{le="2"} 2' in lines
        assert 'emissary_line_hits_bucket{le="4"} 7' in lines
        assert 'emissary_line_hits_bucket{le="+Inf"} 7' in lines
        assert "emissary_line_hits_sum 15" in lines
        assert "emissary_line_hits_count 7" in lines
        # Latency ladder + derived quantile gauges for serve.latency_us.
        assert 'emissary_serve_latency_us_bucket{le="250"} 3' in lines
        assert "emissary_serve_latency_us_p50 120" in lines
        assert "emissary_serve_latency_us_p99 900" in lines
        assert "emissary_serve_queue_depth 2" in lines
        assert text.endswith("\n")

    def test_pure_function_same_bytes(self):
        first = render_prometheus(self.PAYLOAD, gauges=self.GAUGES)
        second = render_prometheus(dict(self.PAYLOAD),
                                   gauges=dict(self.GAUGES))
        assert first == second

    def test_round_trips_through_strict_parser(self):
        families = parse_prometheus(
            render_prometheus(self.PAYLOAD, gauges=self.GAUGES))
        assert families["emissary_serve_requests_total"]["type"] == "counter"
        assert families["emissary_serve_latency_us"]["type"] == "histogram"
        assert sample_value(families, "emissary_serve_requests_total") == 7
        assert sample_value(families, "emissary_line_hits_bucket",
                            {"le": "4"}) == 7
        assert sample_value(families, "emissary_serve_queue_depth") == 2.0
        assert sample_value(families, "emissary_nope") is None

    def test_empty_payload_renders_and_parses(self):
        text = render_prometheus({"counters": {}, "histograms": {}})
        assert parse_prometheus(text) == {}

    def test_metric_name_sanitizes(self):
        assert metric_name("serve.latency_us") == "emissary_serve_latency_us"
        assert metric_name("a-b c") == "emissary_a_b_c"

    def test_bucket_ladders_are_sorted(self):
        assert list(LATENCY_BUCKETS_US) == sorted(LATENCY_BUCKETS_US)
        assert list(GENERIC_BUCKETS) == sorted(GENERIC_BUCKETS)


class TestPrometheusParser:
    def test_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="before its TYPE"):
            parse_prometheus("emissary_x_total 1\n")

    def test_rejects_missing_final_newline(self):
        with pytest.raises(ValueError, match="newline"):
            parse_prometheus("# TYPE emissary_x counter\nemissary_x 1")

    def test_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE emissary_x counter\nemissary_x one\n")

    def test_rejects_malformed_label_pair(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus("# TYPE emissary_x histogram\n"
                             "emissary_x_bucket{le=nope} 1\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus("# TYPE emissary_x counter\n"
                             "# TYPE emissary_x counter\n")

    def test_rejects_nonmonotonic_buckets(self):
        with pytest.raises(ValueError, match="below previous"):
            parse_prometheus("# TYPE emissary_h histogram\n"
                             'emissary_h_bucket{le="1"} 5\n'
                             'emissary_h_bucket{le="+Inf"} 3\n'
                             "emissary_h_sum 5\nemissary_h_count 3\n")

    def test_rejects_count_inf_bucket_disagreement(self):
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus("# TYPE emissary_h histogram\n"
                             'emissary_h_bucket{le="+Inf"} 3\n'
                             "emissary_h_sum 5\nemissary_h_count 4\n")

    def test_rejects_histogram_without_inf_bucket(self):
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus("# TYPE emissary_h histogram\n"
                             'emissary_h_bucket{le="1"} 3\n'
                             "emissary_h_sum 5\nemissary_h_count 3\n")


class TestHistogramQuantile:
    def test_exact_quantiles_from_value_map(self):
        hist = {"100": 50, "200": 49, "5000": 1}
        assert histogram_quantile(hist, 0.50) == 100.0
        assert histogram_quantile(hist, 0.99) == 200.0
        assert histogram_quantile(hist, 1.00) == 5000.0
        assert histogram_quantile(hist, 0.0) == 100.0

    def test_accepts_int_keys(self):
        assert histogram_quantile({100: 1, 300: 1}, 0.99) == 300.0

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile({}, 0.5) == 0.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile({"1": 1}, 1.5)


class TestTracing:
    def test_trace_ids_are_deterministic(self):
        assert derive_trace_id(0, 0) == derive_trace_id(0, 0)
        assert derive_trace_id(0, 0) != derive_trace_id(0, 1)
        assert derive_trace_id(0, 0) != derive_trace_id(1, 0)
        assert len(derive_trace_id(0, 0)) == 16
        int(derive_trace_id(3, 7), 16)  # hex digits only

    def test_trace_context_round_trip_and_strict_decode(self):
        ctx = TraceContext(trace_id=derive_trace_id(0, 2), index=2)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        with pytest.raises(ValueError, match="unknown"):
            TraceContext.from_dict({**ctx.to_dict(), "color": "red"})

    def test_merge_assigns_server_and_worker_tracks(self):
        server = [{"name": "serve.request", "ts_us": 0.0, "dur_us": 9.0,
                   "args": {}}]
        worker = [{"name": "kernel_loop", "ts_us": 2.0, "dur_us": 5.0,
                   "args": {}}]
        chrome = merge_request_trace("abcd", server, worker, worker_pid=4242,
                                     tid=3)
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["serve.request"]["pid"] == SERVER_TRACK_PID
        assert by_name["kernel_loop"]["pid"] == 4242
        assert all(e["tid"] == 3 for e in spans)
        labels = {e["args"]["name"] for e in chrome["traceEvents"]
                  if e.get("ph") == "M"}
        assert labels == {"server", "worker 4242"}
        assert chrome["otherData"] == {"trace_id": "abcd"}

    def test_merge_without_worker_spans_has_single_track(self):
        chrome = merge_request_trace("ff00", [{"name": "serve.request",
                                               "ts_us": 0.0, "dur_us": 1.0,
                                               "args": {}}], [])
        labels = {e["args"]["name"] for e in chrome["traceEvents"]
                  if e.get("ph") == "M"}
        assert labels == {"server"}

    def test_store_ring_evicts_oldest(self):
        store = TraceStore(capacity=2)
        contexts = [TraceContext(derive_trace_id(0, i), i) for i in range(3)]
        for ctx in contexts:
            store.record(ctx, key=f"k{ctx.index}", status="fresh",
                         server_spans=[], worker_spans=[])
        assert len(store) == 2
        assert store.get(contexts[0].trace_id) is None  # oldest evicted
        latest = store.latest()
        assert latest is not None
        assert latest["trace_id"] == contexts[2].trace_id
        summaries = store.summaries()
        assert [s["key"] for s in summaries] == ["k1", "k2"]
        assert all("trace" not in s for s in summaries)

    def test_store_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceStore(capacity=0)


class TestStructuredLogs:
    def test_bound_context_lands_on_records(self):
        with bind_log_context(trace_id="t1", request_key="k1"):
            assert bound_trace_id() == "t1"
            payload = record_to_dict(make_record())
        assert payload["trace_id"] == "t1"
        assert payload["request_key"] == "k1"
        assert bound_trace_id() is None  # binding restored on exit

    def test_explicit_extra_wins_over_bound_context(self):
        with bind_log_context(trace_id="bound"):
            payload = record_to_dict(make_record(trace_id="explicit",
                                                 event="request"))
        assert payload["trace_id"] == "explicit"
        assert payload["event"] == "request"

    def test_context_propagates_through_create_task(self):
        """``asyncio.create_task`` copies the contextvar binding, so a
        task outliving the ``bind_log_context`` block keeps the id."""
        async def scenario():
            started = asyncio.Event()
            release = asyncio.Event()

            async def worker():
                started.set()
                await release.wait()
                return record_to_dict(make_record("late"))

            with bind_log_context(trace_id="task-trace"):
                task = asyncio.create_task(worker())
                await started.wait()
            release.set()  # handler has moved on; binding must persist
            return await task

        payload = asyncio.run(scenario())
        assert payload["trace_id"] == "task-trace"

    def test_json_formatter_emits_one_parseable_object(self):
        with bind_log_context(trace_id="t9"):
            line = JsonLogFormatter().format(make_record("x", event="request"))
        payload = json.loads(line)
        assert payload["message"] == "x"
        assert payload["trace_id"] == "t9"
        assert payload["level"] == "INFO"
        assert "\n" not in line

    def test_ring_bounds_and_counts_drops(self):
        ring = LogRing(capacity=2)
        for i in range(3):
            ring.emit(make_record(f"m{i}"))
        records = ring.records()
        assert [r["message"] for r in records] == ["m1", "m2"]
        assert ring.dropped == 1
        ring.clear()
        assert ring.records() == []

    def test_ring_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LogRing(capacity=0)

    def test_exception_recorded(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logging.LogRecord("emissary.test", logging.ERROR,
                                       __file__, 1, "fail", (), __import__(
                                           "sys").exc_info())
        assert "boom" in record_to_dict(record)["exc"]


class TestTopDashboard:
    STATS = {
        "uptime_s": 12.5, "workers": 2, "requests": 100, "simulations": 40,
        "dedupe_joined": 10, "errors": 1, "rejected": 2, "queue_depth": 3,
        "queue_watermark": 10, "worker_crashes": 0,
        "cache": {"hits": 50, "evictions": 4, "total_bytes": 2048,
                  "budget_bytes": 4096},
        "telemetry": {"histograms": {"serve.latency_us": {"1000": 9,
                                                          "9000": 1}}},
        "obs": {"enabled": True, "traces": 5, "log_records": 7},
    }

    def test_render_frame_is_pure_text(self):
        frame = render_frame(self.STATS, None, 0.0)
        assert "req/s       0.0" in frame  # no previous poll: rate 0
        assert "p50     1.00" in frame and "p99     9.00" in frame
        assert "3/10" in frame
        assert "hit ratio  0.50" in frame
        assert "2048/4096" in frame
        assert "obs    on" in frame and "traces 5" in frame

    def test_rates_are_deltas_between_polls(self):
        before = dict(self.STATS, requests=0, simulations=0)
        frame = render_frame(self.STATS, before, 2.0)
        assert "req/s      50.0" in frame
        assert "sims/s     20.0" in frame
