"""Compiled kernel backend: provider registry, selection, and fallback.

The bit-identity of the compiled kernels themselves is established by
the hypothesis differential suite (``test_property_differential``); this
module covers the machinery *around* them:

- the provider registry (:func:`emissary.compiled.get_kernels`,
  ``EMISSARY_COMPILED`` environment override, cache reset),
- engine-level backend selection (warn-and-fall-back on auto, hard
  error on a pinned provider, ``kernel_backend`` validation),
- :class:`~emissary.api.SimRequest` backend plumbing — including the
  deliberate *exclusion* of ``backend`` from the results-cache key,
- the sweep worker's backend parameter,
- the sanitizer on the compiled flat-state path, and
- the ``bench --backend`` harness (small-n smoke).

Everything here runs without numba installed: the interpreter provider
(``python``) is always loadable, and tests that need a real native
provider (numba or the bundled C fallback) are skip-marked.
"""

import numpy as np
import pytest

from emissary.analysis.sanitizer import Sanitizer, SanitizerError
from emissary.api import BACKENDS, PolicySpec, SimRequest, simulate
from emissary.compiled import (
    COMPILED_ENV,
    PROVIDER_NAMES,
    PROVIDER_ORDER,
    CompiledUnavailableError,
    available_providers,
    get_kernels,
    make_compiled_kernel,
    reset_provider_cache,
)
from emissary.compiled.numba_backend import HAVE_NUMBA
from emissary.engine import BatchedEngine, CacheConfig
from emissary.traces import TraceSpec

try:
    get_kernels()
    COMPILED_AVAILABLE = True
except CompiledUnavailableError:
    COMPILED_AVAILABLE = False

_needs_compiled_skip = pytest.mark.skipif(
    not COMPILED_AVAILABLE,
    reason="no compiled kernel provider (numba or a C compiler) available")


def needs_compiled(func):  # noqa: ANN001, ANN201 - pytest decorator
    return pytest.mark.needs_compiled(_needs_compiled_skip(func))

# Wheel-availability guard: numba ships binary wheels on a lag behind new
# CPython releases, so "pip install numba" can legitimately fail or be
# skipped on a matrix leg.  Tests that *require* the numba provider take
# this marker; the rest of the file must stay green without the wheel.
# The selectable `needs_numba` mark (registered in pyproject.toml) rides
# along so the CI numba leg can run `-m needs_numba` and fail — exit 5 —
# if the marked tests ever stop being collected.
_needs_numba_skip = pytest.mark.skipif(
    not HAVE_NUMBA,
    reason="numba wheel not installed in this environment")


def needs_numba(func):  # noqa: ANN001, ANN201 - pytest decorator
    return pytest.mark.needs_numba(_needs_numba_skip(func))

POLICIES = [
    PolicySpec("lru"),
    PolicySpec("random"),
    PolicySpec("srrip"),
    PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4}),
]


@pytest.fixture
def clean_providers(monkeypatch):
    """Fresh provider cache around environment monkeypatching, restored
    afterwards so later tests re-probe under the real environment."""
    reset_provider_cache()
    yield monkeypatch
    reset_provider_cache()


def _trace(n=4000, seed=7):
    return TraceSpec(kind="loop", n=n, seed=seed,
                     params={"footprint_lines": 256}).generate()


# -- provider registry ----------------------------------------------------

def test_available_providers_auto_is_provider_order(clean_providers):
    clean_providers.delenv(COMPILED_ENV, raising=False)
    assert available_providers() == PROVIDER_ORDER
    clean_providers.setenv(COMPILED_ENV, "auto")
    assert available_providers() == PROVIDER_ORDER


def test_available_providers_env_off(clean_providers):
    clean_providers.setenv(COMPILED_ENV, "off")
    assert available_providers() == ()
    with pytest.raises(CompiledUnavailableError, match="disabled"):
        get_kernels()
    # `off` is the operational kill-switch: it beats even a pinned provider.
    with pytest.raises(CompiledUnavailableError, match="disabled"):
        get_kernels("python")


def test_available_providers_env_pinned(clean_providers):
    clean_providers.setenv(COMPILED_ENV, "cc")
    assert available_providers() == ("cc",)


def test_available_providers_env_invalid(clean_providers):
    clean_providers.setenv(COMPILED_ENV, "gpu")
    with pytest.raises(ValueError, match="EMISSARY_COMPILED"):
        available_providers()


def test_get_kernels_unknown_provider(clean_providers):
    clean_providers.delenv(COMPILED_ENV, raising=False)
    with pytest.raises(ValueError, match="unknown compiled provider"):
        get_kernels("fortran")


def test_python_provider_always_loadable(clean_providers):
    clean_providers.delenv(COMPILED_ENV, raising=False)
    kernels = get_kernels("python")
    assert kernels.name == "python"
    # ...but never auto-selected: it would silently defeat the point.
    assert "python" not in PROVIDER_ORDER
    assert "python" in PROVIDER_NAMES


@pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
def test_pinned_numba_unavailable_raises(clean_providers):
    clean_providers.delenv(COMPILED_ENV, raising=False)
    with pytest.raises(CompiledUnavailableError, match="numba"):
        get_kernels("numba")


@needs_numba
def test_numba_provider_matches_python_backend():
    kernels = get_kernels("numba")
    assert kernels.name == "numba"
    addresses = _trace()
    config = CacheConfig(num_sets=8, ways=4)
    for spec in POLICIES:
        compiled = BatchedEngine(config, kernel_backend="compiled",
                                 compiled_provider="numba").run(
            addresses, spec, seed=3)
        python = BatchedEngine(config).run(addresses, spec, seed=3)
        assert np.array_equal(compiled.hits, python.hits)
        assert compiled.policy_stats == python.policy_stats


# -- engine backend selection ---------------------------------------------

def test_python_provider_matches_python_backend(clean_providers):
    """The interpreter provider exercises the full compiled dispatch path
    (trace-order batches over flat state) with no native code at all."""
    clean_providers.delenv(COMPILED_ENV, raising=False)
    addresses = _trace()
    config = CacheConfig(num_sets=8, ways=4)
    for spec in POLICIES:
        compiled = BatchedEngine(config, kernel_backend="compiled",
                                 compiled_provider="python").run(
            addresses, spec, seed=3)
        python = BatchedEngine(config).run(addresses, spec, seed=3)
        assert np.array_equal(compiled.hits, python.hits)
        assert compiled.policy_stats == python.policy_stats


def test_unknown_kernel_backend_rejected():
    with pytest.raises(ValueError, match="kernel_backend"):
        BatchedEngine(CacheConfig(), kernel_backend="gpu")


def test_auto_compiled_falls_back_with_warning(clean_providers):
    """backend="compiled" with no loadable provider must warn and fall
    back to the (bit-identical) Python kernels, not fail the run."""
    clean_providers.setenv(COMPILED_ENV, "off")
    addresses = _trace(n=1500)
    config = CacheConfig(num_sets=4, ways=2)
    spec = PolicySpec("emissary", {"hp_threshold": 1, "prob_inv": 2})
    engine = BatchedEngine(config, kernel_backend="compiled")
    with pytest.warns(RuntimeWarning, match="falling back"):
        result = engine.run(addresses, spec, seed=3)
    expected = BatchedEngine(config).run(addresses, spec, seed=3)
    assert np.array_equal(result.hits, expected.hits)
    assert result.policy_stats == expected.policy_stats


def test_pinned_compiled_unavailable_is_hard_error(clean_providers):
    """A pinned provider must never silently time Python instead."""
    clean_providers.setenv(COMPILED_ENV, "off")
    engine = BatchedEngine(CacheConfig(num_sets=4, ways=2),
                           kernel_backend="compiled",
                           compiled_provider="cc")
    with pytest.raises(CompiledUnavailableError):
        engine.run(_trace(n=100), PolicySpec("lru"), seed=3)


# -- SimRequest / api.simulate plumbing -----------------------------------

def test_simrequest_backend_validation():
    trace = TraceSpec(kind="loop", n=100, seed=1)
    assert SimRequest(trace, PolicySpec("lru")).backend == "batched"
    for backend in BACKENDS:
        assert SimRequest(trace, PolicySpec("lru"),
                          backend=backend).backend == backend
    with pytest.raises(ValueError, match="unknown backend"):
        SimRequest(trace, PolicySpec("lru"), backend="gpu")


def test_simrequest_backend_excluded_from_cache_key():
    """Backends are bit-identical, so the results-cache key must be
    backend-invariant: a compiled sweep warms the cache for batched runs."""
    trace = TraceSpec(kind="loop", n=100, seed=1)
    encodings = {backend: SimRequest(trace, PolicySpec("lru"),
                                     backend=backend).to_dict()
                 for backend in BACKENDS}
    assert encodings["compiled"] == encodings["batched"]
    assert encodings["reference"] == encodings["batched"]
    assert "backend" not in encodings["batched"]
    # from_dict still honors an explicit backend key if one is present.
    encoded = dict(encodings["batched"], backend="compiled")
    assert SimRequest.from_dict(encoded).backend == "compiled"


@needs_compiled
def test_simulate_request_backend_and_override():
    trace = TraceSpec(kind="loop", n=3000, seed=9,
                      params={"footprint_lines": 128})
    config = CacheConfig(num_sets=8, ways=4)
    spec = PolicySpec("srrip")
    batched = simulate(SimRequest(trace, spec, config))
    compiled = simulate(SimRequest(trace, spec, config, backend="compiled"))
    assert np.array_equal(compiled.hits, batched.hits)
    # An explicit engine= overrides the request's backend field.
    overridden = simulate(SimRequest(trace, spec, config, backend="compiled"),
                          engine="reference")
    assert overridden.hit_count == batched.hit_count


@needs_compiled
def test_simulate_streamed_compiled_request():
    trace = TraceSpec(kind="shift", n=5000, seed=2)
    config = CacheConfig(num_sets=8, ways=4)
    spec = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4})
    request = SimRequest(trace, spec, config, backend="compiled")
    oneshot = simulate(SimRequest(trace, spec, config))
    streamed = simulate(request, stream=True, chunk_bytes=1 << 12)
    assert np.array_equal(streamed.hits, oneshot.hits)
    assert streamed.policy_stats == oneshot.policy_stats


# -- sweep worker ---------------------------------------------------------

@needs_compiled
def test_run_config_compiled_backend():
    from emissary.sweep import run_config

    request = SimRequest(TraceSpec(kind="loop", n=2000, seed=4),
                         PolicySpec("emissary",
                                    {"hp_threshold": 2, "prob_inv": 4}),
                         CacheConfig(num_sets=8, ways=4))
    def outcomes(row):
        return {k: v for k, v in row.items()
                if k not in ("elapsed_s", "accesses_per_s")}

    batched = run_config(request.to_dict())
    compiled = run_config(request.to_dict(), backend="compiled")
    assert outcomes(compiled) == outcomes(batched)
    with pytest.raises(ValueError, match="sweep backend"):
        run_config(request.to_dict(), backend="gpu")


# -- sanitizer on the compiled path ---------------------------------------

def test_sanitizer_checks_compiled_dispatches(clean_providers):
    clean_providers.delenv(COMPILED_ENV, raising=False)
    sanitizer = Sanitizer()
    engine = BatchedEngine(CacheConfig(num_sets=4, ways=2),
                           sanitizer=sanitizer, kernel_backend="compiled",
                           compiled_provider="python")
    engine.run(_trace(n=500), PolicySpec("lru"), seed=3)
    assert sanitizer.checks > 0
    # MRU-run collapsing means the kernel sees at most n accesses.
    assert 0 < sanitizer.accesses <= 500
    assert sanitizer.attached == ["lru"]


def test_sanitizer_catches_compiled_state_corruption(clean_providers):
    clean_providers.delenv(COMPILED_ENV, raising=False)
    kernel = make_compiled_kernel("lru", num_sets=4, ways=2,
                                  provider="python")
    sanitizer = Sanitizer()
    sanitizer.attach_kernel(kernel)
    set_idx = np.zeros(4, dtype=np.int64)
    tags = np.arange(4, dtype=np.int64)
    kernel.run_batch(set_idx, tags)
    kernel._size[0] = 5  # occupancy above associativity
    with pytest.raises(SanitizerError):
        kernel.run_batch(set_idx, tags)


# -- bench harness --------------------------------------------------------

@needs_compiled
def test_backend_bench_smoke():
    from emissary.bench import run_backend_bench

    report = run_backend_bench(n=4096, repeats=1, skip_reference=True)
    assert report["benchmark"] == "backend_throughput"
    assert report["compiled_provider"] == get_kernels().name
    assert report["all_outcomes_identical"] is True
    rows = report["policies"]
    assert {row["policy"] for row in rows} == \
        {"lru", "random", "srrip", "emissary"}
    assert any(row["hierarchy"] for row in rows)
    for row in rows:
        assert row["outcomes_identical"] is True
        assert row["speedup_vs_python"] > 0
        assert "reference" not in row


def test_backend_bench_fails_loudly_without_provider(clean_providers):
    from emissary.bench import run_backend_bench

    clean_providers.setenv(COMPILED_ENV, "off")
    with pytest.raises(CompiledUnavailableError):
        run_backend_bench(n=64, repeats=1, skip_reference=True)
