"""SARIF output tests: golden structure plus validation against a
vendored subset of the official SARIF 2.1.0 JSON schema (the subset
keeps the spec's required fields and types for every property we emit;
jsonschema is a dev dependency, so the validation is skipped only if
the environment lacks it)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from emissary.analysis.lint import LintReport, Violation, lint_paths
from emissary.analysis.sarif import sarif_log, write_sarif

SCHEMA_PATH = Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json"

jsonschema = pytest.importorskip("jsonschema")


def validate(log: dict) -> None:
    schema = json.loads(SCHEMA_PATH.read_text())
    jsonschema.validate(log, schema,
                        format_checker=jsonschema.FormatChecker())


def sample_report() -> LintReport:
    return LintReport(violations=(
        Violation(code="EMI001", path="src/emissary/x.py", line=3, col=1,
                  message="stdlib `random` uses process-global state"),
        Violation(code="EMI102", path="src/emissary/serve/y.py", line=10,
                  col=5, message="blocking call `time.sleep`"),
    ), files_checked=2)


def test_sarif_log_golden_structure():
    log = sarif_log(sample_report())
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "emissary-analysis"
    rule_ids = [r["id"] for r in driver["rules"]]
    # The full catalog rides along so code scanning can render help
    # text even for rules with no findings this run.
    assert "EMI001" in rule_ids and "EMI101" in rule_ids \
        and "EMI007" in rule_ids
    assert rule_ids == sorted(rule_ids, key=rule_ids.index)  # stable order

    first, second = run["results"]
    assert first == {
        "ruleId": "EMI001",
        "level": "error",
        "message": {"text": "stdlib `random` uses process-global state"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": "src/emissary/x.py",
                                     "uriBaseId": "%SRCROOT%"},
                "region": {"startLine": 3, "startColumn": 1},
            },
        }],
    }
    assert second["ruleId"] == "EMI102"


def test_sarif_validates_against_2_1_0_schema():
    validate(sarif_log(sample_report()))
    # An empty report is also a valid log (runs with zero results).
    validate(sarif_log(LintReport(violations=(), files_checked=0)))


def test_write_sarif_round_trips(tmp_path):
    out = tmp_path / "report.sarif"
    write_sarif(sample_report(), out)
    payload = json.loads(out.read_text())
    assert payload == sarif_log(sample_report())
    validate(payload)


def test_real_tree_sarif_is_schema_valid(tmp_path):
    report = lint_paths(["src/emissary/analysis"])
    log = sarif_log(report)
    validate(log)
    assert log["runs"][0]["results"] == []  # the tree is clean


def test_zero_line_violations_clamp_to_one():
    # EMI000 syntax errors can carry line/col 0; SARIF requires >= 1.
    report = LintReport(violations=(
        Violation(code="EMI000", path="bad.py", line=0, col=0,
                  message="syntax error"),), files_checked=1)
    log = sarif_log(report)
    region = log["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["region"]
    assert region == {"startLine": 1, "startColumn": 1}
    validate(log)
