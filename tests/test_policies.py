"""Unit tests for per-policy victim selection and priority bookkeeping."""

import numpy as np
import pytest

from emissary.api import PolicySpec
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine
from emissary.policies import make_kernel, make_naive, policy_needs_rng
from emissary.policies.emissary import EmissaryKernel, NaiveEmissary
from emissary.policies.lru import NaiveLRU
from emissary.policies.srrip import RRPV_INSERT, RRPV_MAX, NaiveSRRIP, SRRIPKernel


def addresses_of_lines(lines, line_size=64):
    return np.asarray(lines, dtype=np.uint64) * np.uint64(line_size)


def run_one_set(policy, lines, ways, engine="batched", seed=0, **params):
    """Run a trace confined to a single set (num_sets=1) and return hits."""
    cfg = CacheConfig(num_sets=1, ways=ways)
    cls = BatchedEngine if engine == "batched" else ReferenceEngine
    result = cls(cfg).run(addresses_of_lines(lines), PolicySpec(policy, params),
                          seed=seed)
    return list(result.hits)


class TestLRU:
    def test_evicts_least_recently_used(self):
        # Fill ways 0..2 with lines 1,2,3; touch 1; insert 4 -> evicts 2.
        hits = run_one_set("lru", [1, 2, 3, 1, 4, 1, 3, 2], ways=3)
        assert hits == [False, False, False, True, False, True, True, False]

    def test_hit_refreshes_recency(self):
        hits = run_one_set("lru", [1, 2, 1, 3, 1, 4, 1], ways=2)
        # 1 survives every eviction because it is touched between fills.
        assert [h for i, h in enumerate(hits) if i % 2 == 0] == [False, True, True, True]

    def test_naive_victim_is_min_timestamp(self):
        naive = NaiveLRU(1, 4)
        for way in (2, 0, 3, 1):
            naive.on_fill(0, way, 0, 0.0)
        assert naive.find_victim(0, 0.0) == 2


class TestSRRIP:
    def test_insert_then_age_then_evict(self):
        hits = run_one_set("srrip", [1, 2, 3], ways=2)
        # Third line must age both resident lines to RRPV_MAX and evict way 0.
        assert hits == [False, False, False]
        kernel = make_kernel("srrip", 1, 2)
        kernel.run_set(0, [1, 2, 3], None, [False, False, False])
        assert kernel.effective_rrpv(0) == [RRPV_INSERT, RRPV_MAX]

    def test_hit_promotes_to_zero(self):
        kernel = make_kernel("srrip", 1, 2)
        kernel.run_set(0, [1, 2, 1], None, [False] * 3)
        assert kernel.effective_rrpv(0) == [0, RRPV_INSERT]

    def test_repeat_flag_matches_explicit_rereference(self):
        # [5, 5] with collapsing == [5] with rep=True: fill promoted to 0.
        kernel = make_kernel("srrip", 1, 2)
        kernel.run_set(0, [5], None, [True])
        assert kernel.effective_rrpv(0) == [0]

    def test_wide_fallback_matches_packed(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 64, 4000)
        wide = run_one_set("srrip", lines, ways=PACKED_LIMIT_PLUS)
        ref = run_one_set("srrip", lines, ways=PACKED_LIMIT_PLUS, engine="reference")
        assert wide == ref

    def test_naive_victim_scan_order(self):
        naive = NaiveSRRIP(1, 4)
        naive.rrpv[:4] = [RRPV_MAX, 1, RRPV_MAX, 0]
        assert naive.find_victim(0, 0.0) == 0  # lowest index wins


PACKED_LIMIT_PLUS = 12  # beyond PACK_MAX_WAYS -> exercises the list fallback


class TestRandom:
    def test_victim_is_uniform_slot(self):
        naive = make_naive("random", 1, 8)
        assert naive.find_victim(0, 0.0) == 0
        assert naive.find_victim(0, 0.999) == 7
        assert naive.find_victim(0, 0.5) == 4

    def test_needs_rng(self):
        assert policy_needs_rng("random")
        assert policy_needs_rng("emissary")
        assert not policy_needs_rng("lru")
        assert not policy_needs_rng("srrip")


class TestEmissary:
    def _fill_kernel(self, ways, hp_threshold, prob_inv, lines, u):
        kernel = EmissaryKernel(1, ways, hp_threshold=hp_threshold, prob_inv=prob_inv)
        kernel.run_set(0, list(lines), list(u), None)
        return kernel

    def test_hp_count_never_exceeds_threshold(self):
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 100, 5000).tolist()
        # prob_inv=1 makes every fill an HP candidate — worst case.
        kernel = self._fill_kernel(8, 3, 1, lines, [0.0] * len(lines))
        assert kernel.hp_counts[0] <= 3
        assert sum(p for _, p in kernel.set_contents(0)) == kernel.hp_counts[0]

    def test_hp_count_tracked_per_set(self):
        cfg = CacheConfig(num_sets=4, ways=4)
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 256, 4000)
        engine = BatchedEngine(cfg)
        result = engine.run(addresses_of_lines(lines),
                            PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 1}),
                            seed=9)
        assert result.policy_stats["hp_lines_final"] <= 2 * cfg.num_sets

    def test_hp_bit_cleared_on_eviction(self):
        naive = NaiveEmissary(1, 2, hp_threshold=2, prob_inv=1)
        naive.on_fill(0, 0, 0, 0.0)  # u=0.0 < 1/1 -> HP
        assert naive.priority[0] == 1
        assert naive.hp_counts[0] == 1
        naive.replaced(0, 0)
        assert naive.priority[0] == 0
        assert naive.hp_counts[0] == 0

    def test_prefers_low_priority_lru_victim(self):
        naive = NaiveEmissary(1, 3, hp_threshold=2, prob_inv=2)
        naive.on_fill(0, 0, 0, 0.0)   # u < 1/2 -> HP (oldest)
        naive.on_fill(0, 1, 1, 0.9)   # LP
        naive.on_fill(0, 2, 2, 0.9)   # LP
        # Way 0 is the overall LRU but is protected; LP LRU is way 1.
        assert naive.hp_counts[0] == 1  # below threshold
        assert naive.find_victim(0, 0.0) == 1

    def test_falls_back_to_hp_lru_when_saturated(self):
        naive = NaiveEmissary(1, 2, hp_threshold=2, prob_inv=1)
        naive.on_fill(0, 0, 0, 0.0)  # HP
        naive.on_fill(0, 1, 1, 0.0)  # HP -> hp_count == threshold
        assert naive.hp_counts[0] == 2
        # Saturated: victim is the LRU *high-priority* line.
        assert naive.find_victim(0, 0.0) == 0

    def test_threshold_zero_degenerates_to_lru(self):
        rng = np.random.default_rng(5)
        lines = rng.integers(0, 40, 3000)
        em = run_one_set("emissary", lines, ways=4, hp_threshold=0, prob_inv=2, seed=11)
        lru = run_one_set("lru", lines, ways=4, seed=11)
        assert em == lru

    def test_threshold_above_ways_rejected(self):
        with pytest.raises(ValueError):
            EmissaryKernel(1, 4, hp_threshold=5)
        with pytest.raises(ValueError):
            NaiveEmissary(1, 4, hp_threshold=5)

    def test_prob_inv_below_one_rejected(self):
        with pytest.raises(ValueError):
            EmissaryKernel(1, 4, prob_inv=0)

    def test_protection_beats_lru_on_thrashing_loop(self):
        # Cyclic loop over footprint > capacity: pure LRU gets ~0 hits,
        # EMISSARY's protected lines keep a stable resident subset.
        ways, loops, footprint = 8, 60, 12
        lines = list(range(footprint)) * loops
        lru_hits = sum(run_one_set("lru", lines, ways=ways))
        em_hits = sum(run_one_set("emissary", lines, ways=ways,
                                  hp_threshold=6, prob_inv=4, seed=2))
        assert lru_hits == 0
        assert em_hits > loops  # protected lines hit nearly every iteration


class TestRegistry:
    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_kernel("optimal", 1, 4)
        with pytest.raises(ValueError):
            make_naive("optimal", 1, 4)
        with pytest.raises(ValueError):
            policy_needs_rng("optimal")

    def test_srrip_kernel_uses_packed_path_at_default_ways(self):
        assert SRRIPKernel(4, 8)._packed_ok
        assert not SRRIPKernel(4, PACKED_LIMIT_PLUS)._packed_ok
