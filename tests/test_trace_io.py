"""Tests for trace file I/O: formats, chunking, specs, and the CLI."""

import gzip

import numpy as np
import pytest

from emissary import trace_io
from emissary.results_cache import config_key
from emissary.trace_io import (
    CHAMPSIM_DTYPE,
    FORMATS,
    NpySource,
    convert,
    detect_format,
    file_sha256,
    file_spec,
    load_spec_addresses,
    open_trace,
    spec_source,
    write_trace,
)
from emissary.traces import FILE_KIND, TraceSpec


@pytest.fixture
def addresses():
    return TraceSpec("call", 5_000, 3).generate()


def _path_for(tmp_path, fmt):
    return tmp_path / f"trace.{fmt}"


@pytest.mark.parametrize("fmt", FORMATS)
def test_roundtrip_every_format(tmp_path, addresses, fmt):
    path = _path_for(tmp_path, fmt)
    written = write_trace(path, [addresses])
    assert written == len(addresses)
    source = open_trace(path)
    assert source.format == fmt
    assert source.count() == len(addresses)
    assert np.array_equal(source.read_all(), addresses)


@pytest.mark.parametrize("fmt", FORMATS)
def test_chunks_respect_memory_budget(tmp_path, addresses, fmt):
    path = _path_for(tmp_path, fmt)
    write_trace(path, [addresses])
    budget = 1024  # 128 addresses (or 16 ChampSim records) per chunk
    chunks = list(open_trace(path, chunk_bytes=budget))
    assert len(chunks) > 1
    assert all(c.nbytes <= budget for c in chunks)
    assert all(c.dtype == np.uint64 and c.flags.c_contiguous for c in chunks)
    assert np.array_equal(np.concatenate(chunks), addresses)


def test_chunked_writer_streams(tmp_path, addresses):
    path = _path_for(tmp_path, "champsim.gz")
    parts = np.array_split(addresses, 7)
    write_trace(path, parts)
    assert np.array_equal(open_trace(path).read_all(), addresses)


def test_champsim_layout_matches_reference(tmp_path, addresses):
    """The on-disk bytes are genuine 64-byte ChampSim records with the
    fetch address in the leading ``ip`` field."""
    path = _path_for(tmp_path, "champsim")
    write_trace(path, [addresses])
    raw = path.read_bytes()
    assert len(raw) == 64 * len(addresses)
    records = np.frombuffer(raw, dtype=CHAMPSIM_DTYPE)
    assert np.array_equal(records["ip"], addresses)
    assert not records["is_branch"].any()


def test_truncated_champsim_rejected(tmp_path, addresses):
    path = _path_for(tmp_path, "champsim")
    write_trace(path, [addresses])
    path.write_bytes(path.read_bytes()[:-13])  # tear the last record
    with pytest.raises(ValueError, match="truncated|record"):
        open_trace(path).read_all()
    with pytest.raises(ValueError, match="record"):
        open_trace(path).count()


def test_truncated_gzip_payload_rejected(tmp_path, addresses):
    path = _path_for(tmp_path, "champsim.gz")
    records = np.zeros(4, dtype=CHAMPSIM_DTYPE)
    with gzip.open(path, "wb") as fh:
        fh.write(records.tobytes()[:-5])
    with pytest.raises(ValueError, match="record"):
        open_trace(path).count()


def test_npy_source_memory_maps(tmp_path, addresses):
    path = _path_for(tmp_path, "npy")
    write_trace(path, [addresses])
    mapped = NpySource(path)._mmap()
    assert isinstance(mapped, np.memmap)


def test_npy_rejects_wrong_shape(tmp_path):
    path = tmp_path / "bad.npy"
    np.save(path, np.zeros((4, 4), dtype=np.uint64))
    with pytest.raises(ValueError, match="1-D"):
        open_trace(path).read_all()


def test_npz_accepts_single_unnamed_array(tmp_path, addresses):
    path = tmp_path / "other.npz"
    np.savez(path, stream=addresses)  # not the canonical "addresses" key
    assert np.array_equal(open_trace(path).read_all(), addresses)


def test_npz_rejects_ambiguous_archive(tmp_path, addresses):
    path = tmp_path / "multi.npz"
    np.savez(path, a=addresses, b=addresses)
    with pytest.raises(ValueError, match="addresses"):
        open_trace(path).read_all()


class TestNpzStreaming:
    """The npz source reads zip members as an incrementally-decompressing
    stream — never through ``np.load``, never the whole array at once."""

    def test_iteration_never_calls_np_load(self, tmp_path, addresses,
                                           monkeypatch):
        path = tmp_path / "t.npz"
        write_trace(path, [addresses])
        monkeypatch.setattr(np, "load", lambda *a, **k: pytest.fail(
            "NpzSource must stream via zipfile, not materialize via np.load"))
        chunks = list(open_trace(path, chunk_bytes=1024))
        assert len(chunks) > 1
        assert np.array_equal(np.concatenate(chunks), addresses)
        assert open_trace(path).count() == len(addresses)

    def test_streams_nondefault_member_and_dtype(self, tmp_path, addresses):
        path = tmp_path / "other.npz"
        np.savez(path, stream=addresses.astype(np.int64))
        chunks = list(open_trace(path, chunk_bytes=512))
        assert all(c.dtype == np.uint64 and c.flags.c_contiguous
                   for c in chunks)
        assert np.array_equal(np.concatenate(chunks), addresses)

    def test_compressed_archive_streams(self, tmp_path, addresses):
        path = tmp_path / "packed.npz"
        np.savez_compressed(path, addresses=addresses)
        chunks = list(open_trace(path, chunk_bytes=1024))
        assert len(chunks) > 1
        assert np.array_equal(np.concatenate(chunks), addresses)

    def test_truncated_member_rejected(self, tmp_path):
        import io
        import zipfile

        buf = io.BytesIO()
        np.lib.format.write_array(buf, np.arange(100, dtype=np.uint64))
        path = tmp_path / "torn.npz"
        with zipfile.ZipFile(path, "w") as zf:
            # Header claims 100 elements; payload carries only half.
            zf.writestr("addresses.npy", buf.getvalue()[:-400])
        with pytest.raises(ValueError, match="truncated"):
            open_trace(path).read_all()

    def test_rejects_float_member(self, tmp_path):
        path = tmp_path / "f.npz"
        np.savez(path, addresses=np.zeros(8, dtype=np.float64))
        with pytest.raises(ValueError, match="address array"):
            open_trace(path).read_all()

    def test_rejects_multidimensional_member(self, tmp_path):
        path = tmp_path / "m.npz"
        np.savez(path, addresses=np.zeros((4, 4), dtype=np.uint64))
        with pytest.raises(ValueError, match="1-D"):
            open_trace(path).count()


def test_detect_format():
    assert detect_format("t.champsim") == "champsim"
    assert detect_format("t.bin") == "champsim"
    assert detect_format("T.TRACE") == "champsim"
    assert detect_format("t.champsim.gz") == "champsim.gz"
    assert detect_format("t.npy") == "npy"
    assert detect_format("t.npz") == "npz"
    with pytest.raises(ValueError, match="infer"):
        detect_format("t.dat")


@pytest.mark.parametrize("dst_fmt", FORMATS)
def test_convert_between_formats(tmp_path, addresses, dst_fmt):
    src = _path_for(tmp_path, "champsim")
    write_trace(src, [addresses])
    dst = tmp_path / f"out.{dst_fmt}"
    assert convert(src, dst) == len(addresses)
    assert np.array_equal(open_trace(dst).read_all(), addresses)


def test_tiny_chunk_budget_clamps_to_one_record(tmp_path, addresses):
    path = _path_for(tmp_path, "champsim")
    write_trace(path, [addresses[:16]])
    chunks = list(open_trace(path, chunk_bytes=8))  # < one 64-byte record
    assert all(len(c) == 1 for c in chunks)
    with pytest.raises(ValueError, match="chunk_bytes"):
        open_trace(path, chunk_bytes=4)


class TestFileSpec:
    def test_spec_fields_and_generate(self, tmp_path, addresses):
        path = _path_for(tmp_path, "npy")
        write_trace(path, [addresses])
        spec = file_spec(path)
        assert spec.kind == FILE_KIND
        assert spec.n == len(addresses)
        assert spec.params["sha256"] == file_sha256(path)
        assert spec.params["format"] == "npy"
        assert spec.params["_path"] == str(path.resolve())
        assert np.array_equal(spec.generate(), addresses)

    def test_cache_key_tracks_content_not_location(self, tmp_path, addresses):
        a = _path_for(tmp_path, "champsim")
        write_trace(a, [addresses])
        spec_a = file_spec(a)
        moved = tmp_path / "elsewhere.champsim"
        a.rename(moved)
        spec_b = file_spec(moved)
        # Same bytes, different path: identical cache keys.
        assert config_key(spec_a.to_dict()) == config_key(spec_b.to_dict())
        # Different bytes: different key.
        write_trace(moved, [addresses[::-1].copy()])
        spec_c = file_spec(moved)
        assert config_key(spec_b.to_dict()) != config_key(spec_c.to_dict())

    def test_spec_source_verifies_content(self, tmp_path, addresses):
        path = _path_for(tmp_path, "champsim")
        write_trace(path, [addresses])
        spec = file_spec(path)
        assert np.array_equal(spec_source(spec).read_all(), addresses)
        write_trace(path, [addresses[:100]])  # file drifts under the spec
        with pytest.raises(ValueError, match="hash|changed"):
            spec_source(spec)
        # verify=False trusts the caller, but generate() still checks n.
        with pytest.raises(ValueError, match="n="):
            load_spec_addresses(spec, verify=False)

    def test_spec_without_path_is_rejected(self):
        spec = TraceSpec(FILE_KIND, 10, params={"sha256": "0" * 64})
        with pytest.raises(ValueError, match="_path"):
            spec_source(spec)

    def test_spec_roundtrips_through_dict(self, tmp_path, addresses):
        path = _path_for(tmp_path, "npy")
        write_trace(path, [addresses])
        spec = file_spec(path)
        again = TraceSpec.from_dict(spec.to_dict())
        assert again == spec
        assert np.array_equal(again.generate(), addresses)


class TestCli:
    def test_convert_synth_and_inspect(self, tmp_path, capsys):
        out = tmp_path / "t.champsim.gz"
        rc = trace_io.main(["convert", "synth:loop", str(out),
                            "--n", "2000", "--seed", "7",
                            "--param", "footprint_lines=64"])
        assert rc == 0
        assert "2000 accesses" in capsys.readouterr().out
        expected = TraceSpec("loop", 2000, 7, {"footprint_lines": 64}).generate()
        assert np.array_equal(open_trace(out).read_all(), expected)

        rc = trace_io.main(["inspect", str(out), "--head", "3"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "accesses:     2000" in text
        assert f"sha256:       {file_sha256(out)}" in text
        assert "unique lines: 64" in text

    def test_convert_file_to_file(self, tmp_path, capsys):
        src = tmp_path / "t.npy"
        addresses = TraceSpec("loop", 500, 1, {"footprint_lines": 16}).generate()
        write_trace(src, [addresses])
        dst = tmp_path / "t.champsim"
        assert trace_io.main(["convert", str(src), str(dst)]) == 0
        assert np.array_equal(open_trace(dst).read_all(), addresses)

    def test_convert_unknown_synth_kind_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_io.main(["convert", "synth:fractal", str(tmp_path / "t.npy")])


class TestXzAndShaMemo:
    def test_xz_roundtrip_and_detection(self, tmp_path, addresses):
        path = tmp_path / "t.trace.xz"
        write_trace(path, [addresses])
        assert detect_format(path) == "champsim.xz"
        source = open_trace(path)
        assert source.format == "champsim.xz"
        assert source.count() == len(addresses)
        assert np.array_equal(source.read_all(), addresses)
        # xz actually compresses: the payload is 16 bytes per record raw.
        assert path.stat().st_size < 16 * len(addresses)

    def test_xz_file_spec_sweepable(self, tmp_path, addresses):
        path = tmp_path / "t.champsim.xz"
        write_trace(path, [addresses])
        spec = file_spec(path)
        assert spec.params["format"] == "champsim.xz"
        assert np.array_equal(spec_source(spec).read_all(), addresses)

    def test_verified_sha256_memoizes_per_process(self, tmp_path, addresses,
                                                  monkeypatch):
        path = _path_for(tmp_path, "champsim")
        write_trace(path, [addresses])
        trace_io._SHA_MEMO.clear()
        first = trace_io.verified_sha256(path)
        assert first == file_sha256(path)

        hashes = []
        real = trace_io.file_sha256
        monkeypatch.setattr(trace_io, "file_sha256",
                            lambda p: hashes.append(p) or real(p))
        # Unchanged file: memo hit, no re-hash.
        assert trace_io.verified_sha256(path) == first
        assert hashes == []
        # Rewriting the file changes size/mtime and forces a re-hash.
        write_trace(path, [addresses[:100]])
        second = trace_io.verified_sha256(path)
        assert len(hashes) == 1
        assert second != first

    def test_spec_source_uses_memo(self, tmp_path, addresses, monkeypatch):
        path = _path_for(tmp_path, "champsim")
        write_trace(path, [addresses])
        spec = file_spec(path)
        trace_io._SHA_MEMO.clear()
        spec_source(spec)  # first verify pays the hash
        monkeypatch.setattr(trace_io, "file_sha256", lambda p: pytest.fail(
            "spec_source should reuse the per-process sha memo"))
        spec_source(spec)
