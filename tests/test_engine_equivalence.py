"""Cross-check: the batched set-major engine must produce bit-identical
hit/miss sequences to the naive per-access reference implementation, for
every policy, every trace family, and with run collapsing both on and off.
"""

import numpy as np
import pytest

from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine, simulate
from emissary.policies import POLICY_NAMES
from emissary.traces import TraceSpec

N = 30_000
SEED = 7

POLICY_PARAMS = {
    "lru": {},
    "random": {},
    "srrip": {},
    "emissary": {"hp_threshold": 2, "prob_inv": 8},
}


def trace_cases():
    cases = {
        "loop": TraceSpec("loop", N, 3, {"footprint_lines": 500}).generate(),
        "shift": TraceSpec("shift", N, 4, {"footprint_lines": 300}).generate(),
        "call": TraceSpec("call", N, 5).generate(),
    }
    rng = np.random.default_rng(1)
    cases["uniform_random"] = rng.integers(0, 1 << 20, N).astype(np.uint64) * 64
    cases["random_with_runs"] = np.repeat(
        rng.integers(0, 1 << 14, N // 4).astype(np.uint64) * 64,
        rng.integers(1, 9, N // 4))[:N]
    return cases


TRACES = trace_cases()


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("collapse", [True, False], ids=["collapse", "no-collapse"])
def test_batched_matches_reference(policy, trace_name, collapse):
    trace = TRACES[trace_name]
    cfg = CacheConfig(num_sets=64, ways=4)
    params = POLICY_PARAMS[policy]
    batched = BatchedEngine(cfg, collapse_runs=collapse).run(trace, policy,
                                                             seed=SEED, **params)
    reference = ReferenceEngine(cfg).run(trace, policy, seed=SEED, **params)
    assert batched.n == reference.n == len(trace)
    assert np.array_equal(batched.hits, reference.hits), (
        f"first divergence at access "
        f"{int(np.argmax(batched.hits != reference.hits))}")
    assert batched.hit_count == reference.hit_count
    assert batched.miss_count == reference.miss_count


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_seed_reproducibility(policy):
    trace = TRACES["call"]
    a = simulate(trace, policy, seed=123, **POLICY_PARAMS[policy])
    b = simulate(trace, policy, seed=123, **POLICY_PARAMS[policy])
    assert np.array_equal(a.hits, b.hits)


def test_different_seeds_differ_for_rng_policies():
    trace = TRACES["uniform_random"][:5000]
    cfg = CacheConfig(num_sets=16, ways=4)
    a = BatchedEngine(cfg).run(trace, "random", seed=1)
    b = BatchedEngine(cfg).run(trace, "random", seed=2)
    # Same misses on a cold uniform trace is astronomically unlikely to
    # coincide hit-for-hit once the sets are warm under different victims.
    assert a.n == b.n
    # Deterministic policies must not depend on the seed at all.
    c = BatchedEngine(cfg).run(trace, "lru", seed=1)
    d = BatchedEngine(cfg).run(trace, "lru", seed=2)
    assert np.array_equal(c.hits, d.hits)


def test_empty_trace():
    result = simulate(np.empty(0, dtype=np.uint64), "lru")
    assert result.n == 0
    assert result.hit_count == 0
    assert result.mpki == 0.0


def test_single_access_trace():
    result = simulate(np.array([0x1000], dtype=np.uint64), "emissary", seed=3)
    assert result.n == 1
    assert result.miss_count == 1


def test_stats_derivations():
    trace = TRACES["loop"]
    result = simulate(trace, "lru")
    assert result.hit_count + result.miss_count == result.n
    assert result.hit_rate == pytest.approx(result.hit_count / result.n)
    assert result.mpki == pytest.approx(1000.0 * result.miss_count / result.n)
    d = result.to_dict()
    assert d["policy"] == "lru"
    assert d["accesses_per_s"] > 0


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        simulate(TRACES["loop"], "lru", engine="gpu")


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(num_sets=1000)  # not a power of two
    with pytest.raises(ValueError):
        CacheConfig(line_size=48)
    with pytest.raises(ValueError):
        CacheConfig(ways=0)
