"""Cross-check: the batched set-major engine must produce bit-identical
hit/miss sequences to the naive per-access reference implementation, for
every policy, every trace family, and with run collapsing both on and off.
"""

import numpy as np
import pytest

from emissary.api import PolicySpec, simulate
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine, SimResult
from emissary.policies import POLICY_NAMES
from emissary.traces import TraceSpec

N = 30_000
SEED = 7

POLICY_SPECS = {
    "lru": PolicySpec("lru"),
    "random": PolicySpec("random"),
    "srrip": PolicySpec("srrip"),
    "emissary": PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 8}),
}


def trace_cases():
    cases = {
        "loop": TraceSpec("loop", N, 3, {"footprint_lines": 500}).generate(),
        "shift": TraceSpec("shift", N, 4, {"footprint_lines": 300}).generate(),
        "call": TraceSpec("call", N, 5).generate(),
    }
    rng = np.random.default_rng(1)
    cases["uniform_random"] = rng.integers(0, 1 << 20, N).astype(np.uint64) * 64
    cases["random_with_runs"] = np.repeat(
        rng.integers(0, 1 << 14, N // 4).astype(np.uint64) * 64,
        rng.integers(1, 9, N // 4))[:N]
    return cases


TRACES = trace_cases()


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("collapse", [True, False], ids=["collapse", "no-collapse"])
def test_batched_matches_reference(policy, trace_name, collapse):
    trace = TRACES[trace_name]
    cfg = CacheConfig(num_sets=64, ways=4)
    spec = POLICY_SPECS[policy]
    batched = BatchedEngine(cfg, collapse_runs=collapse).run(trace, spec, seed=SEED)
    reference = ReferenceEngine(cfg).run(trace, spec, seed=SEED)
    assert batched.n == reference.n == len(trace)
    assert np.array_equal(batched.hits, reference.hits), (
        f"first divergence at access "
        f"{int(np.argmax(batched.hits != reference.hits))}")
    assert batched.hit_count == reference.hit_count
    assert batched.miss_count == reference.miss_count


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("collapse", [True, False], ids=["collapse", "no-collapse"])
def test_batched_matches_reference_with_cost(policy, collapse):
    """A synthetic cost vector must not break equivalence — cost-blind
    policies ignore it, EMISSARY gates HP candidacy on it identically in
    both engines."""
    trace = TRACES["call"]
    cfg = CacheConfig(num_sets=64, ways=4)
    cost = np.random.default_rng(9).integers(1, 5, len(trace))
    spec = (PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4,
                                    "min_l1_misses": 3})
            if policy == "emissary" else POLICY_SPECS[policy])
    batched = BatchedEngine(cfg, collapse_runs=collapse).run(trace, spec,
                                                             seed=SEED, cost=cost)
    reference = ReferenceEngine(cfg).run(trace, spec, seed=SEED, cost=cost)
    assert np.array_equal(batched.hits, reference.hits)


def test_cost_gating_changes_emissary_outcomes():
    trace = TRACES["loop"]
    cfg = CacheConfig(num_sets=16, ways=8)
    spec = PolicySpec("emissary", {"hp_threshold": 6, "prob_inv": 2,
                                   "min_l1_misses": 2})
    never = BatchedEngine(cfg).run(trace, spec, seed=SEED,
                                   cost=np.ones(len(trace), dtype=np.int64))
    always = BatchedEngine(cfg).run(trace, spec, seed=SEED,
                                    cost=np.full(len(trace), 5, dtype=np.int64))
    assert never.policy_stats["hp_promotions"] == 0
    assert always.policy_stats["hp_promotions"] > 0


def test_cost_length_mismatch_rejected():
    trace = TRACES["loop"]
    with pytest.raises(ValueError):
        BatchedEngine().run(trace, POLICY_SPECS["emissary"], cost=np.ones(3))
    with pytest.raises(ValueError):
        ReferenceEngine().run(trace, POLICY_SPECS["emissary"], cost=np.ones(3))


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_seed_reproducibility(policy):
    trace = TRACES["call"]
    a = simulate(trace, POLICY_SPECS[policy], seed=123)
    b = simulate(trace, POLICY_SPECS[policy], seed=123)
    assert np.array_equal(a.hits, b.hits)


def test_different_seeds_differ_for_rng_policies():
    trace = TRACES["uniform_random"][:5000]
    cfg = CacheConfig(num_sets=16, ways=4)
    a = BatchedEngine(cfg).run(trace, PolicySpec("random"), seed=1)
    b = BatchedEngine(cfg).run(trace, PolicySpec("random"), seed=2)
    # Same misses on a cold uniform trace is astronomically unlikely to
    # coincide hit-for-hit once the sets are warm under different victims.
    assert a.n == b.n
    # Deterministic policies must not depend on the seed at all.
    c = BatchedEngine(cfg).run(trace, PolicySpec("lru"), seed=1)
    d = BatchedEngine(cfg).run(trace, PolicySpec("lru"), seed=2)
    assert np.array_equal(c.hits, d.hits)


def test_empty_trace():
    result = simulate(np.empty(0, dtype=np.uint64), PolicySpec("lru"))
    assert result.n == 0
    assert result.hit_count == 0
    assert result.mpki == 0.0


def test_single_access_trace():
    result = simulate(np.array([0x1000], dtype=np.uint64),
                      POLICY_SPECS["emissary"], seed=3)
    assert result.n == 1
    assert result.miss_count == 1


def test_stats_derivations():
    trace = TRACES["loop"]
    result = simulate(trace, PolicySpec("lru"))
    assert result.hit_count + result.miss_count == result.n
    assert result.hit_rate == pytest.approx(result.hit_count / result.n)
    assert result.mpki == pytest.approx(1000.0 * result.miss_count / result.n)
    d = result.to_dict()
    assert d["policy"] == "lru"
    assert d["accesses_per_s"] > 0


def test_sim_result_round_trips_through_dicts():
    result = simulate(TRACES["call"], POLICY_SPECS["emissary"], seed=SEED)
    rebuilt = SimResult.from_dict(result.to_dict())
    assert rebuilt.to_dict() == result.to_dict()
    assert rebuilt.hits is None  # hit vectors are not serialized


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        simulate(TRACES["loop"], PolicySpec("lru"), engine="gpu")


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(num_sets=1000)  # not a power of two
    with pytest.raises(ValueError):
        CacheConfig(line_size=48)
    with pytest.raises(ValueError):
        CacheConfig(ways=0)


def test_cache_config_round_trips_through_dicts():
    cfg = CacheConfig(num_sets=128, ways=16, line_size=32)
    assert CacheConfig.from_dict(cfg.to_dict()) == cfg
