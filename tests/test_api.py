"""Typed PolicySpec/SimRequest API: validation, the versioned wire
contract (schema_version stamping, strict decode, v0 migration, stable
legacy cache keys), and rejection of the removed legacy string-policy
form."""

import numpy as np
import pytest

from emissary.api import PolicySpec, SimRequest, require_policy_spec, simulate
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine, SimResult
from emissary.hierarchy import (HierarchyConfig, HierarchyResult,
                                MultiCoreHierarchyResult, simulate_multicore)
from emissary.results_cache import ResultsCache, config_key
from emissary.traces import InterleaveSpec, TraceSpec
from emissary.wire import (WIRE_SCHEMA_KEY, WIRE_SCHEMA_VERSION,
                           check_known_keys, check_wire_version,
                           migrate_wire_dict)

TRACE = TraceSpec("loop", 2_000, 1, {"footprint_lines": 100})


class TestPolicySpec:
    def test_valid_specs(self):
        assert PolicySpec("lru").params == {}
        spec = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 8,
                                       "min_l1_misses": 3})
        assert spec.params["min_l1_misses"] == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            PolicySpec("optimal")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            PolicySpec("emissary", {"hp_treshold": 2})  # typo caught at build
        with pytest.raises(ValueError, match="does not accept parameter"):
            PolicySpec("lru", {"hp_threshold": 2})

    def test_mistyped_param_rejected(self):
        with pytest.raises(TypeError, match="must be int"):
            PolicySpec("emissary", {"hp_threshold": "2"})
        with pytest.raises(TypeError, match="must be int"):
            PolicySpec("emissary", {"prob_inv": True})  # bools are not ints here

    def test_params_copied_from_caller(self):
        params = {"hp_threshold": 2}
        spec = PolicySpec("emissary", params)
        params["hp_threshold"] = 99
        assert spec.params["hp_threshold"] == 2

    def test_round_trip(self):
        spec = PolicySpec("emissary", {"hp_threshold": 4, "prob_inv": 16})
        assert PolicySpec.from_dict(spec.to_dict()) == spec
        assert isinstance(spec.to_dict()["params"], dict)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown wire keys"):
            PolicySpec.from_dict({"name": "lru", "params": {}, "extra": 1})

    def test_spec_is_frozen_and_hashable(self):
        a = PolicySpec("emissary", {"hp_threshold": 4})
        b = PolicySpec("emissary", {"hp_threshold": 4})
        assert hash(a) == hash(b) and {a: 1}[b] == 1
        with pytest.raises(TypeError):
            a.params["hp_threshold"] = 99


class TestSimRequest:
    def test_defaults(self):
        request = SimRequest(TRACE, PolicySpec("lru"))
        assert request.config == CacheConfig()
        assert request.seed == 0
        assert not request.is_hierarchy

    def test_hierarchy_request(self):
        request = SimRequest(TRACE, PolicySpec("lru"), HierarchyConfig())
        assert request.is_hierarchy

    def test_type_validation(self):
        with pytest.raises(TypeError):
            SimRequest("loop", PolicySpec("lru"))
        with pytest.raises(TypeError):
            SimRequest(TRACE, "lru")
        with pytest.raises(TypeError):
            SimRequest(TRACE, PolicySpec("lru"), {"num_sets": 16})
        with pytest.raises(TypeError):
            SimRequest(TRACE, PolicySpec("lru"), seed="42")

    @pytest.mark.parametrize("config", [None, CacheConfig(num_sets=16, ways=4),
                                        HierarchyConfig()],
                             ids=["default", "single", "hierarchy"])
    def test_round_trip(self, config):
        request = SimRequest(TRACE, PolicySpec("emissary", {"hp_threshold": 2}),
                             config, seed=9)
        assert SimRequest.from_dict(request.to_dict()) == request

    def test_results_cache_accepts_requests(self, tmp_path):
        request = SimRequest(TRACE, PolicySpec("lru"), seed=3)
        assert config_key(request) == config_key(request.to_dict())
        cache = ResultsCache(tmp_path)
        cache.store(request, {"hit_rate": 0.5})
        assert cache.load(request) == {"hit_rate": 0.5}
        assert cache.load(request.to_dict()) == {"hit_rate": 0.5}


MIX = InterleaveSpec(cores=(TraceSpec("loop", 4_000, 1,
                                      {"footprint_lines": 200}),
                            TraceSpec("call", 2_000, 2)),
                     weights=(2, 1))


class TestMultiCoreRequest:
    """SimRequest over an InterleaveSpec: N cores into one shared L2."""

    def test_requires_hierarchy_config(self):
        request = SimRequest(MIX, PolicySpec("lru"), HierarchyConfig())
        assert request.is_multicore and request.is_hierarchy
        with pytest.raises(TypeError, match="[Hh]ierarchy"):
            SimRequest(MIX, PolicySpec("lru"))
        with pytest.raises(TypeError, match="[Hh]ierarchy"):
            SimRequest(MIX, PolicySpec("lru"), CacheConfig())

    def test_round_trip_and_cache_key(self, tmp_path):
        request = SimRequest(MIX, PolicySpec("emissary",
                                             {"hp_threshold": 2,
                                              "hp_budget": "partitioned"}),
                             HierarchyConfig(), seed=9)
        assert SimRequest.from_dict(request.to_dict()) == request
        cache = ResultsCache(tmp_path)
        cache.store(request, {"l2_mpki": 1.0})
        assert cache.load(request.to_dict()) == {"l2_mpki": 1.0}

    @pytest.mark.parametrize("stream", [False, True])
    def test_simulate_dispatches_multicore(self, stream):
        request = SimRequest(MIX, PolicySpec("emissary", {"hp_threshold": 2}),
                             HierarchyConfig(), seed=9)
        result = simulate(request, stream=stream)
        assert isinstance(result, MultiCoreHierarchyResult)
        assert result.num_cores == 2
        assert [row["n"] for row in result.per_core] == [4_000, 2_000]
        addresses, core_ids = MIX.generate()
        direct = simulate_multicore(addresses, core_ids, request.policy,
                                    config=HierarchyConfig(), seed=9)
        assert result.per_core == direct.per_core
        assert np.array_equal(result.l2.hits, direct.l2.hits)

    def test_reference_backend_dispatches(self):
        request = SimRequest(MIX, PolicySpec("lru"), HierarchyConfig(),
                             seed=9, backend="reference")
        result = simulate(request)
        assert isinstance(result, MultiCoreHierarchyResult)
        batched = simulate(SimRequest(MIX, PolicySpec("lru"),
                                      HierarchyConfig(), seed=9))
        assert result.per_core == batched.per_core


class TestWireSchema:
    """The versioned wire contract shared by HTTP and the results cache."""

    def test_request_payload_is_version_stamped(self):
        d = SimRequest(TRACE, PolicySpec("lru")).to_dict()
        assert d[WIRE_SCHEMA_KEY] == WIRE_SCHEMA_VERSION

    def test_v0_dict_migrates(self):
        request = SimRequest(TRACE, PolicySpec("lru"), HierarchyConfig(), seed=3)
        v0 = request.to_dict()
        del v0[WIRE_SCHEMA_KEY]  # the pre-versioned layout
        assert SimRequest.from_dict(v0) == request
        migrated = migrate_wire_dict(v0, "SimRequest")
        assert migrated[WIRE_SCHEMA_KEY] == WIRE_SCHEMA_VERSION
        assert WIRE_SCHEMA_KEY not in v0  # migration never mutates its input
        assert SimRequest.from_dict(migrated) == request

    def test_newer_version_refused(self):
        d = SimRequest(TRACE, PolicySpec("lru")).to_dict()
        d[WIRE_SCHEMA_KEY] = WIRE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than this process"):
            SimRequest.from_dict(d)

    def test_bad_version_type_refused(self):
        with pytest.raises(ValueError, match="must be an int"):
            check_wire_version({WIRE_SCHEMA_KEY: "1"}, "SimRequest")
        with pytest.raises(ValueError, match=">= 0"):
            check_wire_version({WIRE_SCHEMA_KEY: -1}, "SimRequest")

    def test_unknown_keys_rejected_everywhere(self):
        request = SimRequest(TRACE, PolicySpec("lru"), HierarchyConfig())
        d = request.to_dict()
        for mutate in (
            lambda p: p.update(injected=1),
            lambda p: p["trace"].update(injected=1),
            lambda p: p["config"].update(injected=1),
            lambda p: p["config"]["l1"].update(injected=1),
        ):
            payload = SimRequest.from_dict(d).to_dict()  # fresh deep copy
            mutate(payload)
            with pytest.raises(ValueError, match="unknown wire keys"):
                SimRequest.from_dict(payload)

    def test_advisory_keys_still_tolerated(self):
        # _-prefixed keys carry location hints (e.g. a file trace's
        # _path); strict decode must not trip over them.
        check_known_keys({"kind": "loop", "_path": "/tmp/x"},
                         ("kind",), "TraceSpec")

    def test_legacy_cache_keys_are_stable(self):
        """Golden keys captured before schema_version existed: the wire
        stamp must never leak into the content hash."""
        r1 = SimRequest(TRACE, PolicySpec("emissary", {"hp_threshold": 2}),
                        CacheConfig(num_sets=16, ways=4), seed=9)
        r2 = SimRequest(TRACE, PolicySpec("lru"), HierarchyConfig(), seed=3)
        r3 = SimRequest(TRACE, PolicySpec("lru"), seed=3, telemetry=True)
        assert config_key(r1) == ("3bffcec6ed32d7bdb56cb1f42c570e7ef2"
                                  "c90bf208b81a1f4637caa3a8b9d9d8")
        assert config_key(r2) == ("2616cdc3b1b6d920754b94c2c4464ea791"
                                  "9c71c84bb192ec4d35a99bac977506")
        assert config_key(r3) == ("cb11e2907b1d473bca0b738492fef8b590"
                                  "ea9aeabd082156837784f44d16340c")
        # ... and v0/v1 encodings of one request share one key.
        v1 = r2.to_dict()
        v0 = dict(v1)
        del v0[WIRE_SCHEMA_KEY]
        assert config_key(v0) == config_key(v1)

    def test_sim_result_round_trip_and_strictness(self):
        result = simulate(SimRequest(TRACE, PolicySpec("lru"),
                                     CacheConfig(num_sets=16, ways=4)))
        d = result.to_dict()
        assert d[WIRE_SCHEMA_KEY] == WIRE_SCHEMA_VERSION
        rebuilt = SimResult.from_dict(d)
        assert rebuilt.hit_count == result.hit_count
        assert rebuilt.to_dict() == d
        v0 = dict(d)
        del v0[WIRE_SCHEMA_KEY]
        assert SimResult.from_dict(v0).hit_count == result.hit_count
        d["injected"] = 1
        with pytest.raises(ValueError, match="unknown wire keys"):
            SimResult.from_dict(d)

    def test_hierarchy_result_round_trip_and_strictness(self):
        result = simulate(SimRequest(TRACE, PolicySpec("lru"),
                                     HierarchyConfig()))
        d = result.to_dict()
        assert d[WIRE_SCHEMA_KEY] == WIRE_SCHEMA_VERSION
        rebuilt = HierarchyResult.from_dict(d)
        assert rebuilt.l1.hit_count == result.l1.hit_count
        assert rebuilt.to_dict() == d
        d[WIRE_SCHEMA_KEY] = WIRE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than this process"):
            HierarchyResult.from_dict(d)


class TestLegacyFormRemoved:
    """The PR 2 ``policy: str, **policy_params`` shim is gone: strings
    fail fast with the migration spelled out, and the kwargs sink no
    longer exists on any entry point."""

    def test_engine_run_with_str_policy_raises(self):
        trace = TRACE.generate()[:500]
        with pytest.raises(TypeError, match="PolicySpec"):
            BatchedEngine().run(trace, "emissary")

    def test_reference_run_with_str_policy_raises(self):
        trace = TRACE.generate()[:500]
        with pytest.raises(TypeError, match="PolicySpec"):
            ReferenceEngine().run(trace, "lru")

    def test_simulate_with_str_policy_raises(self):
        trace = TRACE.generate()[:500]
        with pytest.raises(TypeError, match="legacy string-policy form"):
            simulate(trace, "lru")

    def test_policy_kwargs_sink_removed(self):
        trace = TRACE.generate()[:500]
        with pytest.raises(TypeError):
            BatchedEngine().run(trace, PolicySpec("emissary"), hp_threshold=2)

    def test_require_rejects_other_types(self):
        with pytest.raises(TypeError, match="must be a PolicySpec"):
            require_policy_spec(42)

    def test_make_config_requires_request(self):
        from emissary.sweep import make_config

        typed = make_config(SimRequest(TRACE, PolicySpec("lru"),
                                       CacheConfig(num_sets=16, ways=4), 1))
        assert typed[WIRE_SCHEMA_KEY] == WIRE_SCHEMA_VERSION
        with pytest.raises(TypeError, match="legacy positional form"):
            make_config(TRACE)  # first arg of the removed signature


class TestUnifiedSimulate:
    def test_request_matches_array_form(self):
        request = SimRequest(TRACE, PolicySpec("srrip"),
                             CacheConfig(num_sets=16, ways=4), seed=5)
        from_request = simulate(request)
        from_array = simulate(TRACE.generate(), PolicySpec("srrip"),
                              config=CacheConfig(num_sets=16, ways=4), seed=5)
        assert np.array_equal(from_request.hits, from_array.hits)

    def test_request_with_extra_args_rejected(self):
        request = SimRequest(TRACE, PolicySpec("lru"))
        with pytest.raises(TypeError):
            simulate(request, PolicySpec("lru"))

    def test_reference_engine_selectable(self):
        request = SimRequest(TRACE, PolicySpec("lru"),
                             CacheConfig(num_sets=16, ways=4))
        batched = simulate(request)
        reference = simulate(TRACE.generate(), PolicySpec("lru"),
                             config=CacheConfig(num_sets=16, ways=4),
                             engine="reference")
        assert np.array_equal(batched.hits, reference.hits)


class TestStreamingSimulate:
    def test_stream_matches_oneshot_for_synthetic_request(self):
        request = SimRequest(TRACE, PolicySpec("srrip"),
                             CacheConfig(num_sets=16, ways=4), seed=5)
        oneshot = simulate(request)
        streamed = simulate(request, stream=True, chunk_bytes=1024)
        assert np.array_equal(streamed.hits, oneshot.hits)
        assert streamed.policy_stats == oneshot.policy_stats

    def test_stream_file_trace_from_disk(self, tmp_path):
        from emissary import trace_io

        path = tmp_path / "t.champsim.gz"
        trace_io.write_trace(path, [TRACE.generate()])
        request = SimRequest(trace_io.file_spec(path), PolicySpec("srrip"),
                             CacheConfig(num_sets=16, ways=4), seed=5)
        oneshot = simulate(SimRequest(TRACE, PolicySpec("srrip"),
                                      CacheConfig(num_sets=16, ways=4), seed=5))
        streamed = simulate(request, stream=True, chunk_bytes=2048)
        assert np.array_equal(streamed.hits, oneshot.hits)

    def test_stream_hierarchy_request(self):
        request = SimRequest(TRACE, PolicySpec("lru"),
                             HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                                             l2=CacheConfig(num_sets=16, ways=4)),
                             seed=5)
        oneshot = simulate(request)
        streamed = simulate(request, stream=True, chunk_bytes=1024)
        assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
        assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)

    def test_stream_guards(self):
        request = SimRequest(TRACE, PolicySpec("lru"))
        with pytest.raises(TypeError, match="chunk_bytes"):
            simulate(request, chunk_bytes=1024)
        with pytest.raises(ValueError, match="batched"):
            simulate(request, stream=True, engine="reference")
