"""Typed PolicySpec/SimRequest API: validation, round-trips, and the
deprecation-shimmed legacy ``policy: str, **policy_params`` form."""

import numpy as np
import pytest

from emissary.api import (EmissaryDeprecationWarning, PolicySpec, SimRequest,
                          coerce_policy_spec, simulate)
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine
from emissary.hierarchy import HierarchyConfig
from emissary.results_cache import ResultsCache, config_key
from emissary.traces import TraceSpec

TRACE = TraceSpec("loop", 2_000, 1, {"footprint_lines": 100})


class TestPolicySpec:
    def test_valid_specs(self):
        assert PolicySpec("lru").params == {}
        spec = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 8,
                                       "min_l1_misses": 3})
        assert spec.params["min_l1_misses"] == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            PolicySpec("optimal")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            PolicySpec("emissary", {"hp_treshold": 2})  # typo caught at build
        with pytest.raises(ValueError, match="does not accept parameter"):
            PolicySpec("lru", {"hp_threshold": 2})

    def test_mistyped_param_rejected(self):
        with pytest.raises(TypeError, match="must be int"):
            PolicySpec("emissary", {"hp_threshold": "2"})
        with pytest.raises(TypeError, match="must be int"):
            PolicySpec("emissary", {"prob_inv": True})  # bools are not ints here

    def test_params_copied_from_caller(self):
        params = {"hp_threshold": 2}
        spec = PolicySpec("emissary", params)
        params["hp_threshold"] = 99
        assert spec.params["hp_threshold"] == 2

    def test_round_trip(self):
        spec = PolicySpec("emissary", {"hp_threshold": 4, "prob_inv": 16})
        assert PolicySpec.from_dict(spec.to_dict()) == spec
        assert isinstance(spec.to_dict()["params"], dict)

    def test_spec_is_frozen_and_hashable(self):
        a = PolicySpec("emissary", {"hp_threshold": 4})
        b = PolicySpec("emissary", {"hp_threshold": 4})
        assert hash(a) == hash(b) and {a: 1}[b] == 1
        with pytest.raises(TypeError):
            a.params["hp_threshold"] = 99


class TestSimRequest:
    def test_defaults(self):
        request = SimRequest(TRACE, PolicySpec("lru"))
        assert request.config == CacheConfig()
        assert request.seed == 0
        assert not request.is_hierarchy

    def test_hierarchy_request(self):
        request = SimRequest(TRACE, PolicySpec("lru"), HierarchyConfig())
        assert request.is_hierarchy

    def test_type_validation(self):
        with pytest.raises(TypeError):
            SimRequest("loop", PolicySpec("lru"))
        with pytest.raises(TypeError):
            SimRequest(TRACE, "lru")
        with pytest.raises(TypeError):
            SimRequest(TRACE, PolicySpec("lru"), {"num_sets": 16})
        with pytest.raises(TypeError):
            SimRequest(TRACE, PolicySpec("lru"), seed="42")

    @pytest.mark.parametrize("config", [None, CacheConfig(num_sets=16, ways=4),
                                        HierarchyConfig()],
                             ids=["default", "single", "hierarchy"])
    def test_round_trip(self, config):
        request = SimRequest(TRACE, PolicySpec("emissary", {"hp_threshold": 2}),
                             config, seed=9)
        assert SimRequest.from_dict(request.to_dict()) == request

    def test_results_cache_accepts_requests(self, tmp_path):
        request = SimRequest(TRACE, PolicySpec("lru"), seed=3)
        assert config_key(request) == config_key(request.to_dict())
        cache = ResultsCache(tmp_path)
        cache.store(request, {"hit_rate": 0.5})
        assert cache.load(request) == {"hit_rate": 0.5}
        assert cache.load(request.to_dict()) == {"hit_rate": 0.5}


class TestLegacyShims:
    def test_engine_run_with_str_policy_warns(self):
        trace = TRACE.generate()
        with pytest.warns(EmissaryDeprecationWarning):
            legacy = BatchedEngine().run(trace, "emissary", seed=1, hp_threshold=2)
        typed = BatchedEngine().run(trace,
                                    PolicySpec("emissary", {"hp_threshold": 2}),
                                    seed=1)
        assert np.array_equal(legacy.hits, typed.hits)

    def test_reference_run_with_str_policy_warns(self):
        trace = TRACE.generate()[:500]
        with pytest.warns(EmissaryDeprecationWarning):
            ReferenceEngine().run(trace, "lru")

    def test_simulate_with_str_policy_warns(self):
        trace = TRACE.generate()[:500]
        with pytest.warns(EmissaryDeprecationWarning):
            simulate(trace, "lru")

    def test_spec_plus_kwargs_rejected(self):
        trace = TRACE.generate()[:500]
        with pytest.raises(TypeError, match="inside PolicySpec.params"):
            BatchedEngine().run(trace, PolicySpec("emissary"), hp_threshold=2)

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce_policy_spec(42)

    def test_make_config_legacy_form_warns(self):
        from emissary.sweep import make_config

        with pytest.warns(EmissaryDeprecationWarning):
            legacy = make_config(TRACE, "lru", CacheConfig(num_sets=16, ways=4), 1)
        typed = make_config(SimRequest(TRACE, PolicySpec("lru"),
                                       CacheConfig(num_sets=16, ways=4), 1))
        assert legacy == typed


class TestUnifiedSimulate:
    def test_request_matches_array_form(self):
        request = SimRequest(TRACE, PolicySpec("srrip"),
                             CacheConfig(num_sets=16, ways=4), seed=5)
        from_request = simulate(request)
        from_array = simulate(TRACE.generate(), PolicySpec("srrip"),
                              config=CacheConfig(num_sets=16, ways=4), seed=5)
        assert np.array_equal(from_request.hits, from_array.hits)

    def test_request_with_extra_args_rejected(self):
        request = SimRequest(TRACE, PolicySpec("lru"))
        with pytest.raises(TypeError):
            simulate(request, PolicySpec("lru"))

    def test_reference_engine_selectable(self):
        request = SimRequest(TRACE, PolicySpec("lru"),
                             CacheConfig(num_sets=16, ways=4))
        batched = simulate(request)
        reference = simulate(TRACE.generate(), PolicySpec("lru"),
                             config=CacheConfig(num_sets=16, ways=4),
                             engine="reference")
        assert np.array_equal(batched.hits, reference.hits)


class TestStreamingSimulate:
    def test_stream_matches_oneshot_for_synthetic_request(self):
        request = SimRequest(TRACE, PolicySpec("srrip"),
                             CacheConfig(num_sets=16, ways=4), seed=5)
        oneshot = simulate(request)
        streamed = simulate(request, stream=True, chunk_bytes=1024)
        assert np.array_equal(streamed.hits, oneshot.hits)
        assert streamed.policy_stats == oneshot.policy_stats

    def test_stream_file_trace_from_disk(self, tmp_path):
        from emissary import trace_io

        path = tmp_path / "t.champsim.gz"
        trace_io.write_trace(path, [TRACE.generate()])
        request = SimRequest(trace_io.file_spec(path), PolicySpec("srrip"),
                             CacheConfig(num_sets=16, ways=4), seed=5)
        oneshot = simulate(SimRequest(TRACE, PolicySpec("srrip"),
                                      CacheConfig(num_sets=16, ways=4), seed=5))
        streamed = simulate(request, stream=True, chunk_bytes=2048)
        assert np.array_equal(streamed.hits, oneshot.hits)

    def test_stream_hierarchy_request(self):
        request = SimRequest(TRACE, PolicySpec("lru"),
                             HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                                             l2=CacheConfig(num_sets=16, ways=4)),
                             seed=5)
        oneshot = simulate(request)
        streamed = simulate(request, stream=True, chunk_bytes=1024)
        assert np.array_equal(streamed.l1.hits, oneshot.l1.hits)
        assert np.array_equal(streamed.l2.hits, oneshot.l2.hits)

    def test_stream_guards(self):
        request = SimRequest(TRACE, PolicySpec("lru"))
        with pytest.raises(TypeError, match="chunk_bytes"):
            simulate(request, chunk_bytes=1024)
        with pytest.raises(ValueError, match="batched"):
            simulate(request, stream=True, engine="reference")
