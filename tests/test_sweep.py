"""Tests for the parallel sweep runner and its cache integration."""

import json

from emissary.engine import CacheConfig
from emissary.sweep import build_grid, demo_grid, main, make_config, run_config, run_sweep
from emissary.traces import TraceSpec


def small_grid(n=2_000):
    cache = CacheConfig(num_sets=16, ways=4)
    traces = [TraceSpec("loop", n, 1, {"footprint_lines": 100})]
    return build_grid(traces, ["lru", "emissary"], cache, seed=1,
                      hp_thresholds=[2], prob_invs=[8])


def test_build_grid_expands_emissary_params():
    cache = CacheConfig(num_sets=16, ways=4)
    traces = [TraceSpec("loop", 100, 1)]
    grid = build_grid(traces, ["lru", "emissary"], cache, 1,
                      hp_thresholds=[2, 4], prob_invs=[16, 32])
    assert len(grid) == 1 + 4  # lru once, emissary 2x2
    emissary_params = [g["policy_params"] for g in grid if g["policy"] == "emissary"]
    assert {frozenset(p.items()) for p in emissary_params} == {
        frozenset({"hp_threshold": t, "prob_inv": p}.items())
        for t in (2, 4) for p in (16, 32)
    }


def test_run_config_returns_stats():
    result = run_config(small_grid()[0])
    assert result["policy"] == "lru"
    assert result["n"] == 2_000
    assert 0.0 <= result["hit_rate"] <= 1.0
    assert result["hit_count"] + result["miss_count"] == result["n"]


def test_sweep_serial_and_cached_rerun(tmp_path):
    grid = small_grid()
    rows = run_sweep(grid, workers=1, cache_dir=tmp_path)
    assert len(rows) == len(grid)
    assert all(not r["cached"] for r in rows)

    again = run_sweep(grid, workers=1, cache_dir=tmp_path)
    assert all(r["cached"] for r in again)
    assert [r["result"] for r in again] == [r["result"] for r in rows]


def _deterministic(result):
    return {k: v for k, v in result.items()
            if k not in ("elapsed_s", "accesses_per_s")}


def test_sweep_parallel_matches_serial(tmp_path):
    grid = small_grid()
    serial = run_sweep(grid, workers=1, cache_dir=tmp_path / "a")
    parallel = run_sweep(grid, workers=2, cache_dir=tmp_path / "b")
    assert ([_deterministic(r["result"]) for r in serial]
            == [_deterministic(r["result"]) for r in parallel])


def test_sweep_recovers_from_corrupt_cache_entry(tmp_path):
    grid = small_grid()
    run_sweep(grid, workers=1, cache_dir=tmp_path)
    victim = next(tmp_path.glob("*.json"))
    victim.write_text("corrupted")
    rows = run_sweep(grid, workers=1, cache_dir=tmp_path)
    assert sum(1 for r in rows if not r["cached"]) == 1  # only the corrupt one


def test_demo_grid_covers_all_policies():
    grid = demo_grid(n=100)
    assert {g["policy"] for g in grid} == {"lru", "random", "srrip", "emissary"}
    kinds = {g["trace"]["kind"] for g in grid}
    assert kinds == {"loop", "shift", "call"}


def test_make_config_is_cache_key_stable():
    cache = CacheConfig(num_sets=16, ways=4)
    spec = TraceSpec("loop", 100, 1)
    a = make_config(spec, "lru", cache, 1)
    b = make_config(spec, "lru", cache, 1)
    assert a == b


def test_cli_demo_writes_results(tmp_path, capsys):
    out = tmp_path / "results.json"
    rc = main(["--demo", "--n", "1000", "--workers", "1",
               "--cache-dir", str(tmp_path / "rc"), "--out", str(out)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "configs" in captured.out
    rows = json.loads(out.read_text())
    assert len(rows) == len(demo_grid(n=1000))
    assert all("result" in r for r in rows)
